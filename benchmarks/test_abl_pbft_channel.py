"""Ablation: PBFT message-channel capacity vs the >16-node collapse.

The paper diagnoses Hyperledger v0.6's failure beyond 16 nodes as
"consensus messages are rejected by other peers on account of the
message channel being full" (Section 4.1.2). This harness fixes the
Figure 7 collapse regime (20 servers, 20 clients, 80 tx/s per client)
and sweeps the bounded inbox capacity.

Measured shape: the channel capacity sets the *severity* of the
collapse. At this node count the per-transaction pipeline cost already
exceeds the offered load, so the request-timeout watchdog storms at
every capacity (thousands of view changes). With the channel at
Fabric's stock size (650) or unbounded, consensus traffic still gets
through and the network churns at its degraded capacity; shrinking the
channel makes drops eat into prepares, commits and view-change votes,
and committed throughput falls away — the paper's "rejected consensus
messages" made quantitative. (v0.6's *terminal* halt additionally
needed its broken view-change recovery; our PBFT ships the
state-transfer path, so even heavy drop rates degrade rather than
permanently diverge.)
"""

from repro.config import hyperledger_config
from repro.core import ExperimentSpec, format_table, run_experiment

from _common import BASE_DURATION, emit, once

#: Fabric v0.6 preset uses 650; sweep below and beyond it.
CAPACITIES = (100, 300, 650, None)

#: The Figure 7 regime where stock Hyperledger storms.
N_NODES = 20
RATE_PER_CLIENT = 80


def _run(capacity):
    config = hyperledger_config(inbox_capacity=capacity)
    return run_experiment(
        ExperimentSpec(
            platform="hyperledger",
            workload="ycsb",
            n_servers=N_NODES,
            n_clients=N_NODES,
            request_rate_tx_s=RATE_PER_CLIENT,
            duration_s=BASE_DURATION,
            config=config,
            seed=5,
        )
    )


def test_abl_pbft_channel_capacity(benchmark):
    def run():
        rows = []
        results = {}
        for capacity in CAPACITIES:
            result = _run(capacity)
            results[capacity] = result
            rows.append(
                [
                    capacity if capacity is not None else "unbounded",
                    f"{result.throughput:.0f}",
                    f"{result.latency:.1f}" if result.throughput else "-",
                    result.view_changes,
                ]
            )
        return rows, results

    rows, results = once(benchmark, run)
    table = format_table(
        ["inbox capacity", "tx/s", "latency (s)", "view changes"],
        rows,
        title=(
            f"Ablation: PBFT channel capacity at {N_NODES} servers x "
            f"{N_NODES} clients (the Figure 7 collapse regime)"
        ),
    )
    emit("abl_pbft_channel", table)

    # The watchdog storm is capacity-independent: it is driven by the
    # aged backlog, present at every capacity in this regime.
    for result in results.values():
        assert result.view_changes > 500
    # Capacity sets the damage. A severely shrunk channel drops
    # consensus traffic wholesale and loses most of the throughput...
    assert results[100].throughput < 0.6 * results[650].throughput
    assert results[300].throughput < 0.95 * results[650].throughput
    # ...while the stock channel already passes what the saturated
    # pipeline can order: removing the bound entirely buys ~nothing.
    gap = abs(results[650].throughput - results[None].throughput)
    assert gap <= 0.10 * results[None].throughput
