"""Ablation: PoW confirmation depth — latency cost vs fork exposure.

Ethereum and Parity "consider a block as confirmed if it is at least
confirmationLength blocks from the current blockchain's tip" (Section
3.2); the paper fixes that length at 5 and never varies it. This
ablation sweeps the depth and measures both sides of the trade:

* **cost** — client-observed confirmation latency, which should grow
  roughly linearly with depth (each extra confirmation costs one block
  interval, ~2.5 s at this difficulty);
* **risk** — the double-spend window under the Figure 10 partition
  attack, measured as *stale executions*: blocks that reached the
  confirmation depth on some node (so a depth-d client acted on them)
  but were later replaced by the healing reorg. Deeper confirmation
  shields clients from shallow forks, so stale executions should fall
  as the depth grows.

PBFT-class systems sit at the degenerate point of this curve — depth
zero, exposure zero — which is why the paper's Figure 10 shows
Hyperledger forking never and Ethereum forking for the whole partition
window.
"""

import dataclasses

from repro.config import ethereum_config
from repro.core import ExperimentSpec, format_table, run_experiment
from repro.core.faults import FaultSchedule, PartitionFault

from _common import BASE_DURATION, emit, once

DEPTHS = (1, 2, 5, 10)

#: Attack window (seconds into the run) — Figure 10's shape scaled to
#: the bench duration.
ATTACK_START = 10.0
ATTACK_DURATION = 20.0 * (BASE_DURATION / 35.0)


def _run(depth):
    base = ethereum_config()
    config = ethereum_config(
        pow=dataclasses.replace(base.pow, confirmation_depth=depth)
    )
    faults = FaultSchedule(
        partitions=[
            PartitionFault(
                at_time=ATTACK_START, until_time=ATTACK_START + ATTACK_DURATION
            )
        ]
    )
    return run_experiment(
        ExperimentSpec(
            platform="ethereum",
            workload="ycsb",
            n_servers=8,
            n_clients=8,
            request_rate_tx_s=64,
            duration_s=BASE_DURATION + 15.0,
            config=config,
            faults=faults,
            seed=5,
        )
    )


def test_abl_confirmation_depth(benchmark):
    def run():
        rows = []
        results = {}
        for depth in DEPTHS:
            result = _run(depth)
            results[depth] = result
            stale = result.stale_executions
            rows.append(
                [
                    depth,
                    f"{result.latency:.1f}",
                    result.total_blocks - result.main_branch_blocks,
                    stale,
                ]
            )
        return rows, results

    rows, results = once(benchmark, run)
    table = format_table(
        ["confirmation depth", "latency (s)", "fork blocks", "stale executions"],
        rows,
        title=(
            "Ablation: PoW confirmation depth under a partition attack "
            "(8 servers, Figure 10 setup)"
        ),
    )
    emit("abl_confirmation_depth", table)

    # Cost: deeper confirmation means slower confirmation.
    assert results[10].latency > results[1].latency
    # Risk: a depth-1 client acts on blocks a partition later unwinds;
    # depth 10 outlasts the fork the scaled attack can grow.
    assert results[1].stale_executions > 0
    assert results[10].stale_executions <= results[1].stale_executions
    # The fork itself (total minus main) exists at every depth — depth
    # changes who *acts* on forked blocks, not whether forks happen.
    assert all(
        r.total_blocks > r.main_branch_blocks for r in results.values()
    )
