"""Figure 6: client request-queue length at 8 tx/s and 512 tx/s.

Expected shape: at 8 tx/s per client the Ethereum and Hyperledger
queues stay flat while Parity's grows (offered 64 tx/s exceeds its ~45
tx/s signing rate). Under 512 tx/s everything grows, but Parity's
queue grows the slowest because its intake throttle rejects work back
to the client threads.
"""

from repro.core import Driver, DriverConfig, format_table
from repro.platforms import build_cluster
from repro.workloads import YCSBConfig, YCSBWorkload

from _common import BASE_DURATION, PLATFORMS, emit, once

RATES = (8, 512)


def _queue_growth(platform, rate):
    cluster = build_cluster(platform, 8, seed=6)
    driver = Driver(
        cluster,
        YCSBWorkload(YCSBConfig(record_count=500)),
        DriverConfig(n_clients=8, request_rate_tx_s=rate, duration_s=BASE_DURATION),
    )
    driver.run()
    series = driver.queue_series()
    cluster.close()
    if len(series) < 4:
        return series, 0.0
    # Growth rate over the second half of the run (queue entries / s).
    half = len(series) // 2
    (t0, q0), (t1, q1) = series[half], series[-1]
    growth = (q1 - q0) / max(1e-9, t1 - t0)
    return series, growth


def test_fig06_client_queue(benchmark):
    def run():
        rows = []
        growths = {}
        for rate in RATES:
            for platform in PLATFORMS:
                series, growth = _queue_growth(platform, rate)
                final = series[-1][1] if series else 0
                rows.append([f"{rate} tx/s", platform, final, f"{growth:+.1f}"])
                growths[(rate, platform)] = growth
        return rows, growths

    rows, growths = once(benchmark, run)
    emit(
        "fig06_queue",
        format_table(
            ["request rate", "platform", "final queue", "growth (req/s)"],
            rows,
            title="Figure 6: client request queue (8 clients x 8 servers)",
        ),
    )
    # Shapes: Parity's queue grows even at 8 tx/s per client; at 512 the
    # Ethereum/Hyperledger queues grow much faster than Parity's.
    assert growths[(8, "parity")] > 1.0
    assert growths[(8, "hyperledger")] < 5.0
    assert growths[(512, "ethereum")] > growths[(512, "parity")]
