"""Figure 10: blockchain forks under a partition attack.

Paper setup: 8 servers, 8 clients; the network is split in half at
t=100 s for 150 s. Shape: Ethereum and Parity fork — a large fraction
of blocks produced during the attack land on abandoned branches (up to
~30%) and Delta = total - main stops growing after heal; Hyperledger
never forks but takes longer to recover after the partition heals.
"""

from repro.core import Driver, DriverConfig, format_table, run_partition_attack
from repro.platforms import build_cluster
from repro.workloads import DoNothingWorkload

from _common import PLATFORMS, SCALE, emit, once

ATTACK_START = 100.0 * SCALE
ATTACK_LEN = 150.0 * SCALE
TOTAL = 400.0 * SCALE


def _attack(platform):
    cluster = build_cluster(platform, 8, seed=10)
    driver = Driver(
        cluster,
        DoNothingWorkload(),
        DriverConfig(n_clients=8, request_rate_tx_s=20, duration_s=TOTAL),
    )
    driver.prepare()
    for client in driver.clients:
        client.start(TOTAL)
    report = run_partition_attack(
        cluster,
        attack_start=ATTACK_START,
        attack_duration=ATTACK_LEN,
        total_duration=TOTAL,
        sample_interval=10.0 * SCALE,
    )
    cluster.close()
    return report


def test_fig10_partition_attack(benchmark):
    def run():
        return {platform: _attack(platform) for platform in PLATFORMS}

    reports = once(benchmark, run)
    rows = []
    for platform, report in reports.items():
        last = report.samples[-1]
        rows.append(
            [
                platform,
                last.total_blocks,
                last.main_branch_blocks,
                report.final_fork_blocks(),
                f"{report.peak_fork_fraction():.2f}",
                f"{report.fork_ratio():.3f}",
            ]
        )
    emit(
        "fig10_forks",
        format_table(
            ["platform", "total", "main branch", "forked", "peak fork frac",
             "ratio"],
            rows,
            title=(
                f"Figure 10: partition {ATTACK_START:.0f}s.."
                f"{ATTACK_START + ATTACK_LEN:.0f}s of {TOTAL:.0f}s"
            ),
        ),
    )
    # PoW and PoA fork; the attack window exposes double spending.
    assert reports["ethereum"].final_fork_blocks() > 0
    assert reports["parity"].final_fork_blocks() > 0
    assert reports["ethereum"].peak_fork_fraction() > 0.05
    # PBFT provably never forks.
    assert reports["hyperledger"].final_fork_blocks() == 0
    assert reports["hyperledger"].fork_ratio() == 1.0
