"""Figure 11: CPUHeavy — execution time and peak memory per engine.

The paper sorts arrays of 1M/10M/100M integers: Ethereum (geth EVM)
took 10.5 s / 79.6 s / OOM using 4.2 GB / 22.8 GB; Parity (optimized
EVM) 3.0 / 24.0 / 232.8 s with far less memory; Hyperledger (native
chaincode) 0.19 / 0.33 / 1.94 s.

Here the *sorts are real*: the geth- and parity-profile interpreters
execute the quicksort bytecode and Hyperledger's native contract sorts
at machine speed, all measured in wall-clock time. Array sizes are
scaled down 1000x (interpreting 100M-element sorts in Python is not a
benchmark, it is a lifestyle); memory is reported from the engines'
modeled footprints *at paper scale*, with OOM declared against the
testbed's 32 GB (see EXPERIMENTS.md for the calibration).
"""

from repro.contracts import CPUHeavyContract, DictState
from repro.core import format_table
from repro.evm import EVM, CallContext, Profile, cpuheavy_code
from repro.evm.vm import PROFILE_COSTS
from repro.sim import Stopwatch

from _common import SCALE, emit, once

#: (our n, the paper's n) — 1000x scale-down.
SIZES = [(1_000, "1M"), (10_000, "10M"), (100_000, "100M")]
MEMORY_LIMIT = 32 * 1024**3  # the paper's 32 GB servers


def _modeled_paper_memory(profile: Profile, paper_n: int) -> int:
    costs = PROFILE_COSTS[profile]
    return costs.base_overhead_bytes + paper_n * costs.word_overhead_bytes


def _native_paper_memory(paper_n: int) -> int:
    # Go slice of int64 plus runtime baseline (matches HLF's 376..1353 MB).
    return 360 * 1024**2 + 10 * paper_n


def test_fig11_cpuheavy(benchmark):
    code = cpuheavy_code()

    def run():
        rows = []
        for n, paper_label in SIZES:
            n = int(n * min(1.0, SCALE)) or n
            paper_n = int(paper_label[:-1]) * 1_000_000
            row = [paper_label]
            for profile in (Profile.GETH, Profile.PARITY):
                modeled = _modeled_paper_memory(profile, paper_n)
                if modeled > MEMORY_LIMIT:
                    row.extend(["X (OOM)", "X"])
                    continue
                vm = EVM(profile)
                watch = Stopwatch()
                with watch:
                    result = vm.execute(code, context=CallContext(args=(n,)))
                assert result.success and result.return_value == 1
                row.extend(
                    [f"{watch.elapsed:.2f}", f"{modeled / 1024**2:,.0f}"]
                )
            contract = CPUHeavyContract()
            watch = Stopwatch()
            with watch:
                output = contract.invoke(DictState(), "sort", (n,)).output
            assert output == 1
            row.extend(
                [
                    f"{watch.elapsed:.4f}",
                    f"{_native_paper_memory(paper_n) / 1024**2:,.0f}",
                ]
            )
            rows.append(row)
        return rows

    rows = once(benchmark, run)
    emit(
        "fig11_cpuheavy",
        format_table(
            [
                "input (paper)",
                "geth time(s)",
                "geth MB*",
                "parity time(s)",
                "parity MB*",
                "native time(s)",
                "native MB*",
            ],
            rows,
            title=(
                "Figure 11: CPUHeavy quicksort — real execution at 1/1000 "
                "scale; memory modeled at paper scale (32 GB cap)"
            ),
        ),
    )
    # Shapes: geth slower than parity; native orders of magnitude faster;
    # geth OOMs at the largest size, the others do not.
    assert rows[2][1] == "X (OOM)"
    assert rows[2][3] != "X (OOM)"
    geth_t = float(rows[1][1])
    parity_t = float(rows[1][3])
    native_t = float(rows[1][5])
    assert geth_t > 1.5 * parity_t  # paper: 79.6 vs 24.0
    assert parity_t > 20 * native_t  # paper: 24.0 vs 0.33
