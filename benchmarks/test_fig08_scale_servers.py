"""Figure 8: scalability with a fixed 8 clients, 8..32 servers.

Paper shape: performance degrades for Ethereum and Hyperledger as
servers are added (more difficulty / more communication) while offered
load stays fixed; Hyperledger *survives* here — the collapse of
Figure 7 needs client count to scale too. Parity stays constant.
"""

from repro.core import ExperimentSpec, format_table, run_experiment

from _common import BASE_DURATION, PLATFORMS, emit, once

SIZES = (8, 16, 32)
RATE = 256  # 8 clients near the 8-server peak, as in the paper


def test_fig08_fixed_clients(benchmark):
    def run():
        rows = []
        measured = {}
        for platform in PLATFORMS:
            for size in SIZES:
                result = run_experiment(
                    ExperimentSpec(
                        platform=platform,
                        workload="ycsb",
                        n_servers=size,
                        n_clients=8,
                        request_rate_tx_s=RATE,
                        duration_s=BASE_DURATION,
                        seed=8,
                    )
                )
                measured[(platform, size)] = result
                rows.append(
                    [platform, size, f"{result.throughput:.0f}",
                     f"{result.latency:.1f}"]
                )
        return rows, measured

    rows, measured = once(benchmark, run)
    emit(
        "fig08_scale_servers",
        format_table(
            ["platform", "servers", "tx/s", "latency (s)"],
            rows,
            title="Figure 8: scalability with 8 clients fixed",
        ),
    )
    # Hyperledger survives at 32 servers with 8 clients (unlike Fig 7).
    assert measured[("hyperledger", 32)].throughput > 300
    # Ethereum throughput decays with size (difficulty + gossip reach).
    assert (
        measured[("ethereum", 32)].throughput
        < measured[("ethereum", 8)].throughput
    )
    # Parity unaffected by server count.
    parity = [measured[("parity", s)].throughput for s in SIZES]
    assert max(parity) < 2.5 * max(1e-9, min(parity))
