"""Figure 5: peak performance and throughput/latency vs request rate.

Paper setup: 8 servers, 8 clients, rates 8..1024 tx/s per client, five
minutes per point. Expected shape: Hyperledger ~1273 tx/s >> Ethereum
~284 >> Parity ~45 on YCSB; Parity lowest latency, Ethereum highest;
Smallbank ~10% lower throughput / ~20% higher latency than YCSB on
Hyperledger and Ethereum, unchanged on Parity.

The sweep is one declarative ScenarioSuite: a YCSB rate grid plus a
Smallbank point per platform, expanded and executed by the scenario
engine instead of hand-rolled loops.
"""

from repro.core import ScenarioSpec, ScenarioSuite, format_table

from _common import (
    BASE_DURATION,
    PAPER_PEAK_LATENCY,
    PAPER_PEAK_TPS,
    PAPER_PEAK_TPS_SMALLBANK,
    PLATFORMS,
    emit,
    once,
)

RATES = (8, 64, 256)  # tx/s per client (paper sweeps 8..1024)

SUITE = ScenarioSuite(
    name="fig05",
    scenarios=[
        ScenarioSpec(
            name="ycsb",
            platforms=PLATFORMS,
            workloads="ycsb",
            servers=8,
            clients=8,
            rates=RATES,
            durations=BASE_DURATION,
            seeds=5,
        ),
        ScenarioSpec(
            name="smallbank",
            platforms=PLATFORMS,
            workloads="smallbank",
            servers=8,
            clients=8,
            rates=max(RATES),
            durations=BASE_DURATION,
            seeds=5,
        ),
    ],
)


def test_fig05_peak_performance(benchmark):
    suite_result = once(benchmark, SUITE.run)

    rows = []
    sweep_rows = []
    for platform in PLATFORMS:
        for rate in RATES:
            result = suite_result.one(
                scenario="ycsb", platform=platform, rate=float(rate)
            )
            sweep_rows.append(
                [platform, rate * 8, f"{result.throughput:.0f}",
                 f"{result.latency:.2f}"]
            )
        peak = suite_result.peak(scenario="ycsb", platform=platform)
        bank = suite_result.one(scenario="smallbank", platform=platform)
        rows.append(
            [
                platform,
                f"{peak.throughput:.0f}",
                PAPER_PEAK_TPS[platform],
                f"{peak.latency:.1f}",
                PAPER_PEAK_LATENCY[platform],
                f"{bank.throughput:.0f}",
                PAPER_PEAK_TPS_SMALLBANK[platform],
            ]
        )
    table_a = format_table(
        [
            "platform",
            "ycsb tx/s",
            "paper",
            "ycsb lat(s)",
            "paper",
            "smallbank tx/s",
            "paper",
        ],
        rows,
        title="Figure 5a: peak performance, 8 servers x 8 clients",
    )
    table_b = format_table(
        ["platform", "offered tx/s", "tx/s", "latency (s)"],
        sweep_rows,
        title="Figure 5b/c: throughput and latency vs request rate",
    )
    emit("fig05_peak", table_a + "\n\n" + table_b)

    measured = {row[0]: float(row[1].replace(",", "")) for row in rows}
    # Shape assertions: ordering and rough factors per the paper.
    assert measured["hyperledger"] > 3 * measured["ethereum"]
    assert measured["ethereum"] > 2 * measured["parity"]
    assert 25 <= measured["parity"] <= 90
