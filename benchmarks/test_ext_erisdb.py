"""Extension: ErisDB (Tendermint + EVM), the paper's fourth backend.

Section 3.2 lists ErisDB integration as "under development"; this
harness completes the comparison the paper could not run. There are no
paper numbers to match, so the assertions are structural:

* ErisDB throughput lands in the *BFT class*: the same order of
  magnitude as Hyperledger and several times Ethereum. It shares
  Hyperledger's consensus class (one BFT decision per batch, immediate
  finality) but Ethereum's execution class (EVM bytecode, priced ~1.7x
  native chaincode per unit of gas). At saturation it can even edge
  past Hyperledger: Tendermint rotates proposers per round and has no
  view-change subprotocol, so it avoids the view-change churn PBFT
  v0.6 exhibits under overload.
* Like the other BFT platform, it never forks.
* The publish/subscribe block feed (the Section 3.2 footnote) confirms
  transactions with fewer RPC messages and no polling-interval delay,
  so subscribe-mode latency <= polling latency.
"""

from repro.core import ExperimentSpec, format_table, run_experiment
from repro.platforms import build_cluster
from repro.workloads import YCSBConfig, YCSBWorkload
from repro.core import Driver, DriverConfig

from _common import BASE_DURATION, PAPER_PEAK_TPS, emit, once

ALL_PLATFORMS = ("ethereum", "parity", "hyperledger", "erisdb")


def _run(platform, rate, subscribe=False, seed=5):
    return run_experiment(
        ExperimentSpec(
            platform=platform,
            workload="ycsb",
            n_servers=8,
            n_clients=8,
            request_rate_tx_s=rate,
            duration_s=BASE_DURATION,
            subscribe=subscribe,
            seed=seed,
        )
    )


def test_ext_erisdb_four_platform_peak(benchmark):
    def run():
        rows = []
        measured = {}
        for platform in ALL_PLATFORMS:
            result = _run(platform, rate=256)
            measured[platform] = result
            rows.append(
                [
                    platform,
                    f"{result.throughput:.0f}",
                    PAPER_PEAK_TPS.get(platform, "n/a"),
                    f"{result.latency:.1f}",
                    result.total_blocks - result.main_branch_blocks,
                ]
            )
        return rows, measured

    rows, measured = once(benchmark, run)
    table = format_table(
        ["platform", "tx/s", "paper tx/s", "latency (s)", "fork blocks"],
        rows,
        title="Extension: four-platform peak, 8 servers x 8 clients, YCSB",
    )
    emit("ext_erisdb_peak", table)

    # Structural expectations (the paper has no ErisDB numbers):
    # BFT-class throughput — several times Ethereum, within 2x of
    # Hyperledger either way (Tendermint's rotation can edge past PBFT
    # v0.6 at saturation because it has no view-change churn).
    erisdb = measured["erisdb"].throughput
    assert erisdb > 2 * measured["ethereum"].throughput
    assert 0.5 < erisdb / measured["hyperledger"].throughput < 2.0
    # BFT finality: no forks, ever.
    assert measured["erisdb"].total_blocks == measured["erisdb"].main_branch_blocks


def test_ext_erisdb_pubsub_vs_polling(benchmark):
    """Push-based confirmation vs getLatestBlock polling (Section 3.2)."""

    def run():
        rows = []
        results = {}
        for mode, subscribe in (("polling", False), ("subscribe", True)):
            result = _run("erisdb", rate=64, subscribe=subscribe, seed=11)
            results[mode] = result
            rows.append(
                [
                    mode,
                    f"{result.throughput:.0f}",
                    f"{result.latency:.2f}",
                    f"{result.summary.latency_p99_s:.2f}",
                ]
            )
        return rows, results

    rows, results = once(benchmark, run)
    table = format_table(
        ["confirmation mode", "tx/s", "latency (s)", "p99 (s)"],
        rows,
        title="Extension: ErisDB pub/sub feed vs polling, 8x8, YCSB",
    )
    emit("ext_erisdb_pubsub", table)

    # Same chain, so throughput agrees; push can only shave latency
    # (no polling-interval quantization on the confirmation path).
    polling, pushed = results["polling"], results["subscribe"]
    assert abs(pushed.throughput - polling.throughput) / polling.throughput < 0.1
    assert pushed.latency <= polling.latency + 0.05


def test_ext_erisdb_message_overhead(benchmark):
    """Subscribe mode removes the poll RPC stream entirely."""

    def run():
        counts = {}
        for mode, subscribe in (("polling", False), ("subscribe", True)):
            cluster = build_cluster("erisdb", 4, seed=7)
            workload = YCSBWorkload(YCSBConfig(record_count=100))
            driver = Driver(
                cluster,
                workload,
                DriverConfig(
                    n_clients=4,
                    request_rate_tx_s=32,
                    duration_s=BASE_DURATION,
                    subscribe=subscribe,
                ),
            )
            stats = driver.run()
            counts[mode] = {
                "messages": cluster.network.stats.messages_sent,
                "confirmed": stats.confirmed,
            }
            cluster.close()
        return counts

    counts = once(benchmark, run)
    rows = [
        [mode, data["messages"], data["confirmed"]]
        for mode, data in counts.items()
    ]
    table = format_table(
        ["mode", "network messages", "confirmed tx"],
        rows,
        title="Extension: total network messages, polling vs subscribe",
    )
    emit("ext_erisdb_messages", table)

    assert counts["subscribe"]["messages"] < counts["polling"]["messages"]
