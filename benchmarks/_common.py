"""Shared helpers for the per-figure benchmark harnesses.

Every harness prints a paper-vs-measured table and also writes it to
``benchmarks/results/<name>.txt`` so results survive pytest's output
capture. Durations and sweep sizes are scaled for a laptop; set
``REPRO_BENCH_SCALE`` (default 1.0) to stretch toward the paper's
5-minute windows, e.g. ``REPRO_BENCH_SCALE=5 pytest benchmarks/``.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Global duration multiplier (1.0 = quick laptop runs).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Default simulated measurement window per run (seconds).
BASE_DURATION = 35.0 * SCALE

PLATFORMS = ("ethereum", "parity", "hyperledger")

#: Paper reference numbers (Figure 5a, 8 servers x 8 clients).
PAPER_PEAK_TPS = {"ethereum": 284, "parity": 45, "hyperledger": 1273}
PAPER_PEAK_TPS_SMALLBANK = {"ethereum": 256, "parity": 46, "hyperledger": 1122}
PAPER_PEAK_LATENCY = {"ethereum": 92, "parity": 3, "hyperledger": 38}


def emit(name: str, text: str) -> None:
    """Print a harness table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
