"""Figure 15: block-size sweep — generation rate vs block size.

Paper shape: doubling the block size roughly halves the block
generation rate on every platform, so overall throughput does not
improve. Knobs per platform (as in Appendix B): Hyperledger's
``batchSize``, Ethereum's ``gasLimit``, Parity's ``stepDuration``.

Each platform's knob sweep is a ScenarioSpec ``configs`` axis:
(label, platform config) pairs expanded by the scenario engine, with
the label carried through to the merged result for lookup.
"""

from dataclasses import replace

from repro.config import ethereum_config, hyperledger_config, parity_config
from repro.core import ScenarioSpec, ScenarioSuite, format_table

from _common import BASE_DURATION, emit, once


def _hlf_config(batch):
    config = hyperledger_config()
    return replace(config, pbft=replace(config.pbft, batch_size=batch))


def _parity_config(step):
    config = parity_config()
    return replace(config, poa=replace(config.poa, step_duration=step))


def _scenario(platform, configs):
    return ScenarioSpec(
        name=platform,
        platforms=platform,
        workloads="ycsb",
        servers=8,
        clients=8,
        rates=256,
        durations=BASE_DURATION,
        seeds=15,
        configs=configs,
    )


# Labels double as the table's knob column, small to large; the
# config axis is the single source of truth for the sweep values.
SUITE = ScenarioSuite(
    name="fig15",
    scenarios=[
        _scenario(
            "hyperledger",
            [(f"batch={batch}", _hlf_config(batch)) for batch in (250, 500, 1000)],
        ),
        _scenario(
            "ethereum",
            [
                (f"gasLimit={factor:.1f}x",
                 ethereum_config(block_gas_limit=int(20_000_000 * factor)))
                for factor in (0.5, 1.0, 2.0)
            ],
        ),
        _scenario(
            "parity",
            [(f"step={step}s", _parity_config(step)) for step in (0.5, 1.0, 2.0)],
        ),
    ],
)

#: Knob labels per platform, small to large (from the configs axis).
LABELS = {s.name: [label for label, _ in s.configs] for s in SUITE.scenarios}


def test_fig15_block_size(benchmark):
    suite_result = once(benchmark, SUITE.run)

    rows = []
    rates = {}
    for platform, labels in LABELS.items():
        for label in labels:
            result = suite_result.one(platform=platform, label=label)
            block_rate = result.chain_height / BASE_DURATION
            rates[(platform, label)] = (block_rate, result.throughput)
            rows.append(
                [platform, label, f"{block_rate:.2f}",
                 f"{result.throughput:.0f}"]
            )
    emit(
        "fig15_blocksize",
        format_table(
            ["platform", "block size knob", "blocks/s", "tx/s"],
            rows,
            title="Figure 15: block generation rate vs block size",
        ),
    )
    for platform in ("hyperledger", "parity"):
        small, large = LABELS[platform][0], LABELS[platform][-1]
        small_rate, small_tps = rates[(platform, small)]
        large_rate, large_tps = rates[(platform, large)]
        # Bigger blocks => proportionally fewer blocks per second.
        assert large_rate < small_rate
        # ... and throughput does not improve meaningfully.
        assert large_tps < 1.5 * max(small_tps, 1e-9)
