"""Figure 15: block-size sweep — generation rate vs block size.

Paper shape: doubling the block size roughly halves the block
generation rate on every platform, so overall throughput does not
improve. Knobs per platform (as in Appendix B): Hyperledger's
``batchSize``, Ethereum's ``gasLimit``, Parity's ``stepDuration``.
"""

from dataclasses import replace

from repro.config import ethereum_config, hyperledger_config, parity_config
from repro.core import ExperimentSpec, format_table, run_experiment

from _common import BASE_DURATION, emit, once


def _run(platform, config, seed=15):
    result = run_experiment(
        ExperimentSpec(
            platform=platform,
            workload="ycsb",
            n_servers=8,
            n_clients=8,
            request_rate_tx_s=256,
            duration_s=BASE_DURATION,
            seed=seed,
            config=config,
        )
    )
    block_rate = result.chain_height / BASE_DURATION
    return block_rate, result.throughput


def test_fig15_block_size(benchmark):
    def run():
        rows = []
        rates = {}
        # Hyperledger: batchSize 250 / 500 / 1000.
        for label, batch in (("small", 250), ("medium", 500), ("large", 1000)):
            config = hyperledger_config()
            config = replace(config, pbft=replace(config.pbft, batch_size=batch))
            block_rate, throughput = _run("hyperledger", config)
            rates[("hyperledger", label)] = (block_rate, throughput)
            rows.append(["hyperledger", f"batch={batch}", f"{block_rate:.2f}",
                         f"{throughput:.0f}"])
        # Ethereum: gasLimit 0.5x / 1x / 2x.
        base_gas = 20_000_000
        for label, factor in (("small", 0.5), ("medium", 1.0), ("large", 2.0)):
            config = ethereum_config(block_gas_limit=int(base_gas * factor))
            block_rate, throughput = _run("ethereum", config)
            rates[("ethereum", label)] = (block_rate, throughput)
            rows.append(
                ["ethereum", f"gasLimit={factor:.1f}x", f"{block_rate:.2f}",
                 f"{throughput:.0f}"]
            )
        # Parity: stepDuration 0.5 / 1 / 2 seconds.
        for label, step in (("small", 0.5), ("medium", 1.0), ("large", 2.0)):
            config = parity_config()
            config = replace(config, poa=replace(config.poa, step_duration=step))
            block_rate, throughput = _run("parity", config)
            rates[("parity", label)] = (block_rate, throughput)
            rows.append(
                ["parity", f"step={step}s", f"{block_rate:.2f}",
                 f"{throughput:.0f}"]
            )
        return rows, rates

    rows, rates = once(benchmark, run)
    emit(
        "fig15_blocksize",
        format_table(
            ["platform", "block size knob", "blocks/s", "tx/s"],
            rows,
            title="Figure 15: block generation rate vs block size",
        ),
    )
    for platform in ("hyperledger", "parity"):
        small_rate = rates[(platform, "small")][0]
        large_rate = rates[(platform, "large")][0]
        # Bigger blocks => proportionally fewer blocks per second.
        assert large_rate < small_rate
        # ... and throughput does not improve meaningfully.
        small_tps = rates[(platform, "small")][1]
        large_tps = rates[(platform, "large")][1]
        assert large_tps < 1.5 * max(small_tps, 1e-9)
