"""Trie microbenchmark: Patricia-Merkle puts per second.

Every logical write rewrites the path from leaf to root (the paper's
Figure 12c write amplification); this measures how fast that path
rewrite runs with the decoded-node LRU cache in front of the store.

Run directly::

    PYTHONPATH=src python benchmarks/perf/test_trie_puts.py
"""

from repro.core.perf import bench_trie


def test_trie_puts_per_second():
    result = bench_trie(quick=True)
    assert result.unit == "puts"
    assert result.ops_per_s > 0
    assert result.meta["node_writes"] >= result.ops  # path rewrite happened
    print(f"\ntrie_puts: {result.ops_per_s:,.0f} puts/s "
          f"({result.meta['node_writes']} node writes)")


if __name__ == "__main__":
    result = bench_trie()
    print(f"trie_puts: {result.ops_per_s:,.0f} puts/s "
          f"({result.meta['node_writes']} node writes)")
