"""Trie microbenchmark: Patricia-Merkle logical puts per second.

Every logical write used to rewrite the path from leaf to root (the
paper's Figure 12c write amplification); since PR 5 the product path
buffers a block's writes in the journaled overlay and flushes the net
write-set through the batched ``PatriciaTrie.update``, so shared path
segments are rewritten once per block. This measures that pipeline.

Run directly::

    PYTHONPATH=src python benchmarks/perf/test_trie_puts.py
"""

from repro.core.perf import bench_trie


def test_trie_puts_per_second():
    result = bench_trie(quick=True)
    assert result.unit == "puts"
    assert result.ops_per_s > 0
    assert result.meta["blocks"] > 0
    # The batched path's whole point: far fewer node writes than
    # sequential puts would have made (one full path rewrite each).
    assert 0 < result.meta["node_writes"] < 3 * result.ops
    print(f"\ntrie_puts: {result.ops_per_s:,.0f} puts/s "
          f"({result.meta['node_writes']} node writes, "
          f"{result.meta['blocks']} blocks)")


if __name__ == "__main__":
    result = bench_trie()
    print(f"trie_puts: {result.ops_per_s:,.0f} puts/s "
          f"({result.meta['node_writes']} node writes, "
          f"{result.meta['blocks']} blocks)")
