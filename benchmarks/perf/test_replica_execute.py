"""Replica-execution microbenchmark: cluster block application tx/s.

One replica executes a block of SmallBank transactions for real; the
other N-1 replay the memoized net write-set (the ExecutionCache fast
path) and must land on a byte-identical state root. Counts every
(transaction, replica) application — the figure a whole cluster pays
per committed block.

Run directly::

    PYTHONPATH=src python benchmarks/perf/test_replica_execute.py
"""

from repro.core.perf import bench_replica_execute


def test_replica_execute_tx_per_second():
    result = bench_replica_execute(quick=True)
    assert result.unit == "tx"
    assert result.ops == (
        result.meta["replicas"]
        * result.meta["blocks"]
        * result.meta["txs_per_block"]
    )
    # Root-equality across replicas is asserted inside the benchmark;
    # reaching here means every block replayed byte-identically.
    assert result.ops_per_s > 0
    print(f"\nreplica_execute: {result.ops_per_s:,.0f} tx/s "
          f"({result.meta['replicas']} replicas, "
          f"{result.meta['blocks']} blocks)")


if __name__ == "__main__":
    result = bench_replica_execute()
    print(f"replica_execute: {result.ops_per_s:,.0f} tx/s "
          f"({result.meta['replicas']} replicas, "
          f"{result.meta['blocks']} blocks)")
