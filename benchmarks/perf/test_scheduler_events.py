"""Scheduler microbenchmark: discrete events processed per second.

The single priority queue under every node, link, timer and client is
the floor under all simulated throughput; this measures its event
dispatch rate with 64 interleaved timer chains keeping the heap busy.

Run directly::

    PYTHONPATH=src python benchmarks/perf/test_scheduler_events.py
"""

from repro.core.perf import bench_scheduler


def test_scheduler_events_per_second():
    result = bench_scheduler(quick=True)
    assert result.unit == "events"
    assert result.ops >= 20_000
    assert result.ops_per_s > 0
    print(f"\nscheduler_events: {result.ops_per_s:,.0f} events/s")


if __name__ == "__main__":
    result = bench_scheduler()
    print(f"scheduler_events: {result.ops_per_s:,.0f} events/s "
          f"({result.ops} events in {result.wall_time_s:.3f}s)")
