"""Block-commit microbenchmark: platform-state writes per second.

Drives the full ``EthereumState`` surface the way block execution
does — contention-heavy writes buffered in the journaled overlay, the
net write-set flushed once per ``commit_block`` through the batched
trie update. The data-model layer's end-to-end commit figure.

Run directly::

    PYTHONPATH=src python benchmarks/perf/test_block_commit.py
"""

from repro.core.perf import bench_block_commit


def test_block_commit_writes_per_second():
    result = bench_block_commit(quick=True)
    assert result.unit == "writes"
    assert result.ops == result.meta["blocks"] * result.meta["writes_per_block"]
    assert result.ops_per_s > 0
    # Hot keys dedupe in the overlay and shared paths batch in the
    # update: node writes must come in well under one path per write.
    assert result.meta["node_writes"] < 3 * result.ops
    print(f"\nblock_commit: {result.ops_per_s:,.0f} writes/s "
          f"({result.meta['blocks']} blocks, "
          f"{result.meta['node_writes']} node writes)")


if __name__ == "__main__":
    result = bench_block_commit()
    print(f"block_commit: {result.ops_per_s:,.0f} writes/s "
          f"({result.meta['blocks']} blocks, "
          f"{result.meta['node_writes']} node writes)")
