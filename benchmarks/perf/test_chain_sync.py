"""Cold crash-recovery microbenchmark: blocks replayed per wall second.

A node held down for nearly the whole run restarts cold and must
block-sync the entire chain from its peers and replay it through the
normal execution path. The rate here bounds how fast a restarted
replica rejoins consensus.

Run directly::

    PYTHONPATH=src python benchmarks/perf/test_chain_sync.py
"""

from repro.core.perf import bench_chain_sync


def test_chain_sync_blocks_per_second():
    result = bench_chain_sync(quick=True)
    assert result.unit == "blocks"
    assert result.ops > 0  # the victim actually caught up
    assert result.ops_per_s > 0
    assert result.meta["sync_bytes"] > 0
    print(f"\nchain_sync: {result.ops_per_s:,.0f} blocks/s of wall time "
          f"({result.ops} blocks in {result.wall_time_s:.2f}s)")


if __name__ == "__main__":
    result = bench_chain_sync()
    print(f"chain_sync: {result.ops_per_s:,.0f} blocks/s of wall time "
          f"({result.ops} blocks in {result.wall_time_s:.2f}s)")
