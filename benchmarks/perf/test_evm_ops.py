"""EVM microbenchmark: interpreted opcodes (steps) per second.

Runs the paper's CPUHeavy quicksort (Figure 11's execution-layer
stressor) through the miniature EVM and reports steps/s. This is the
number the PR-2 optimization pass (cached program decoding + handler
dispatch) is required to at least double; the committed trajectory in
``BENCH_pr2.json`` records both sides.

Run directly::

    PYTHONPATH=src python benchmarks/perf/test_evm_ops.py
"""

from repro.core.perf import bench_evm


def test_evm_ops_per_second():
    result = bench_evm(quick=True)
    assert result.unit == "steps"
    assert result.ops > 10_000  # the quicksort actually ran
    assert result.ops_per_s > 0
    print(f"\nevm_cpuheavy: {result.ops_per_s:,.0f} steps/s "
          f"({result.ops} steps in {result.wall_time_s:.3f}s)")


if __name__ == "__main__":
    result = bench_evm()
    print(f"evm_cpuheavy: {result.ops_per_s:,.0f} steps/s "
          f"({result.ops} steps in {result.wall_time_s:.3f}s)")
