"""Parallel-execution microbenchmark: capture-and-schedule tx/s.

The ``exec_workers > 1`` hot path: per-transaction read/write-set
capture through a recording ``TxView``, last-writer merge in block
order, dependency-level scheduling, and the 4-worker makespan. The
gate the CI perf-smoke enforces is the *simulated* win: a
low-contention block must schedule to well under its serial duration
sum (``speedup_w4 > 1.3`` per the committed ``BENCH_pr9.json``).

Run directly::

    PYTHONPATH=src python benchmarks/perf/test_parallel_execute.py
"""

from repro.core.perf import bench_parallel_execute


def test_parallel_execute_capture_and_schedule():
    result = bench_parallel_execute(quick=True)
    assert result.unit == "tx"
    assert result.ops == result.meta["blocks"] * result.meta["txs_per_block"]
    assert result.ops_per_s > 0
    # Distinct-key transactions must schedule nearly embarrassingly
    # parallel on 4 workers; the CI acceptance floor is 1.3x.
    assert result.meta["speedup_w4"] > 1.3
    # The recording overlay costs one dict probe per access; capture
    # must stay within a small constant factor of plain execution.
    assert result.meta["capture_overhead"] < 3.0
    print(f"\nparallel_execute: {result.ops_per_s:,.0f} tx/s "
          f"(speedup_w4 {result.meta['speedup_w4']:.2f}x, "
          f"capture overhead {result.meta['capture_overhead']:.2f}x)")


if __name__ == "__main__":
    result = bench_parallel_execute()
    print(f"parallel_execute: {result.ops_per_s:,.0f} tx/s "
          f"(speedup_w4 {result.meta['speedup_w4']:.2f}x, "
          f"capture overhead {result.meta['capture_overhead']:.2f}x)")
