"""End-to-end microbenchmark: driver transactions per wall-clock second.

One full ``run_experiment`` (ethereum/ycsb) through mempool, PoW
consensus, trie state commits, polling clients, and stats — the number
that tells us whether hot-path optimizations actually reach the macro
benchmarks the paper is about.

Run directly::

    PYTHONPATH=src python benchmarks/perf/test_driver_tx.py
"""

from repro.core.perf import bench_driver


def test_driver_tx_per_second():
    result = bench_driver(quick=True)
    assert result.unit == "tx"
    assert result.ops > 0  # transactions actually confirmed
    assert result.ops_per_s > 0
    print(f"\ndriver_tx: {result.ops_per_s:,.0f} tx/s of wall time "
          f"({result.ops} confirmed in {result.wall_time_s:.2f}s)")


if __name__ == "__main__":
    result = bench_driver()
    print(f"driver_tx: {result.ops_per_s:,.0f} tx/s of wall time "
          f"({result.ops} confirmed in {result.wall_time_s:.2f}s)")
