"""Path setup so the perf microbenchmarks run standalone.

``python -m pytest benchmarks/perf`` from the repo root works via the
``pythonpath = ["src"]`` pytest setting; this conftest additionally
makes ``src`` importable when a single file is executed as a script.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[2] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
