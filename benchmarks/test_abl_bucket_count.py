"""Ablation: Bucket-Merkle tree bucket count (real measurements).

Fabric v0.6's state commitment hashes whole buckets: a write marks its
bucket dirty, and the per-block ``root_hash()`` re-digests every dirty
bucket plus a log-depth path above it. The bucket count is therefore a
real tuning knob with a real trade-off:

* **too few buckets** — every bucket holds many keys, so each dirty
  bucket re-digest rehashes a large sorted run of entries;
* **too many buckets** — per-bucket digests are cheap but a block's
  writes scatter across many buckets, so more Merkle paths recompute,
  and the static tree itself grows.

The harness loads a fixed state, then times batched write+commit
rounds (the per-block pattern Hyperledger executes) across bucket
counts. Unlike the simulated macro benches, these are wall-clock
measurements of the real data structure — the same measurement class
as Figures 11 and 12.
"""

import random
import time

from repro.crypto.bucket_tree import BucketTree
from repro.core import format_table

from _common import SCALE, emit, once

BUCKET_COUNTS = (16, 128, 1024, 8192)

#: Keys preloaded into the state before measurement.
PRELOAD_KEYS = int(20_000 * SCALE)

#: Write+commit rounds measured (one round ~ one block).
ROUNDS = 50
WRITES_PER_ROUND = 100


def _measure(n_buckets: int) -> dict:
    rng = random.Random(7)
    tree = BucketTree(n_buckets=n_buckets)
    for i in range(PRELOAD_KEYS):
        tree.put(f"key-{i}".encode(), b"v" * 100)
    tree.root_hash()  # flush the preload outside the timed window

    started = time.perf_counter()
    for _ in range(ROUNDS):
        for _ in range(WRITES_PER_ROUND):
            key = f"key-{rng.randrange(PRELOAD_KEYS)}".encode()
            tree.put(key, rng.randbytes(100))
        tree.root_hash()
    elapsed = time.perf_counter() - started
    return {
        "commit_ms": 1000.0 * elapsed / ROUNDS,
        "keys_per_bucket": PRELOAD_KEYS / n_buckets,
    }


def test_abl_bucket_count(benchmark):
    def run():
        return {n: _measure(n) for n in BUCKET_COUNTS}

    results = once(benchmark, run)
    rows = [
        [
            n,
            f"{data['keys_per_bucket']:.0f}",
            f"{data['commit_ms']:.2f}",
        ]
        for n, data in results.items()
    ]
    table = format_table(
        ["buckets", "keys/bucket", "per-block commit (ms)"],
        rows,
        title=(
            f"Ablation: Bucket-Merkle bucket count, {PRELOAD_KEYS} keys, "
            f"{WRITES_PER_ROUND} writes/block (real wall-clock)"
        ),
    )
    emit("abl_bucket_count", table)

    # The coarse end rehashes ~1/16th of the whole state per block —
    # it must be the slowest configuration measured.
    commit = {n: results[n]["commit_ms"] for n in BUCKET_COUNTS}
    assert commit[16] > commit[1024]
    # Fabric's 1024-bucket default should sit in the efficient regime:
    # within 3x of the best configuration in this sweep.
    assert commit[1024] <= 3.0 * min(commit.values())
