"""Figure 13: analytics queries (a, b) and the DoNothing workload (c).

13a — Q1 latency is similar on all platforms (same number of RPCs).
13b — Q2 is ~10x faster on Hyperledger: one chaincode invocation
      (VersionKVStore, paper Figure 20) vs one getBalance RPC per block.
13c — DoNothing vs YCSB vs Smallbank throughput isolates consensus
      cost: the paper measures Ethereum ~10% faster on DoNothing and
      Parity identical everywhere (its bottleneck is transaction
      signing, paid even by empty transactions).

      Measured deviation (documented in EXPERIMENTS.md): on our
      Ethereum the PoW interval and gossip reach dominate so completely
      that the execution layer contributes no measurable difference —
      DoNothing equals YCSB instead of beating it by 10%. geth's +10%
      comes from mining and execution sharing the same cores, a
      coupling our simulator does not model (mining is a timer, not a
      CPU consumer). The execution-layer signal the paper reads from
      this figure does appear on Hyperledger, whose pipeline *is*
      CPU-bound: Smallbank pays a clear penalty against YCSB.
"""

from repro.core import ExperimentSpec, format_table, run_experiment
from repro.platforms import build_cluster
from repro.workloads import preload_history, run_q1, run_q2

from _common import BASE_DURATION, PLATFORMS, SCALE, emit, once

N_BLOCKS = int(1000 * SCALE)
SCANS = (1, 10, 100)


def _analytics(platform):
    cluster = build_cluster(platform, 2, seed=13)
    preload = preload_history(
        cluster, n_blocks=N_BLOCKS, txs_per_block=3, n_accounts=200
    )
    account = preload.account_names[0]
    out = []
    for scan in SCANS:
        q1 = run_q1(cluster, N_BLOCKS - scan, N_BLOCKS, tag=f"-{scan}")
        q2 = run_q2(cluster, account, N_BLOCKS - scan, N_BLOCKS, tag=f"-{scan}")
        out.append((scan, q1, q2))
    cluster.close()
    return out


def test_fig13ab_analytics(benchmark):
    def run():
        return {platform: _analytics(platform) for platform in PLATFORMS}

    results = once(benchmark, run)
    rows = []
    for platform, entries in results.items():
        for scan, q1, q2 in entries:
            rows.append(
                [
                    platform,
                    scan,
                    f"{q1.latency_s * 1000:.1f}",
                    q1.rpc_count,
                    f"{q2.latency_s * 1000:.1f}",
                    q2.rpc_count,
                ]
            )
    emit(
        "fig13ab_analytics",
        format_table(
            ["platform", "blocks", "Q1 ms", "Q1 RPCs", "Q2 ms", "Q2 RPCs"],
            rows,
            title="Figure 13a/b: analytics query latency",
        ),
    )
    biggest = SCANS[-1]
    eth = next(e for e in results["ethereum"] if e[0] == biggest)
    hlf = next(e for e in results["hyperledger"] if e[0] == biggest)
    par = next(e for e in results["parity"] if e[0] == biggest)
    # Q1: similar across platforms (same RPC count).
    assert eth[1].rpc_count == hlf[1].rpc_count == par[1].rpc_count
    assert eth[1].latency_s < 3 * hlf[1].latency_s
    assert hlf[1].latency_s < 3 * eth[1].latency_s
    # Q2: Hyperledger uses 1 RPC and is much faster at large scans.
    assert hlf[2].rpc_count == 1
    assert eth[2].rpc_count > biggest / 2
    assert eth[2].latency_s > 5 * hlf[2].latency_s


def test_fig13c_donothing(benchmark):
    def run():
        rows = []
        measured = {}
        for platform in PLATFORMS:
            for workload in ("smallbank", "ycsb", "donothing"):
                result = run_experiment(
                    ExperimentSpec(
                        platform=platform,
                        workload=workload,
                        n_servers=8,
                        n_clients=8,
                        request_rate_tx_s=256,
                        duration_s=BASE_DURATION,
                        seed=13,
                    )
                )
                measured[(platform, workload)] = result.throughput
                rows.append([platform, workload, f"{result.throughput:.0f}"])
        return rows, measured

    rows, measured = once(benchmark, run)
    emit(
        "fig13c_donothing",
        format_table(
            ["platform", "workload", "tx/s"],
            rows,
            title="Figure 13c: DoNothing isolates the consensus layer",
        ),
    )
    # Ethereum: consensus-bound — DoNothing matches YCSB (no execution
    # regression; see the module docstring for why the paper's +10%
    # does not emerge from this cost model).
    assert (
        measured[("ethereum", "donothing")]
        >= 0.97 * measured[("ethereum", "ycsb")]
    )
    # Parity: no difference — the signing stage dominates everything.
    parity = [measured[("parity", w)] for w in ("smallbank", "ycsb", "donothing")]
    assert max(parity) < 1.3 * min(parity)
    # Hyperledger is CPU-bound, so the execution layer is visible here:
    # Smallbank pays a clear penalty and DoNothing never loses to YCSB.
    assert (
        measured[("hyperledger", "smallbank")]
        <= 0.97 * measured[("hyperledger", "ycsb")]
    )
    assert (
        measured[("hyperledger", "donothing")]
        >= 0.97 * measured[("hyperledger", "ycsb")]
    )
