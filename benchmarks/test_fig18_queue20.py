"""Figure 18: client queue lengths at 20 servers / 20 clients.

Paper shape: at this scale Hyperledger fails to generate blocks, so its
clients' queues never shrink, while Ethereum's queue grows and shrinks
with mining progress. (The paper also notes Hyperledger's queue is
initially *smaller* — a symptom of the request-processing bottleneck at
its servers.)

Ours reproduces the queue divergence and its cause: Hyperledger's
20-node service rate sits well below the offered load (the per-tx cost
grows with N), the request watchdog drives a continuous view-change
storm, and the client-side queue grows monotonically for the whole
run. It does not reproduce v0.6's *total* halt — our PBFT recovers
views via state transfer — so the commit stream thins rather than
stops; the channel ablation covers the terminal form.
"""

from repro.core import Driver, DriverConfig, format_table
from repro.platforms import build_cluster
from repro.workloads import YCSBConfig, YCSBWorkload

from _common import BASE_DURATION, emit, once

N = 20
RATE = 80


def _run(platform):
    cluster = build_cluster(platform, N, seed=18)
    driver = Driver(
        cluster,
        YCSBWorkload(YCSBConfig(record_count=500)),
        DriverConfig(n_clients=N, request_rate_tx_s=RATE,
                     duration_s=2 * BASE_DURATION),
    )
    stats = driver.run()
    series = driver.queue_series()
    view_changes = sum(
        getattr(node.protocol, "view_changes_started", 0)
        for node in cluster.nodes
    )
    height = cluster.chain_height()
    cluster.close()
    return stats, series, view_changes, height


def test_fig18_queue_at_20_nodes(benchmark):
    def run():
        return {p: _run(p) for p in ("ethereum", "hyperledger")}

    results = once(benchmark, run)
    rows = []
    for platform, (stats, series, view_changes, height) in results.items():
        final = series[-1][1] if series else 0
        rows.append(
            [platform, f"{stats.throughput():.0f}", final, height, view_changes]
        )
    emit(
        "fig18_queue20",
        format_table(
            ["platform", "tx/s", "final queue", "blocks", "view changes"],
            rows,
            title=f"Figure 18: {N} servers x {N} clients @ {RATE} tx/s",
        ),
    )
    eth_stats, eth_series, _, eth_height = results["ethereum"]
    hlf_stats, hlf_series, hlf_vc, hlf_height = results["hyperledger"]
    # Hyperledger storms: the request watchdog fires on every replica
    # for the whole run.
    assert hlf_vc > 1000
    # Offered load (20 x 80 tx/s) exceeds the 20-node service rate, so
    # a large client-side backlog accumulates...
    offered = N * RATE * 2 * BASE_DURATION
    confirmed = len(hlf_stats.confirm_times)
    assert confirmed < 0.85 * offered
    final_queue = hlf_series[-1][1] if hlf_series else 0
    assert final_queue > 5_000
    # ...and the queue never shrinks: the run ends at (or essentially
    # at) its high-water mark, still growing across the tail window.
    peak_queue = max(q for _, q in hlf_series)
    assert final_queue >= 0.95 * peak_queue
    tail = [q for _, q in hlf_series[-10:]]
    assert tail[-1] > tail[0]
    # Ethereum keeps mining.
    assert eth_height > 10
