"""Figure 12: IOHeavy — bulk write/read throughput and disk usage.

Paper setup: 0.8M..12.8M tuples of 20-byte keys and 100-byte values.
Shape: Parity (in-memory state) has the best I/O rates but OOMs beyond
~3.2M tuples; Ethereum (Patricia trie over LevelDB) handles more data
at lower throughput; Hyperledger (flat keys in RocksDB) is fastest at
scale and uses an order of magnitude *less disk* — the trie's node
expansion is the write amplification.

This harness runs the real storage stacks (real LSM files on disk, real
tries) at a 20x scale-down; tuple counts scale with REPRO_BENCH_SCALE.
"""

import shutil
import tempfile
from pathlib import Path

from repro.core import format_table
from repro.errors import StorageError
from repro.platforms.ethereum import EthereumState
from repro.platforms.hyperledger import HyperledgerState
from repro.platforms.parity import ParityState
from repro.sim import Stopwatch

from _common import SCALE, emit, once

#: (our tuples, paper label) — 20x scale-down at SCALE=1.
SIZES = [(40_000, "0.8M"), (80_000, "1.6M"), (160_000, "3.2M"), (320_000, "6.4M")]
KEY_BYTES = 20
VALUE_BYTES = 100

#: Parity's modeled memory cap, scaled with the data (the paper's 32 GB
#: held "over 3M states"; at 20x down that is ~160k tuples of trie).
#: Recalibrated for the journaled-overlay write path (PR 5): per-put
#: path rewrites are gone, so trie bytes come from per-*block* interior
#: rewrites (~120 MB at 160k tuples, ~250 MB at 320k under the
#: interleaved block pattern below) — 3.2M fits, 6.4M OOMs.
PARITY_MEMORY_CAP = 160 * 1024 * 1024

#: Tuples per committed block, and the stride that spreads each block's
#: keys across the whole keyspace. Real IOHeavy traffic arrives
#: interleaved over many blocks — each commit rewrites shared interior
#: trie nodes while the bucket tree stores only the raw tuples, which
#: is exactly the write-amplification gap of Figure 12c. (Writing the
#: dataset as one sequential mega-block would let the batched trie
#: update build every path once and erase the gap being measured.)
TUPLES_PER_BLOCK = 5_000
KEY_STRIDE = 7_919  # prime, so the permutation covers every index


def _key(i: int) -> bytes:
    return f"io:{i:017d}".encode()


def _value(i: int) -> bytes:
    return (str(i).encode() * 12)[:VALUE_BYTES]


def _run_stack(name, state, n, read_sample=20_000):
    """Write n tuples (interleaved, committed per block) then read a
    sample; returns a result row dict."""
    watch_w = Stopwatch()
    try:
        with watch_w:
            height = 0
            for start in range(0, n, TUPLES_PER_BLOCK):
                height += 1
                for j in range(start, min(start + TUPLES_PER_BLOCK, n)):
                    i = (j * KEY_STRIDE) % n
                    state.put(_key(i), _value(i))
                state.commit_block(height)
    except StorageError:
        return {"name": name, "oom": True}
    watch_r = Stopwatch()
    sample = min(read_sample, n)
    step = max(1, n // sample)
    with watch_r:
        for i in range(0, n, step):
            assert state.get(_key(i)) is not None
    reads = len(range(0, n, step))
    disk = getattr(state, "disk_usage_bytes", lambda: 0)()
    memory = getattr(state, "memory_bytes", lambda: 0)()
    return {
        "name": name,
        "oom": False,
        "write_tps": n / watch_w.elapsed,
        "read_tps": reads / watch_r.elapsed,
        "disk_mb": disk / 1024**2,
        "mem_mb": memory / 1024**2,
    }


def test_fig12_ioheavy(benchmark):
    tmp = Path(tempfile.mkdtemp(prefix="ioheavy-"))

    def run():
        rows = []
        results = {}
        for n, label in SIZES:
            n = int(n * SCALE)
            stacks = [
                ("ethereum", EthereumState(tmp / f"eth-{label}")),
                ("parity", ParityState(memory_cap_bytes=PARITY_MEMORY_CAP)),
                ("hyperledger", HyperledgerState(tmp / f"hlf-{label}")),
            ]
            for name, state in stacks:
                outcome = _run_stack(name, state, n)
                results[(name, label)] = outcome
                if outcome["oom"]:
                    rows.append([label, name, "X", "X", "X (OOM)"])
                else:
                    footprint = (
                        f"{outcome['disk_mb']:.0f} disk"
                        if outcome["disk_mb"]
                        else f"{outcome['mem_mb']:.0f} mem"
                    )
                    rows.append(
                        [
                            label,
                            name,
                            f"{outcome['write_tps']:,.0f}",
                            f"{outcome['read_tps']:,.0f}",
                            footprint,
                        ]
                    )
                state.close()
        return rows, results

    try:
        rows, results = once(benchmark, run)
        emit(
            "fig12_ioheavy",
            format_table(
                ["tuples (paper)", "platform", "write tuple/s", "read tuple/s",
                 "MB"],
                rows,
                title="Figure 12: IOHeavy at 1/20 scale (real storage stacks)",
            ),
        )
        # Parity OOMs at the large sizes, the disk-backed stacks do not.
        assert results[("parity", "6.4M")]["oom"]
        assert not results[("ethereum", "6.4M")]["oom"]
        assert not results[("hyperledger", "6.4M")]["oom"]
        # Parity is fastest while it fits (in-memory, Section 4.2.2).
        assert (
            results[("parity", "0.8M")]["write_tps"]
            > results[("ethereum", "0.8M")]["write_tps"]
        )
        # Hyperledger beats Ethereum at scale and uses ~10x less disk.
        big = "3.2M"
        assert (
            results[("hyperledger", big)]["write_tps"]
            > results[("ethereum", big)]["write_tps"]
        )
        assert (
            results[("ethereum", big)]["disk_mb"]
            > 4 * results[("hyperledger", big)]["disk_mb"]
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
