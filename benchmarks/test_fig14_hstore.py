"""Figure 14: the three blockchains vs H-Store.

Paper numbers: H-Store reaches 142,702 tx/s on YCSB and 21,596 on
Smallbank with sub-millisecond latency — at least an order of
magnitude above Hyperledger's 1,273/1,122 and two orders above
Ethereum/Parity. And where H-Store pays 6.6x for Smallbank's
distributed transactions, the blockchains barely notice (~10%):
replicated state machines have no cross-partition coordination.
"""

from repro.core import ExperimentSpec, format_table, run_experiment
from repro.hstore import HStoreEngine, load_smallbank, load_ycsb, run_smallbank, run_ycsb

from _common import BASE_DURATION, emit, once

N_TXNS = 60_000
N_RECORDS = 50_000


def test_fig14_vs_hstore(benchmark):
    def run():
        ycsb_engine = HStoreEngine(8)
        load_ycsb(ycsb_engine, N_RECORDS)
        run_ycsb(ycsb_engine, N_TXNS, N_RECORDS)
        bank_engine = HStoreEngine(8)
        load_smallbank(bank_engine, N_RECORDS)
        run_smallbank(bank_engine, N_TXNS, N_RECORDS)
        blockchain = {}
        for platform in ("ethereum", "parity", "hyperledger"):
            for workload in ("ycsb", "smallbank"):
                result = run_experiment(
                    ExperimentSpec(
                        platform=platform,
                        workload=workload,
                        n_servers=8,
                        n_clients=8,
                        request_rate_tx_s=256,
                        duration_s=BASE_DURATION,
                        seed=14,
                    )
                )
                blockchain[(platform, workload)] = result.throughput
        return ycsb_engine, bank_engine, blockchain

    ycsb_engine, bank_engine, blockchain = once(benchmark, run)
    rows = [
        [
            "h-store",
            f"{ycsb_engine.throughput_tx_s():,.0f}",
            "142,702",
            f"{bank_engine.throughput_tx_s():,.0f}",
            "21,596",
            f"{ycsb_engine.mean_latency_s() * 1000:.2f}ms",
        ]
    ]
    paper = {
        ("ethereum", "ycsb"): "284",
        ("ethereum", "smallbank"): "255",
        ("parity", "ycsb"): "45",
        ("parity", "smallbank"): "46",
        ("hyperledger", "ycsb"): "1,273",
        ("hyperledger", "smallbank"): "1,122",
    }
    for platform in ("ethereum", "parity", "hyperledger"):
        rows.append(
            [
                platform,
                f"{blockchain[(platform, 'ycsb')]:,.0f}",
                paper[(platform, "ycsb")],
                f"{blockchain[(platform, 'smallbank')]:,.0f}",
                paper[(platform, "smallbank")],
                "-",
            ]
        )
    emit(
        "fig14_hstore",
        format_table(
            ["system", "ycsb tx/s", "paper", "smallbank tx/s", "paper",
             "latency"],
            rows,
            title="Figure 14: blockchains vs H-Store",
        ),
    )
    # H-Store is at least an order of magnitude above the best blockchain.
    best_chain = max(v for k, v in blockchain.items() if k[1] == "ycsb")
    assert ycsb_engine.throughput_tx_s() > 10 * best_chain
    # H-Store pays heavily for distributed transactions ...
    hstore_ratio = ycsb_engine.throughput_tx_s() / bank_engine.throughput_tx_s()
    assert hstore_ratio > 3.0
    # ... while the replicated blockchains barely do (paper: ~10%).
    hlf_ratio = (
        blockchain[("hyperledger", "ycsb")]
        / blockchain[("hyperledger", "smallbank")]
    )
    assert hlf_ratio < 1.6
    assert ycsb_engine.mean_latency_s() < 0.001
