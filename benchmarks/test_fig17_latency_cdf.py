"""Figure 17: latency distributions (CDF) for YCSB and Smallbank.

Paper shape: Ethereum has both the highest latency and the highest
variance (PoW block intervals are exponential); Parity has the lowest
variance (its server throttles request intake, so accepted requests see
an almost deterministic pipeline).
"""

from repro.core import ExperimentSpec, format_table, run_experiment

from _common import BASE_DURATION, PLATFORMS, emit, once


def test_fig17_latency_distribution(benchmark):
    def run():
        results = {}
        for platform in PLATFORMS:
            for workload in ("ycsb", "smallbank"):
                results[(platform, workload)] = run_experiment(
                    ExperimentSpec(
                        platform=platform,
                        workload=workload,
                        n_servers=8,
                        n_clients=8,
                        request_rate_tx_s=64,
                        duration_s=BASE_DURATION,
                        seed=17,
                    )
                )
        return results

    results = once(benchmark, run)
    rows = []
    spreads = {}
    for (platform, workload), result in results.items():
        stats = result.stats
        p10 = stats.latency_percentile(10)
        p50 = stats.latency_percentile(50)
        p90 = stats.latency_percentile(90)
        spread = (p90 - p10) / max(p50, 1e-9)
        spreads[(platform, workload)] = spread
        rows.append(
            [platform, workload, f"{p10:.2f}", f"{p50:.2f}", f"{p90:.2f}",
             f"{spread:.2f}"]
        )
    emit(
        "fig17_latency_cdf",
        format_table(
            ["platform", "workload", "p10 (s)", "p50 (s)", "p90 (s)",
             "spread (p90-p10)/p50"],
            rows,
            title="Figure 17: latency distribution (CDF percentiles)",
        ),
    )
    # Ethereum's relative spread beats Parity's (PoW randomness).
    assert spreads[("ethereum", "ycsb")] > spreads[("parity", "ycsb")]
    # Ethereum is the slowest of the three at the median.
    eth_p50 = results[("ethereum", "ycsb")].stats.latency_percentile(50)
    for platform in ("parity", "hyperledger"):
        assert eth_p50 > results[(platform, "ycsb")].stats.latency_percentile(50)

    # CDF curves are exported for plotting.
    cdf = results[("ethereum", "ycsb")].stats.latency_cdf(20)
    assert cdf[-1][1] == 1.0
