"""Figure 9: crash 4 servers mid-run at 12 and 16 servers.

Paper shape: Ethereum nearly unaffected; Parity unaffected (surviving
authorities pick up the slots); Hyperledger-12 stops producing blocks
entirely (quorum 9 > 8 alive) while Hyperledger-16 continues at a
lower rate after stabilizing views.
"""

from repro.core import (
    CrashFault,
    Driver,
    DriverConfig,
    FaultSchedule,
    format_table,
)
from repro.platforms import build_cluster
from repro.workloads import YCSBConfig, YCSBWorkload

from _common import BASE_DURATION, PLATFORMS, emit, once

CRASH_COUNT = 4


def _run(platform, n_servers):
    duration = max(80.0, 2 * BASE_DURATION)
    crash_at = duration / 2
    cluster = build_cluster(platform, n_servers, seed=9)
    driver = Driver(
        cluster,
        YCSBWorkload(YCSBConfig(record_count=500)),
        DriverConfig(n_clients=8, request_rate_tx_s=40, duration_s=duration),
    )
    driver.prepare()
    # Crash from the head (includes the PBFT view-0 leader — the harder
    # case) except on Parity, where node 0 holds the signing account and
    # killing it is a different failure than the paper's experiment.
    FaultSchedule(
        crashes=[
            CrashFault(
                at_time=crash_at,
                count=CRASH_COUNT,
                include_leader=platform != "parity",
            )
        ]
    ).arm(cluster)
    stats = driver.run()
    # Commit rates before and after the crash (skip a settling window).
    before = sum(1 for t in stats.confirm_times if t <= crash_at) / crash_at
    settle = crash_at + 15.0
    after_window = duration - settle
    after = sum(1 for t in stats.confirm_times if t > settle) / max(
        1e-9, after_window
    )
    cluster.close()
    return before, after


def test_fig09_crash_tolerance(benchmark):
    def run():
        rows = []
        measured = {}
        for platform in PLATFORMS:
            for n_servers in (12, 16):
                before, after = _run(platform, n_servers)
                measured[(platform, n_servers)] = (before, after)
                verdict = "halted" if after < 0.05 * max(before, 1e-9) else "survived"
                rows.append(
                    [platform, n_servers, f"{before:.0f}", f"{after:.0f}", verdict]
                )
        return rows, measured

    rows, measured = once(benchmark, run)
    emit(
        "fig09_fault_tolerance",
        format_table(
            ["platform", "servers", "tx/s before", "tx/s after", "verdict"],
            rows,
            title=f"Figure 9: {CRASH_COUNT} servers crashed mid-run",
        ),
    )
    # Hyperledger-12 halts; Hyperledger-16 keeps going (slower or equal).
    hlf12_before, hlf12_after = measured[("hyperledger", 12)]
    hlf16_before, hlf16_after = measured[("hyperledger", 16)]
    assert hlf12_after < 0.05 * hlf12_before
    assert hlf16_after > 0.3 * hlf16_before
    # Ethereum and Parity survive at both sizes.
    for platform in ("ethereum", "parity"):
        for size in (12, 16):
            before, after = measured[(platform, size)]
            assert after > 0.5 * before
