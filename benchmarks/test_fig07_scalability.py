"""Figure 7: scalability with clients = servers, YCSB.

Paper shape: Parity constant (centralized signing); Ethereum degrades
beyond 8 servers (difficulty grows super-linearly and transactions
reach only part of the mining power); Hyperledger delivers the highest
throughput up to 16 servers and *stops working* beyond that — replicas
drown, request timeouts fire, and view changes storm (Section 4.1.2).

Our PBFT reproduces the knee and the storm mechanism: at 20 nodes the
per-transaction cost (which grows with N through the O(N-1) gossip
broadcast) exceeds the offered load, the backlog ages past Fabric
v0.6's 2.5 s request timeout, and every replica starts view changes
continuously (thousands per run). Latency blows up by an order of
magnitude and throughput falls below the 16-node peak. v0.6's
*terminal* death additionally required its broken view-change recovery
(dropped view-change traffic left views permanently diverged); our
implementation carries PBFT's state-transfer path, so the storm churns
instead of killing the node outright — see the channel-capacity
ablation (`test_abl_pbft_channel.py`), which reproduces the terminal
form by shrinking the channel until view-change votes themselves drop.

The sweep itself is a single ScenarioSpec: ``clients=None`` pins the
client axis to the server axis, the paper's clients = servers setup.
"""

from repro.core import ScenarioSpec, ScenarioSuite, format_table

from _common import BASE_DURATION, PLATFORMS, emit, once

SIZES = (4, 8, 16, 20)  # paper sweeps 1..32; trimmed for wall time
RATE = 80  # tx/s per client, clients = servers

SUITE = ScenarioSuite(
    name="fig07",
    scenarios=[
        ScenarioSpec(
            name="scalability",
            platforms=PLATFORMS,
            workloads="ycsb",
            servers=SIZES,
            clients=None,  # match servers point-by-point
            rates=RATE,
            durations=BASE_DURATION,
            seeds=7,
        )
    ],
)


def test_fig07_scalability(benchmark):
    suite_result = once(benchmark, SUITE.run)

    rows = []
    measured = {}
    for platform in PLATFORMS:
        for size in SIZES:
            result = suite_result.one(platform=platform, servers=size)
            measured[(platform, size)] = result
            rows.append(
                [
                    platform,
                    size,
                    f"{result.throughput:.0f}",
                    f"{result.latency:.1f}",
                    result.view_changes,
                ]
            )
    emit(
        "fig07_scalability",
        format_table(
            ["platform", "nodes", "tx/s", "latency (s)", "view changes"],
            rows,
            title=f"Figure 7: scalability, clients = servers, {RATE} tx/s each",
        ),
    )
    # Hyperledger: healthy at <= 16, storming beyond. At 16 nodes the
    # offered load still fits the pipeline: full throughput, quiet views.
    hlf16 = measured[("hyperledger", 16)]
    hlf20 = measured[("hyperledger", 20)]
    assert hlf16.throughput > 800
    assert hlf16.view_changes < 10
    # At 20 nodes the request-timeout watchdog fires on every replica,
    # continuously: the view-change storm of Section 4.1.2.
    assert hlf20.view_changes > 1000
    # The storm costs real performance: latency explodes past the knee
    # and throughput drops below the 16-node peak despite higher load.
    assert hlf20.latency > 3.0
    assert hlf20.latency > 5 * hlf16.latency
    assert hlf20.throughput < 0.95 * hlf16.throughput
    # Parity: flat throughput across sizes.
    parity = [measured[("parity", s)].throughput for s in SIZES]
    assert max(parity) < 2.5 * max(1e-9, min(parity))
    # Ethereum: degrades with network size beyond the reference 8.
    assert (
        measured[("ethereum", 20)].throughput
        < measured[("ethereum", 8)].throughput
    )
