"""Figure 19: scalability with the Smallbank benchmark.

Paper shape: same patterns as YCSB's Figure 7, "except that Hyperledger
failed to scale beyond 8 nodes instead of 16" — Smallbank transactions
are more expensive to execute, so the saturation point arrives earlier.
This harness uses a per-client rate that puts 12 nodes past the
capacity knee.
"""

from repro.core import ExperimentSpec, format_table, run_experiment

from _common import BASE_DURATION, PLATFORMS, emit, once

SIZES = (4, 8, 12)
RATE = 130


def test_fig19_smallbank_scalability(benchmark):
    def run():
        rows = []
        measured = {}
        for platform in PLATFORMS:
            for size in SIZES:
                result = run_experiment(
                    ExperimentSpec(
                        platform=platform,
                        workload="smallbank",
                        n_servers=size,
                        n_clients=size,
                        request_rate_tx_s=RATE,
                        duration_s=max(70.0, 2 * BASE_DURATION),
                        seed=19,
                    )
                )
                measured[(platform, size)] = result
                rows.append(
                    [
                        platform,
                        size,
                        f"{result.throughput:.0f}",
                        f"{result.latency:.1f}",
                        result.view_changes,
                    ]
                )
        return rows, measured

    rows, measured = once(benchmark, run)
    emit(
        "fig19_smallbank_scale",
        format_table(
            ["platform", "nodes", "tx/s", "latency (s)", "view changes"],
            rows,
            title=f"Figure 19: Smallbank scalability, clients = servers @ {RATE} tx/s",
        ),
    )
    # Hyperledger: healthy at 8, collapsed by 12 (earlier than YCSB's 16,
    # which survives this per-client rate — see Figure 7's 16-node run).
    assert measured[("hyperledger", 8)].throughput > 600
    assert (
        measured[("hyperledger", 12)].throughput
        < 0.5 * measured[("hyperledger", 8)].throughput
        or measured[("hyperledger", 12)].view_changes > 10
    )
    # Parity flat, as always.
    parity = [measured[("parity", s)].throughput for s in SIZES]
    assert max(parity) < 2.5 * max(1e-9, min(parity))
