"""Figure 16: CPU and network utilization per platform.

Paper shape: Ethereum is CPU-bound (PoW saturates all 8 cores);
Hyperledger "uses CPU sparingly and spends the rest of the time on
network communication" (PBFT is communication-bound); Parity has the
lowest footprint on both axes.
"""

from repro.core import ExperimentSpec, format_table, run_experiment

from _common import BASE_DURATION, PLATFORMS, emit, once


def test_fig16_resource_utilization(benchmark):
    def run():
        results = {}
        for platform in PLATFORMS:
            results[platform] = run_experiment(
                ExperimentSpec(
                    platform=platform,
                    workload="ycsb",
                    n_servers=8,
                    n_clients=8,
                    request_rate_tx_s=128,
                    duration_s=BASE_DURATION,
                    seed=16,
                    with_monitor=True,
                )
            )
        return results

    results = once(benchmark, run)
    rows = [
        [
            platform,
            f"{result.mean_cpu_pct:.1f}",
            f"{result.mean_net_mbps:.2f}",
        ]
        for platform, result in results.items()
    ]
    emit(
        "fig16_resources",
        format_table(
            ["platform", "CPU %", "network Mbps"],
            rows,
            title="Figure 16: resource utilization (8 servers, YCSB)",
        ),
    )
    eth, par, hlf = (results[p] for p in ("ethereum", "parity", "hyperledger"))
    # Ethereum: CPU-bound — mining pins the cores.
    assert eth.mean_cpu_pct > 60.0
    assert eth.mean_cpu_pct > 3 * hlf.mean_cpu_pct
    # Hyperledger: communication-bound — the most network traffic.
    assert hlf.mean_net_mbps > eth.mean_net_mbps
    assert hlf.mean_net_mbps > par.mean_net_mbps
    # Parity: modest on both axes.
    assert par.mean_cpu_pct < eth.mean_cpu_pct
