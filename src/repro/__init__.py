"""BLOCKBENCH reproduction: a framework for analyzing private blockchains.

Reproduces Dinh et al., *BLOCKBENCH: A Framework for Analyzing Private
Blockchains* (SIGMOD 2017) as a self-contained Python library: the
benchmarking framework itself (driver, connectors, workloads, metrics,
fault and attack injection) plus faithful simulators of the paper's
platforms — Ethereum (PoW), Parity (PoA), Hyperledger Fabric v0.6
(PBFT) and ErisDB (Tendermint) — built layer by layer on a
deterministic discrete-event kernel.

Quickstart::

    from repro import ExperimentSpec, run_experiment

    result = run_experiment(
        ExperimentSpec(platform="hyperledger", workload="ycsb",
                       n_servers=8, n_clients=8,
                       request_rate_tx_s=256, duration_s=30)
    )
    print(result.throughput, result.latency)

Custom measurement clients are generator-coroutines over the awaitable
connector API (``IBlockchainConnector`` v2)::

    from repro import RPCClient, SimChainConnector, build_cluster, spawn

    cluster = build_cluster("hyperledger", 4, seed=1)
    rpc = RPCClient("probe", cluster.scheduler, cluster.network)
    connector = SimChainConnector(cluster, rpc, cluster.node_ids()[0])

    def probe():
        reply = yield connector.query("kvstore", "read", ("k",))
        return reply.get("output")

    future = spawn(probe())
    cluster.run_until(5.0)
    print(future.result())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record.
"""

from .core import (
    BlockSubscription,
    Driver,
    DriverConfig,
    ExperimentResult,
    ExperimentSpec,
    FaultSchedule,
    IBlockchainConnector,
    RPCClient,
    SimChainConnector,
    StatsCollector,
    StatsSummary,
    Workload,
    format_table,
    run_experiment,
    run_partition_attack,
)
from .errors import ReproError
from .platforms import build_cluster
from .sim import SimCoroutine, SimFuture, gather, spawn
from .workloads import make_workload

__version__ = "1.1.0"

__all__ = [
    "BlockSubscription",
    "Driver",
    "DriverConfig",
    "ExperimentResult",
    "ExperimentSpec",
    "FaultSchedule",
    "IBlockchainConnector",
    "RPCClient",
    "SimChainConnector",
    "SimCoroutine",
    "SimFuture",
    "StatsCollector",
    "StatsSummary",
    "Workload",
    "format_table",
    "gather",
    "run_experiment",
    "run_partition_attack",
    "spawn",
    "ReproError",
    "build_cluster",
    "make_workload",
    "__version__",
]
