"""Command-line interface to the BLOCKBENCH framework.

Six subcommands cover the framework's day-to-day entry points:

``blockbench run``
    One macro-benchmark experiment (the Driver pipeline of Figure 4):
    pick a platform, a workload, cluster and client counts, and get the
    paper's metrics — throughput, latency percentiles, queue growth.

``blockbench suite``
    A declarative measurement campaign: a JSON scenario file expands
    into a grid of experiments (platform x workload x servers x rate x
    seed ...), runs it — optionally fanned out across CPU cores — and
    emits one merged summary (see ``repro.core.scenario``).

``blockbench attack``
    The Section 4.1.3 partition attack: split the network in half for a
    window and report the fork exposure (total vs main-branch blocks).

``blockbench report``
    Post-hoc analysis over a suite's ``--out-dir`` result store. The
    ``--bottleneck`` mode renders each run's lifecycle stage breakdown
    (submit → admit → propose → decide → execute → commit → notify,
    see ``repro.core.trace``) and names the dominant stage.

``blockbench perf``
    The framework's own performance trajectory: microbenchmarks for the
    EVM, trie, scheduler, and end-to-end driver hot paths, written to a
    machine-readable ``BENCH_*.json`` file so gains (and regressions)
    across PRs are measured, not asserted.

``blockbench list``
    The registered platforms, workloads, consensus protocols, and
    byzantine behaviors, each with a one-line description.

Examples
--------
::

    blockbench run --platform hyperledger --workload ycsb \
        --servers 8 --clients 8 --rate 256 --duration 60
    blockbench suite examples/scenarios/peak_sweep.json --processes 4
    blockbench attack --platform ethereum --start 100 --length 150
    blockbench report results/ --bottleneck
    blockbench perf --quick --out BENCH_local.json
    blockbench list

Platform and workload names come from the plugin registries
(``repro.registry``); a backend registered by a third-party module is
immediately addressable from every subcommand.

``main`` returns an exit code instead of calling ``sys.exit`` so tests
(and other programs) can drive the CLI in-process.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .core import (
    ARRIVAL_PROCESSES,
    BYZANTINE_BEHAVIORS,
    CLIENT_MODES,
    ExperimentSpec,
    FaultSchedule,
    ByzantineFault,
    CrashFault,
    Driver,
    DriverConfig,
    ScenarioSuite,
    format_table,
    run_experiment,
    run_partition_attack,
)
from .errors import ReproError
from .registry import CONSENSUS, PLATFORMS, WORKLOADS

# Importing these populates the registries with the built-ins.
from . import consensus as _consensus  # noqa: F401
from . import platforms as _platforms  # noqa: F401
from . import workloads as _workloads  # noqa: F401

#: Platform names accepted by ``repro.platforms.build_cluster``
#: (registry-derived; kept as a tuple for backwards compatibility).
PLATFORM_NAMES = tuple(PLATFORMS.names())

#: Workload names accepted by ``repro.workloads.make_workload``.
WORKLOAD_NAMES = tuple(WORKLOADS.names())


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="blockbench",
        description="BLOCKBENCH: a framework for analyzing private blockchains",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one macro-benchmark experiment")
    run.add_argument(
        "--platform", choices=PLATFORMS.names(), default="hyperledger"
    )
    run.add_argument("--workload", choices=WORKLOADS.names(), default="ycsb")
    run.add_argument("--servers", type=int, default=8)
    run.add_argument("--clients", type=int, default=8)
    run.add_argument(
        "--rate", type=float, default=100.0,
        help="request rate per client (tx/s)",
    )
    run.add_argument("--duration", type=float, default=30.0, help="seconds")
    run.add_argument("--seed", type=int, default=42)
    run.add_argument(
        "--poll-interval", type=float, metavar="S",
        default=DriverConfig.poll_interval_s,
        help="getLatestBlock polling period per client "
             f"(default {DriverConfig.poll_interval_s:g}s)",
    )
    run.add_argument(
        "--threads", type=int, metavar="N",
        default=DriverConfig.threads_per_client,
        help="worker threads per client, one submission RPC in flight "
             f"each (default {DriverConfig.threads_per_client})",
    )
    run.add_argument(
        "--retry-interval", type=float, metavar="S",
        default=DriverConfig.retry_interval_s,
        help="backoff before a rejected submission is retried "
             f"(default {DriverConfig.retry_interval_s:g}s)",
    )
    run.add_argument(
        "--client-mode", choices=CLIENT_MODES, default="coroutine",
        help="client implementation: the awaitable coroutine API or the "
             "legacy callback adapter (timelines are identical)",
    )
    run.add_argument(
        "--blocking", action="store_true",
        help="one outstanding transaction per client (latency mode)",
    )
    run.add_argument(
        "--subscribe", action="store_true",
        help="confirm via the pub/sub block feed (ErisDB only)",
    )
    run.add_argument(
        "--crash", type=int, default=0, metavar="N",
        help="crash N servers at mid-run (Figure 9 style)",
    )
    run.add_argument(
        "--crash-at", type=float, metavar="S", default=None,
        help="crash time for --crash servers (default: duration/2)",
    )
    run.add_argument(
        "--recover-at", type=float, metavar="S", default=None,
        help="restart the crashed servers at S: they block-sync from "
             "live peers, replay, and rejoin consensus (requires --crash)",
    )
    run.add_argument(
        "--recovery-mode", choices=("warm", "cold"), default="warm",
        help="warm keeps the crashed node's state (sync the gap only); "
             "cold wipes it, forcing a full replay (default warm)",
    )
    run.add_argument(
        "--failover", action="store_true",
        help="clients fail over to the next live server when an RPC "
             "times out (deterministic exponential backoff; pairs "
             "naturally with --crash/--recover-at)",
    )
    run.add_argument(
        "--byzantine", type=int, default=0, metavar="N",
        help="make N servers byzantine for the middle half of the run",
    )
    run.add_argument(
        "--byzantine-behavior",
        choices=sorted(BYZANTINE_BEHAVIORS),
        default="equivocate",
        help="adversarial strategy for --byzantine (default equivocate)",
    )
    run.add_argument(
        "--arrival-process", choices=ARRIVAL_PROCESSES, default=None,
        help="switch to the open-loop driver: transactions arrive by "
             "this process at --arrival-rate regardless of back-pressure "
             "(closed-loop client knobs are ignored)",
    )
    run.add_argument(
        "--arrival-rate", type=float, metavar="TX_S", default=None,
        help="aggregate open-loop arrival rate (tx/s); requires "
             "--arrival-process",
    )
    run.add_argument(
        "--arrival-accounts", type=int, metavar="N", default=100_000,
        help="open-loop sender population size (default 100000)",
    )
    run.add_argument(
        "--arrival-zipf-s", type=float, metavar="S", default=0.0,
        help="Zipf skew over sender accounts (0 = uniform, default)",
    )
    run.add_argument(
        "--read-ratio", type=float, metavar="R", default=None,
        help="fraction of read operations in the workload mix (0..1); "
             "translated per-workload, rejected by fixed-mix workloads",
    )
    run.add_argument(
        "--exec-workers", type=int, metavar="W", default=1,
        help="modeled execution-engine workers for intra-block "
             "parallelism (default 1 = serial; results are "
             "byte-identical across W, only execution time shrinks)",
    )
    run.add_argument(
        "--no-trace-stages", action="store_true",
        help="disable per-transaction lifecycle stage tracing (drops "
             "the stage breakdown from the output; the simulated "
             "timeline is identical either way)",
    )
    run.add_argument(
        "--stats-reservoir", type=int, metavar="K", default=0,
        help="cap per-collector latency samples at K via reservoir "
             "sampling (0 = unbounded, the default; see "
             "repro.core.stats for the percentile-accuracy tradeoff)",
    )
    run.add_argument("--json", action="store_true", help="machine-readable output")
    run.add_argument(
        "--export-dir", metavar="DIR",
        help="write plot-ready CSV series (summary, queue, CDF, commits)",
    )

    suite = sub.add_parser(
        "suite", help="run a declarative scenario suite from a JSON file"
    )
    suite.add_argument(
        "file", nargs="?",
        help="scenario file (see repro.core.scenario); "
             "not used with --compare",
    )
    suite.add_argument(
        "--processes", type=int, default=1, metavar="N",
        help="fan the grid out across N worker processes",
    )
    suite.add_argument(
        "--plugin", action="append", default=[], metavar="MODULE",
        help="import MODULE first so its registered platforms/workloads "
             "are available (repeatable)",
    )
    suite.add_argument(
        "--out-dir", metavar="DIR",
        help="persist each grid point to DIR/runs/<spec-hash>.json as it "
             "completes (plus a DIR/suite.json manifest)",
    )
    suite.add_argument(
        "--resume", action="store_true",
        help="skip grid points whose result file already exists in "
             "--out-dir — continue a killed campaign",
    )
    suite.add_argument(
        "--compare", nargs=2, metavar=("BASE", "CURRENT"),
        help="diff two --out-dir result directories aligned by spec "
             "hash instead of running anything; exit 1 on regression",
    )
    suite.add_argument(
        "--gc", action="store_true",
        help="instead of running, prune run files from --out-dir whose "
             "spec hashes are no longer in the scenario file's grid "
             "(stale points from an older grid shape)",
    )
    suite.add_argument(
        "--threshold", type=float, default=None, metavar="FRAC",
        help="--compare regression tolerance: fail a point whose "
             "throughput drops (or avg latency rises) by more than "
             "FRAC of base (default 0.05)",
    )
    suite.add_argument("--json", action="store_true", help="machine-readable output")
    suite.add_argument(
        "--export-dir", metavar="DIR",
        help="write the merged grid and per-run summaries as CSV",
    )

    attack = sub.add_parser(
        "attack", help="partition the network in half and measure forks"
    )
    attack.add_argument(
        "--platform", choices=PLATFORMS.names(), default="ethereum"
    )
    attack.add_argument("--servers", type=int, default=8)
    attack.add_argument("--clients", type=int, default=8)
    attack.add_argument("--rate", type=float, default=20.0)
    attack.add_argument("--start", type=float, default=100.0, help="attack start (s)")
    attack.add_argument("--length", type=float, default=150.0, help="attack length (s)")
    attack.add_argument(
        "--total", type=float, default=0.0,
        help="total run length (default: start + length + 100)",
    )
    attack.add_argument("--seed", type=int, default=42)
    attack.add_argument("--json", action="store_true")

    report = sub.add_parser(
        "report", help="analyze a suite's --out-dir result store"
    )
    report.add_argument(
        "dir",
        help="result directory written by 'blockbench suite --out-dir'",
    )
    report.add_argument(
        "--bottleneck", action="store_true",
        help="per-run lifecycle stage breakdown: where each "
             "transaction's end-to-end latency was spent, with the "
             "dominant stage marked (requires runs recorded with "
             "trace_stages on, the default)",
    )
    report.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    perf = sub.add_parser(
        "perf", help="run the framework's hot-path microbenchmarks"
    )
    perf.add_argument(
        "--quick", action="store_true",
        help="smaller problem sizes (CI smoke mode)",
    )
    perf.add_argument(
        "--only", action="append", default=[], metavar="NAME",
        help="run only the named benchmark (repeatable); "
             "see repro.core.perf.BENCHMARKS",
    )
    perf.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="take the best of N runs per benchmark (default 3)",
    )
    perf.add_argument(
        "--out", default="BENCH_local.json", metavar="PATH",
        help="trajectory file to write (default BENCH_local.json; the "
             "committed BENCH_pr*.json baselines are overwritten only "
             "when named explicitly)",
    )
    perf.add_argument(
        "--no-write", action="store_true",
        help="print results without writing the trajectory file",
    )
    perf.add_argument(
        "--baseline", metavar="PATH",
        help="embed PATH's results as the baseline and print speedups",
    )
    perf.add_argument(
        "--fail-below", action="append", default=[], metavar="NAME=RATIO",
        help="exit non-zero if NAME's ops/s falls below RATIO x the "
             "--baseline figure (repeatable), e.g. driver_tx=0.5 — the "
             "CI guard against silent hot-path regressions",
    )
    perf.add_argument("--json", action="store_true", help="machine-readable output")

    sub.add_parser("list", help="list platforms and workloads")
    return parser


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    if (args.crash_at is not None or args.recover_at is not None) and not args.crash:
        print(
            "error: --crash-at/--recover-at require --crash N",
            file=sys.stderr,
        )
        return 2
    faults = None
    if args.crash or args.byzantine:
        crashes = []
        byzantines = []
        if args.crash:
            crashes.append(
                CrashFault(
                    at_time=(
                        args.duration / 2
                        if args.crash_at is None
                        else args.crash_at
                    ),
                    count=args.crash,
                    recover_at=args.recover_at,
                    recovery_mode=args.recovery_mode,
                )
            )
        if args.byzantine:
            # Middle half of the run: long enough to bite, with healthy
            # lead-in and recovery phases on either side.
            byzantines.append(
                ByzantineFault(
                    at_time=args.duration / 4,
                    until_time=args.duration * 3 / 4,
                    behavior=args.byzantine_behavior,
                    count=args.byzantine,
                )
            )
        faults = FaultSchedule(crashes=crashes, byzantines=byzantines)
    arrival = None
    if args.arrival_process is not None:
        if args.arrival_rate is None:
            print(
                "error: --arrival-process requires --arrival-rate",
                file=sys.stderr,
            )
            return 2
        arrival = {
            "process": args.arrival_process,
            "rate": args.arrival_rate,
            "accounts": args.arrival_accounts,
            "zipf_s": args.arrival_zipf_s,
        }
    elif args.arrival_rate is not None:
        print(
            "error: --arrival-rate requires --arrival-process",
            file=sys.stderr,
        )
        return 2
    result = run_experiment(
        ExperimentSpec(
            platform=args.platform,
            workload=args.workload,
            n_servers=args.servers,
            n_clients=args.clients,
            request_rate_tx_s=args.rate,
            duration_s=args.duration,
            seed=args.seed,
            poll_interval_s=args.poll_interval,
            threads_per_client=args.threads,
            retry_interval_s=args.retry_interval,
            client_mode=args.client_mode,
            blocking=args.blocking,
            subscribe=args.subscribe,
            failover=args.failover,
            faults=faults,
            arrival=arrival,
            stats_reservoir=args.stats_reservoir,
            read_ratio=args.read_ratio,
            trace_stages=not args.no_trace_stages,
            config_overrides=(
                {"exec_workers": args.exec_workers}
                if args.exec_workers != 1 else {}
            ),
        )
    )
    summary = result.summary
    if args.export_dir:
        from pathlib import Path

        from .core import (
            export_commit_series,
            export_latency_cdf,
            export_queue_series,
            export_summary,
            write_csv,
        )

        out = Path(args.export_dir)
        export_summary(out / "summary.csv", [summary])
        export_queue_series(out / "queue.csv", result.stats)
        export_latency_cdf(out / "latency_cdf.csv", result.stats)
        export_commit_series(out / "commits.csv", result.stats)
        write_csv(
            out / "run.csv",
            ["platform", "workload", "servers", "clients", "rate_tx_s",
             "duration_s", "seed"],
            [[args.platform, args.workload, args.servers, args.clients,
              args.rate, args.duration, args.seed]],
        )
        print(f"wrote CSV series to {out}/", file=sys.stderr)
    breakdown = summary.stage_breakdown
    if args.json:
        payload = {
            "platform": args.platform,
            "workload": args.workload,
            "servers": args.servers,
            "clients": args.clients,
            "rate_tx_s": args.rate,
            "duration_s": args.duration,
            "throughput_tx_s": summary.throughput_tx_s,
            "latency_avg_s": summary.latency_avg_s,
            "latency_p50_s": summary.latency_p50_s,
            "latency_p99_s": summary.latency_p99_s,
            "submitted": summary.submitted,
            "confirmed": summary.confirmed,
            "chain_height": result.chain_height,
            "total_blocks": result.total_blocks,
            "main_branch_blocks": result.main_branch_blocks,
            "view_changes": result.view_changes,
            "safety_violations": result.safety_violations,
            "safety_report": result.safety_report,
        }
        if summary.recovery_time_s:
            payload["recovery_time_s"] = summary.recovery_time_s
            payload["sync_requests"] = summary.sync_requests
            payload["sync_blocks"] = summary.sync_blocks
            payload["sync_bytes"] = summary.sync_bytes
        if breakdown is not None:
            import dataclasses

            payload["dominant_stage"] = breakdown.dominant_stage()
            payload["stage_breakdown"] = dataclasses.asdict(breakdown)
        print(json.dumps(payload))
        return 0
    rows = [
        ["throughput (tx/s)", f"{summary.throughput_tx_s:.1f}"],
        ["latency avg (s)", f"{summary.latency_avg_s:.3f}"],
        ["latency p50 (s)", f"{summary.latency_p50_s:.3f}"],
        ["latency p99 (s)", f"{summary.latency_p99_s:.3f}"],
        ["submitted", summary.submitted],
        ["confirmed", summary.confirmed],
        ["chain height", result.chain_height],
        ["fork blocks", result.total_blocks - result.main_branch_blocks],
        ["view changes", result.view_changes],
        [
            "chain safety",
            (
                "ok"
                if result.safety_violations == 0
                else f"{result.safety_violations} VIOLATIONS"
            ),
        ],
    ]
    for node_id in sorted(summary.recovery_time_s):
        rows.append(
            [f"recovery {node_id} (s)", f"{summary.recovery_time_s[node_id]:.2f}"]
        )
    if summary.recovery_time_s:
        rows.append(
            [
                "sync traffic",
                f"{summary.sync_blocks} blocks / {summary.sync_bytes} B "
                f"({summary.sync_requests} requests)",
            ]
        )
    if result.safety_violations and result.safety_report:
        for violation in result.safety_report["violations"][:5]:
            rows.append(
                [
                    f"  {violation['kind']} @h{violation['height']}",
                    ",".join(violation["nodes"]),
                ]
            )
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"{args.platform} / {args.workload}: {args.servers} servers, "
                f"{args.clients} clients @ {args.rate:g} tx/s for "
                f"{args.duration:g}s"
            ),
        )
    )
    if breakdown is not None and breakdown.traced:
        from .core import bottleneck_table

        print()
        print(bottleneck_table(breakdown))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if not args.bottleneck:
        print(
            "error: report needs a mode flag (currently: --bottleneck)",
            file=sys.stderr,
        )
        return 2
    from .core import StageBreakdown, bottleneck_table
    from .core.suitestore import SuiteStore

    runs = SuiteStore.load_runs(args.dir)
    entries = []
    for hash_, data in sorted(runs.items()):
        spec = data.get("spec", {})
        label = spec.get("label", "")
        name = f"{spec.get('platform', '?')}/{spec.get('workload', '?')}"
        if label:
            name += f" [{label}]"
        raw = data.get("summary", {}).get("stage_breakdown")
        breakdown = StageBreakdown.from_dict(raw) if raw is not None else None
        entries.append((hash_, name, breakdown))
    if args.json:
        import dataclasses

        payload = {
            "dir": args.dir,
            "runs": [
                {
                    "spec_hash": hash_,
                    "run": name,
                    "dominant_stage": (
                        breakdown.dominant_stage() if breakdown else None
                    ),
                    "stage_breakdown": (
                        dataclasses.asdict(breakdown) if breakdown else None
                    ),
                }
                for hash_, name, breakdown in entries
            ],
        }
        print(json.dumps(payload))
        return 0
    untraced = 0
    for hash_, name, breakdown in entries:
        if breakdown is None or not breakdown.traced:
            untraced += 1
            continue
        print(bottleneck_table(breakdown, title=f"{name} ({hash_})"))
        print()
    if untraced:
        print(
            f"{untraced} run(s) without a stage breakdown (recorded with "
            "trace_stages off, or by an older build)",
            file=sys.stderr,
        )
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    # Imported here so `blockbench list` works even if platform deps
    # grow heavier later; keeps CLI startup light.
    from .platforms import build_cluster
    from .workloads import DoNothingWorkload

    total = args.total or (args.start + args.length + 100.0)
    cluster = build_cluster(args.platform, args.servers, seed=args.seed)
    driver = Driver(
        cluster,
        DoNothingWorkload(),
        DriverConfig(
            n_clients=args.clients,
            request_rate_tx_s=args.rate,
            duration_s=total,
        ),
    )
    driver.prepare()
    for client in driver.clients:
        client.start(total)
    report = run_partition_attack(
        cluster,
        attack_start=args.start,
        attack_duration=args.length,
        total_duration=total,
    )
    cluster.close()
    last = report.samples[-1] if report.samples else None
    if args.json:
        print(
            json.dumps(
                {
                    "platform": args.platform,
                    "attack_start_s": args.start,
                    "attack_length_s": args.length,
                    "total_blocks": last.total_blocks if last else 0,
                    "main_branch_blocks": last.main_branch_blocks if last else 0,
                    "fork_blocks": report.final_fork_blocks(),
                    "fork_ratio": report.fork_ratio(),
                    "peak_fork_fraction": report.peak_fork_fraction(),
                }
            )
        )
        return 0
    rows = [
        ["total blocks", last.total_blocks if last else 0],
        ["main branch blocks", last.main_branch_blocks if last else 0],
        ["fork blocks", report.final_fork_blocks()],
        ["fork ratio (main/total)", f"{report.fork_ratio():.3f}"],
        ["peak fork fraction", f"{report.peak_fork_fraction():.3f}"],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"partition attack on {args.platform}: "
                f"{args.start:g}s..{args.start + args.length:g}s of {total:g}s"
            ),
        )
    )
    return 0


def _cmd_suite_compare(args: argparse.Namespace) -> int:
    from .core.compare import DEFAULT_THRESHOLD, compare_suites

    base, current = args.compare
    threshold = (
        DEFAULT_THRESHOLD if args.threshold is None else args.threshold
    )
    comparison = compare_suites(base, current, threshold=threshold)
    if args.json:
        print(json.dumps(comparison.to_json()))
    else:
        print(comparison.format())
    regressions = comparison.regressions()
    if regressions:
        print(
            f"suite compare FAILED: {len(regressions)} of "
            f"{len(comparison.deltas)} point(s) regressed beyond "
            f"{threshold:.1%}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    import importlib

    if args.compare:
        if args.file is not None:
            print(
                "error: --compare takes two result directories and no "
                "scenario file",
                file=sys.stderr,
            )
            return 2
        # Run-mode flags would be silently meaningless here; reject
        # them the same way --threshold is rejected in run mode.
        run_only = [
            ("--out-dir", args.out_dir),
            ("--resume", args.resume),
            ("--gc", args.gc),
            ("--export-dir", args.export_dir),
            ("--plugin", args.plugin),
            ("--processes", args.processes != 1),
        ]
        offending = [flag for flag, given in run_only if given]
        if offending:
            print(
                f"error: {', '.join(offending)} only apply when running "
                "a scenario file, not with --compare",
                file=sys.stderr,
            )
            return 2
        return _cmd_suite_compare(args)
    if args.file is None:
        print("error: a scenario file is required (or --compare)", file=sys.stderr)
        return 2
    if args.threshold is not None:
        print("error: --threshold only applies to --compare", file=sys.stderr)
        return 2
    if args.resume and not args.out_dir:
        print("error: --resume requires --out-dir", file=sys.stderr)
        return 2
    if args.gc and not args.out_dir:
        print("error: --gc requires --out-dir", file=sys.stderr)
        return 2
    if args.gc:
        # Nothing runs in gc mode; silently accepting run-mode flags
        # would let `--gc --resume` prune and exit 0 with the caller
        # believing the campaign also ran.
        gc_conflicts = [
            ("--resume", args.resume),
            ("--export-dir", args.export_dir),
            ("--processes", args.processes != 1),
        ]
        offending = [flag for flag, given in gc_conflicts if given]
        if offending:
            print(
                f"error: {', '.join(offending)} only apply when running "
                "a scenario file, not with --gc",
                file=sys.stderr,
            )
            return 2
    for module_name in args.plugin:
        try:
            importlib.import_module(module_name)
        except ImportError as exc:
            print(
                f"error: cannot import plugin {module_name!r}: {exc}",
                file=sys.stderr,
            )
            return 2
    suite = ScenarioSuite.from_file(args.file)
    if args.gc:
        from pathlib import Path

        from .core.suitestore import SuiteStore, spec_hash

        # gc must never invent a store: a typo'd --out-dir would
        # otherwise be silently created empty and reported clean while
        # the real store keeps its stale files.
        if not (Path(args.out_dir) / "runs").is_dir():
            print(
                f"error: {args.out_dir} is not a suite result directory "
                "(no runs/ inside); expected the --out-dir of a previous "
                "'blockbench suite' run",
                file=sys.stderr,
            )
            return 2
        keep = {spec_hash(spec) for spec in suite.expand()}
        removed = SuiteStore(args.out_dir).gc(keep)
        payload = {
            "suite": suite.name,
            "kept": len(keep),
            "removed": [path.stem for path in removed],
        }
        if args.json:
            print(json.dumps(payload))
        else:
            for path in removed:
                print(f"removed stale run {path.name}", file=sys.stderr)
            print(
                f"suite {suite.name}: gc removed {len(removed)} stale run "
                f"file(s); grid has {len(keep)} point(s)"
            )
        return 0
    if args.processes > 1:
        total = len(suite.expand())
        print(
            f"suite {suite.name}: {total} runs across "
            f"{min(args.processes, total)} processes",
            file=sys.stderr,
        )
        result = suite.run(
            processes=args.processes,
            plugin_modules=args.plugin,
            out_dir=args.out_dir,
            resume=args.resume,
        )
    else:
        def progress(index: int, count: int, spec: ExperimentSpec) -> None:
            point = f"{spec.platform}/{spec.workload}"
            if spec.label:
                point += f" [{spec.label}]"
            print(
                f"[{index + 1}/{count}] {point}: {spec.n_servers} servers, "
                f"{spec.n_clients} clients @ {spec.request_rate_tx_s:g} tx/s",
                file=sys.stderr,
            )

        result = suite.run(
            progress=progress, out_dir=args.out_dir, resume=args.resume
        )
    if args.out_dir:
        executed = len(result.results) - result.resumed
        print(
            f"suite {result.name}: executed {executed}, resumed "
            f"{result.resumed} of {len(result.results)} runs "
            f"(results in {args.out_dir}/runs)",
            file=sys.stderr,
        )
    if args.export_dir:
        paths = result.export(args.export_dir)
        print(f"wrote {', '.join(p.name for p in paths)} to {args.export_dir}/",
              file=sys.stderr)
    if args.json:
        print(json.dumps(result.to_json()))
    else:
        print(result.format())
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    # Imported lazily: the harness pulls in every layer it measures.
    from .core import perf

    def progress(name: str, attempt: int, total: int) -> None:
        print(f"bench {name} [{attempt}/{total}]", file=sys.stderr)

    try:
        gates = dict(perf.parse_gate(raw) for raw in args.fail_below)
        if gates and not args.baseline:
            raise ValueError("--fail-below requires --baseline")
        # Loaded before the (minutes-long) benchmark run so a missing,
        # corrupt, or wrong-shaped baseline file fails fast and cleanly.
        baseline = None
        if args.baseline:
            try:
                baseline = perf.load_trajectory(args.baseline)
            except (OSError, json.JSONDecodeError) as exc:
                raise ValueError(
                    f"cannot load baseline {args.baseline!r}: {exc}"
                ) from None
        if gates:
            # A gate that cannot be evaluated must fail before the run,
            # not after: check every gated name against both the
            # baseline's measurements and the --only selection.
            missing = sorted(set(gates) - perf.baseline_names(baseline))
            if missing:
                raise ValueError(
                    f"baseline {args.baseline!r} has no measurement for "
                    f"gated benchmark(s): {', '.join(missing)}"
                )
            if args.only:
                skipped = sorted(set(gates) - set(args.only))
                if skipped:
                    raise ValueError(
                        f"gated benchmark(s) {', '.join(skipped)} are "
                        "excluded by --only and would never be measured"
                    )
        results = perf.run_perf(
            names=args.only or None,
            quick=args.quick,
            repeats=args.repeats,
            progress=progress,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = perf.trajectory_dict(results, quick=args.quick, baseline=baseline)
    gate_failures = (
        perf.check_gates(results, baseline, gates) if baseline is not None else []
    )
    if not args.no_write:
        path = perf.write_trajectory(args.out, results, payload=payload)
        print(f"wrote trajectory to {path}", file=sys.stderr)
    if args.json:
        print(json.dumps(payload))
        for failure in gate_failures:
            print(f"perf gate FAILED: {failure}", file=sys.stderr)
        return 1 if gate_failures else 0
    rows = [
        [r.name, f"{r.ops_per_s:,.0f} {r.unit}/s", f"{r.wall_time_s:.3f}s"]
        for r in results
    ]
    print(
        format_table(
            ["benchmark", "throughput", "wall time"],
            rows,
            title=f"blockbench perf @ {payload['git_rev']}"
            + (" (quick)" if args.quick else ""),
        )
    )
    if baseline is not None:
        comparison = perf.compare(results, baseline)
        if comparison:
            print(
                format_table(
                    ["benchmark", "baseline", "current", "speedup"],
                    [
                        [name, f"{base:,.0f}", f"{cur:,.0f}", f"{speedup:.2f}x"]
                        for name, base, cur, speedup in comparison
                    ],
                    title=f"vs baseline @ {baseline.get('git_rev', '?')}",
                )
            )
    for failure in gate_failures:
        print(f"perf gate FAILED: {failure}", file=sys.stderr)
    return 1 if gate_failures else 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("platforms:")
    for name, spec in PLATFORMS.items():
        line = f"  {name}"
        if spec.description:
            line += f" — {spec.description.splitlines()[0]}"
        print(line)
    print("workloads:")
    for name, spec in WORKLOADS.items():
        line = f"  {name}"
        if spec.description:
            line += f" — {spec.description.splitlines()[0]}"
        print(line)
    print("consensus protocols:")
    for name, protocol_type in CONSENSUS.items():
        line = f"  {name}"
        doc = protocol_type.__doc__
        if doc:
            line += f" — {doc.strip().splitlines()[0]}"
        print(line)
    print("byzantine behaviors:")
    for name in sorted(BYZANTINE_BEHAVIORS):
        line = f"  {name}"
        doc = BYZANTINE_BEHAVIORS[name].__doc__
        if doc:
            line += f" — {doc.strip().splitlines()[0]}"
        print(line)
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "suite": _cmd_suite,
    "attack": _cmd_attack,
    "report": _cmd_report,
    "perf": _cmd_perf,
    "list": _cmd_list,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns an exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
