"""H-Store baseline: partitioned in-memory OLTP engine (Figure 14)."""

from .engine import (
    OP_COST_S,
    TWO_PC_COST_S,
    HStoreEngine,
    HStoreTxn,
    TxnOp,
    TxnResult,
)
from .workloads import (
    load_smallbank,
    load_ycsb,
    run_smallbank,
    run_ycsb,
    smallbank_txn,
    ycsb_txn,
)

__all__ = [
    "OP_COST_S",
    "TWO_PC_COST_S",
    "HStoreEngine",
    "HStoreTxn",
    "TxnOp",
    "TxnResult",
    "load_smallbank",
    "load_ycsb",
    "run_smallbank",
    "run_ycsb",
    "smallbank_txn",
    "ycsb_txn",
]
