"""H-Store analogue: a partitioned, in-memory, lock-free OLTP engine.

The paper's Appendix B baseline (Figure 14). H-Store's design: data is
hash-partitioned across sites; each partition executes transactions
serially on its own thread with *no* locking or latching, so a
single-partition transaction costs only its execution time
(microseconds). Multi-partition transactions need blocking two-phase
commit across the involved partitions — that coordination is exactly
why the paper measures Smallbank at 6.6x lower throughput than YCSB on
H-Store, while blockchains (fully replicated, no partitioning) see
almost no difference.

Data operations execute for real against per-partition dicts; time is
modeled: each partition accumulates busy-time, and throughput derives
from the busiest partition (partitions run in parallel).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..errors import BenchmarkError

#: Single-partition execution cost per operation (seconds). Calibrated
#: so 8 partitions sustain ~140k YCSB tx/s (Figure 14's 142,702).
OP_COST_S = 5.2e-5
#: Extra coordinator + participant cost of a blocking 2PC round.
#: Together with the RTT this is calibrated to the paper's 6.6x
#: YCSB-to-Smallbank throughput ratio on H-Store (Appendix B).
TWO_PC_COST_S = 4.0e-5
#: Network round-trip between sites during 2PC.
TWO_PC_RTT_S = 1.5e-5


@dataclass
class TxnOp:
    """One read or write against one key."""

    kind: str  # "read" | "write"
    key: str
    value: bytes | None = None


@dataclass
class HStoreTxn:
    """A transaction: a list of operations executed atomically."""

    ops: list[TxnOp]
    name: str = "txn"


@dataclass
class TxnResult:
    committed: bool
    reads: dict[str, bytes | None] = field(default_factory=dict)
    partitions: tuple[int, ...] = ()
    latency_s: float = 0.0


class HStoreEngine:
    """Partitioned executor with modeled time."""

    def __init__(self, n_partitions: int = 8) -> None:
        if n_partitions < 1:
            raise BenchmarkError("H-Store needs at least one partition")
        self.n_partitions = n_partitions
        self._partitions: list[dict[str, bytes]] = [
            {} for _ in range(n_partitions)
        ]
        self._busy_s = [0.0] * n_partitions
        self.committed = 0
        self.aborted = 0
        self.single_partition_txns = 0
        self.multi_partition_txns = 0
        self._latencies: list[float] = []

    # ------------------------------------------------------------------
    def partition_of(self, key: str) -> int:
        digest = hashlib.sha256(key.encode()).digest()
        return int.from_bytes(digest[:4], "big") % self.n_partitions

    def load(self, key: str, value: bytes) -> None:
        """Bulk load outside the measured window."""
        self._partitions[self.partition_of(key)][key] = value

    def get(self, key: str) -> bytes | None:
        """Unmeasured point read (for verification in tests)."""
        return self._partitions[self.partition_of(key)].get(key)

    # ------------------------------------------------------------------
    def execute(self, txn: HStoreTxn) -> TxnResult:
        """Run ``txn`` to commit; returns reads and modeled latency."""
        partitions = tuple(sorted({self.partition_of(op.key) for op in txn.ops}))
        if not partitions:
            raise BenchmarkError("empty transaction")
        # Real data work.
        reads: dict[str, bytes | None] = {}
        for op in txn.ops:
            store = self._partitions[self.partition_of(op.key)]
            if op.kind == "read":
                reads[op.key] = store.get(op.key)
            elif op.kind == "write":
                if op.value is None:
                    store.pop(op.key, None)
                else:
                    store[op.key] = op.value
            else:
                raise BenchmarkError(f"unknown op kind {op.kind!r}")
        # Modeled time.
        work_s = OP_COST_S * len(txn.ops)
        if len(partitions) == 1:
            self.single_partition_txns += 1
            latency = work_s
            self._busy_s[partitions[0]] += work_s
        else:
            self.multi_partition_txns += 1
            # Blocking 2PC: every involved partition is held for the
            # whole transaction plus the coordination round trips.
            latency = work_s + TWO_PC_COST_S + 2 * TWO_PC_RTT_S
            for partition in partitions:
                self._busy_s[partition] += latency
        self.committed += 1
        self._latencies.append(latency)
        return TxnResult(
            committed=True, reads=reads, partitions=partitions, latency_s=latency
        )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def elapsed_s(self) -> float:
        """Modeled wall time: partitions run in parallel."""
        return max(self._busy_s) if any(self._busy_s) else 0.0

    def throughput_tx_s(self) -> float:
        elapsed = self.elapsed_s()
        return self.committed / elapsed if elapsed > 0 else 0.0

    def mean_latency_s(self) -> float:
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def reset_metrics(self) -> None:
        self._busy_s = [0.0] * self.n_partitions
        self.committed = 0
        self.aborted = 0
        self.single_partition_txns = 0
        self.multi_partition_txns = 0
        self._latencies.clear()
