"""YCSB and Smallbank adapters for the H-Store engine (Figure 14).

YCSB single-key operations are single-partition by construction;
Smallbank's transfers touch two customers whose rows usually live on
different partitions, forcing 2PC — the source of the paper's 6.6x
throughput gap between the two workloads on H-Store.
"""

from __future__ import annotations

import random

from ..contracts.base import encode_int
from .engine import HStoreEngine, HStoreTxn, TxnOp


def load_ycsb(engine: HStoreEngine, record_count: int, value_size: int = 100) -> None:
    for i in range(record_count):
        engine.load(f"user{i}", b"x" * value_size)


def ycsb_txn(rng: random.Random, record_count: int, read_fraction: float = 0.5,
             value_size: int = 100) -> HStoreTxn:
    key = f"user{rng.randrange(record_count)}"
    if rng.random() < read_fraction:
        return HStoreTxn(ops=[TxnOp("read", key)], name="ycsb-read")
    return HStoreTxn(
        ops=[TxnOp("write", key, b"y" * value_size)], name="ycsb-write"
    )


def load_smallbank(
    engine: HStoreEngine, n_accounts: int, balance: int = 10_000
) -> None:
    for i in range(n_accounts):
        engine.load(f"sav:acct{i}", encode_int(balance))
        engine.load(f"chk:acct{i}", encode_int(balance))


def smallbank_txn(rng: random.Random, n_accounts: int) -> HStoreTxn:
    """A Smallbank procedure; transfers dominate (the multi-key cases)."""
    roll = rng.random()
    a = f"acct{rng.randrange(n_accounts)}"
    b = f"acct{rng.randrange(n_accounts)}"
    while b == a:
        b = f"acct{rng.randrange(n_accounts)}"
    amount = encode_int(rng.randrange(1, 100))
    if roll < 0.25:  # send_payment: two customers, read+write each
        return HStoreTxn(
            name="send_payment",
            ops=[
                TxnOp("read", f"chk:{a}"),
                TxnOp("read", f"chk:{b}"),
                TxnOp("write", f"chk:{a}", amount),
                TxnOp("write", f"chk:{b}", amount),
            ],
        )
    if roll < 0.40:  # amalgamate: two customers, three rows
        return HStoreTxn(
            name="amalgamate",
            ops=[
                TxnOp("read", f"sav:{a}"),
                TxnOp("read", f"chk:{a}"),
                TxnOp("write", f"sav:{a}", encode_int(0)),
                TxnOp("write", f"chk:{a}", encode_int(0)),
                TxnOp("write", f"chk:{b}", amount),
            ],
        )
    if roll < 0.55:  # write_check
        return HStoreTxn(
            name="write_check",
            ops=[
                TxnOp("read", f"sav:{a}"),
                TxnOp("read", f"chk:{a}"),
                TxnOp("write", f"chk:{a}", amount),
            ],
        )
    if roll < 0.70:  # transact_savings
        return HStoreTxn(
            name="transact_savings",
            ops=[TxnOp("read", f"sav:{a}"), TxnOp("write", f"sav:{a}", amount)],
        )
    if roll < 0.85:  # deposit_checking
        return HStoreTxn(
            name="deposit_checking",
            ops=[TxnOp("read", f"chk:{a}"), TxnOp("write", f"chk:{a}", amount)],
        )
    return HStoreTxn(  # balance
        name="balance",
        ops=[TxnOp("read", f"sav:{a}"), TxnOp("read", f"chk:{a}")],
    )


def run_ycsb(engine: HStoreEngine, n_txns: int, record_count: int = 100_000,
             seed: int = 1) -> None:
    rng = random.Random(seed)
    for _ in range(n_txns):
        engine.execute(ycsb_txn(rng, record_count))


def run_smallbank(engine: HStoreEngine, n_txns: int, n_accounts: int = 100_000,
                  seed: int = 1) -> None:
    rng = random.Random(seed)
    for _ in range(n_txns):
        engine.execute(smallbank_txn(rng, n_accounts))
