"""Proof-of-Work consensus (Ethereum's Ethash, abstracted).

Mining is a memoryless search, so each miner's time-to-solution is an
exponential random variable whose mean is ``difficulty x n_miners``
(with homogeneous hashpower, the *network* then finds one block per
``difficulty`` seconds on average). The protocol reproduces the PoW
behaviours the paper measures:

* probabilistic block intervals (latency variance, Figure 17),
* natural and partition-induced forks with longest-chain resolution
  (Figure 10),
* difficulty retargeting, including the paper's observation that the
  difficulty must grow faster than the node count to keep large
  networks from diverging (Section 4.1.2, Figure 8),
* full-CPU mining (Figure 16's CPU-bound profile).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..chain.block import Block
from ..registry import register_consensus
from .base import ConsensusHost, ConsensusProtocol
from .gossip import AncestorFetcher

BLOCK_MSG = "pow/block"


@dataclass
class PoWConfig:
    """Tuning for a PoW network."""

    #: Network-wide mean seconds per block at the reference size.
    base_block_interval: float = 2.5
    #: Node count the base interval was tuned for (the paper used 8).
    reference_nodes: int = 8
    #: Super-linear difficulty growth: interval scales with
    #: ``(n / reference) ** difficulty_exponent`` for n > reference,
    #: reproducing "the difficulty level increases at higher rate than
    #: the number of nodes" (Section 4.1.2).
    difficulty_exponent: float = 1.45
    #: Retarget step per block (Ethereum uses bounded 1/2048 steps;
    #: we use a coarser step because our runs are minutes, not weeks).
    retarget_step: float = 0.05
    #: Blocks behind tip before a block counts as confirmed.
    confirmation_depth: int = 5
    #: Max transactions per block (the gasLimit analogue is enforced
    #: by the platform's assemble_block; this caps count outright).
    max_txs_per_block: int = 800
    #: CPU cores saturated by mining (Figure 16 shows 8).
    mining_cores: int = 8

    def network_interval(self, n_nodes: int) -> float:
        """Target network block interval for ``n_nodes`` miners."""
        if n_nodes <= self.reference_nodes:
            return self.base_block_interval
        scale = (n_nodes / self.reference_nodes) ** self.difficulty_exponent
        return self.base_block_interval * scale


@register_consensus("pow")
class ProofOfWork(ConsensusProtocol):
    """One miner's view of the PoW protocol."""

    message_kinds = (BLOCK_MSG,) + AncestorFetcher.message_kinds

    def __init__(self, host: ConsensusHost, config: PoWConfig) -> None:
        super().__init__(host)
        self.config = config
        self.fetcher = AncestorFetcher(host)
        self._mining_event = None
        self._mining_started_at: float | None = None
        self._current_parent_hash: bytes | None = None
        self._running = False
        # Difficulty expressed as the network-wide mean seconds/block.
        self.difficulty_interval = config.base_block_interval
        self.blocks_mined = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._running = True
        n_nodes = len(self.host.peer_ids()) + 1
        self.difficulty_interval = self.config.network_interval(n_nodes)
        self._restart_mining()

    def stop(self) -> None:
        self._running = False
        self._account_mining_cpu()
        if self._mining_event is not None:
            self._mining_event.cancel()
            self._mining_event = None

    def restart(self, height: int, view_hint: int = 0) -> None:
        """Resume mining on the synced tip after crash recovery.

        Difficulty is a chain property, not process state: the tip
        block's header carries the interval the network had converged
        to, so a recovered miner adopts it instead of resetting to the
        cold-start baseline (which would briefly over-produce blocks).
        """
        self._running = True
        tip_difficulty = self.host.chain().tip.header.meta("difficulty", "")
        if tip_difficulty:
            self.difficulty_interval = float(tip_difficulty)
        else:
            n_nodes = len(self.host.peer_ids()) + 1
            self.difficulty_interval = self.config.network_interval(n_nodes)
        self._restart_mining()

    # ------------------------------------------------------------------
    # Mining
    # ------------------------------------------------------------------
    def _expected_solo_interval(self) -> float:
        """Mean solve time for this miner alone."""
        n_miners = len(self.host.peer_ids()) + 1
        return self.difficulty_interval * n_miners

    def _restart_mining(self) -> None:
        if not self._running:
            return
        self._account_mining_cpu()
        if self._mining_event is not None:
            self._mining_event.cancel()
        delay = self.host.rng().expovariate(1.0 / self._expected_solo_interval())
        self._mining_started_at = self.host.now
        self._current_parent_hash = self.host.chain().tip.hash
        self._mining_event = self.host.set_timer(delay, self._found_block)

    def _account_mining_cpu(self) -> None:
        """Mining burns all cores for the whole search window."""
        if self._mining_started_at is not None:
            elapsed = self.host.now - self._mining_started_at
            self.host.consume_cpu(elapsed * self.config.mining_cores)
            self._mining_started_at = None

    def _found_block(self) -> None:
        if not self._running:
            return
        self._account_mining_cpu()
        parent = self.host.chain().tip
        # A solution only counts against the tip we were mining on.
        if self._current_parent_hash != parent.hash:
            self._restart_mining()
            return
        block = self.host.assemble_block(
            parent,
            consensus_meta={
                "difficulty": f"{self.difficulty_interval:.4f}",
                "nonce": str(self.host.rng().getrandbits(64)),
            },
            max_txs=self.config.max_txs_per_block,
        )
        self.blocks_mined += 1
        self._retarget(parent, block)
        self.host.deliver_block(block)
        self.host.broadcast_to_peers(BLOCK_MSG, block, block.size_bytes())
        self._restart_mining()

    def _retarget(self, parent: Block, block: Block) -> None:
        """Homeostatic difficulty adjustment toward the target interval."""
        n_nodes = len(self.host.peer_ids()) + 1
        target = self.config.network_interval(n_nodes)
        observed = block.header.timestamp - parent.header.timestamp
        if observed < target:
            self.difficulty_interval *= 1.0 + self.config.retarget_step
        else:
            self.difficulty_interval = max(
                target, self.difficulty_interval * (1.0 - self.config.retarget_step)
            )

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def on_message(self, kind: str, payload: Any, sender: str) -> None:
        if self.fetcher.on_message(kind, payload, sender):
            if self.host.chain().tip.hash != self._current_parent_hash:
                self._restart_mining()
            return
        if kind != BLOCK_MSG:
            return
        block: Block = payload
        reorganized = self.host.deliver_block(block)
        self.fetcher.maybe_fetch(block, sender)
        if reorganized:
            # Tip moved: abandon the stale search immediately.
            self._restart_mining()

    def confirmed_height(self) -> int:
        """Highest height the paper's client driver would treat as final."""
        return max(0, self.host.chain().height - self.config.confirmation_depth)
