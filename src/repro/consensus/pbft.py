"""Practical Byzantine Fault Tolerance (Hyperledger Fabric v0.6's protocol).

Full three-phase PBFT: the view-``v`` leader batches pending
transactions into a block and broadcasts PRE-PREPARE; replicas validate
and broadcast PREPARE; once a quorum of prepares is seen they broadcast
COMMIT; a quorum of commits executes the batch. Liveness is guarded by
view changes with escalating timeouts.

Two deliberately faithful details drive the paper's headline results:

* **Quorum size is ``N - f`` with ``f = (N - 1) // 3``.** For the
  classic ``N = 3f + 1`` this equals ``2f + 1``; for other N it is the
  conservative quorum Fabric v0.6 effectively waited for. It is why a
  12-server network halts after 4 crashes (quorum 9 > 8 alive) while a
  16-server network keeps going (quorum 11 <= 12 alive) — Figure 9.

* **Consensus messages share the node's bounded inbox with the
  transaction gossip flood.** Under overload the network layer drops
  whatever overflows, prepares and commits included; quorums stall,
  view-change messages are themselves dropped, and replicas end up "in
  different views ... receiving conflicting view change messages"
  (Section 4.1.2) — the >16-node collapse of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..chain.block import Block
from ..crypto.hashing import Hash
from ..registry import register_consensus
from .base import ConsensusHost, ConsensusProtocol

PRE_PREPARE = "pbft/pre-prepare"
PREPARE = "pbft/prepare"
COMMIT = "pbft/commit"
VIEW_CHANGE = "pbft/view-change"
NEW_VIEW = "pbft/new-view"
SYNC_REQ = "pbft/sync-req"
SYNC_RESP = "pbft/sync-resp"

_CONTROL_MSG_BYTES = 96


@dataclass
class PBFTConfig:
    """Tuning for one PBFT network (Fabric v0.6 defaults)."""

    batch_size: int = 500
    #: How often the leader checks whether a batch is worth proposing.
    batch_interval: float = 0.25
    #: No-progress window before a replica starts a view change.
    view_timeout: float = 2.0
    #: Extra timeout per failed view-change attempt.
    view_timeout_backoff: float = 1.0
    #: Per-request watchdog (Fabric v0.6's request timeout): if the
    #: oldest pending request has waited longer than this, the replica
    #: suspects the primary and starts a view change — even when the
    #: primary is merely drowning. Under sustained overload every
    #: replica fires repeatedly, views diverge, and throughput
    #: collapses: the paper's >16-node failure mode (Section 4.1.2).
    request_timeout: float = 2.5


@dataclass
class _LogEntry:
    """Per-sequence bookkeeping for the three phases."""

    view: int
    block: Block | None = None
    digest: Hash | None = None
    prepares: set[str] = field(default_factory=set)
    commits: set[str] = field(default_factory=set)
    sent_commit: bool = False
    executed: bool = False


@register_consensus("pbft")
class PBFT(ConsensusProtocol):
    """One replica's view of the PBFT protocol."""

    message_kinds = (
        PRE_PREPARE,
        PREPARE,
        COMMIT,
        VIEW_CHANGE,
        NEW_VIEW,
        SYNC_REQ,
        SYNC_RESP,
    )
    proposal_kinds = (PRE_PREPARE,)
    vote_kinds = (PREPARE, COMMIT)

    def __init__(
        self,
        host: ConsensusHost,
        config: PBFTConfig,
        replicas: list[str],
    ) -> None:
        super().__init__(host)
        self.config = config
        self.replicas = list(replicas)
        self.view = 0
        self.last_executed = 0
        self.log: dict[int, _LogEntry] = {}
        self.in_flight = False
        self._running = False
        self._view_change_votes: dict[int, set[str]] = {}
        self._view_changing = False
        self._pending_new_view: int | None = None
        self._progress_timer = None
        self._progress_deadline = 0.0
        # Statistics surfaced in experiment reports.
        self.view_changes_started = 0
        self.views_entered = 0
        self.batches_committed = 0

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Replica count."""
        return len(self.replicas)

    @property
    def f(self) -> int:
        """Byzantine faults tolerated: strictly less than N/3."""
        return (self.n - 1) // 3

    @property
    def quorum(self) -> int:
        """Certificate size: N - f (see the module docstring for why
        this, and not 2f + 1, reproduces Figure 9)."""
        return self.n - self.f

    def leader_of(self, view: int) -> str:
        """Primary of ``view`` (round-robin over the replica list)."""
        return self.replicas[view % self.n]

    def is_leader(self) -> bool:
        """Whether this replica is the current view's primary."""
        return self.leader_of(self.view) == self.host.node_id

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the batching/watchdog tick loop."""
        self._running = True
        self.host.set_timer(self.config.batch_interval, self._batch_tick)

    def stop(self) -> None:
        """Stop participating (crash injection)."""
        self._running = False

    def restart(self, height: int, view_hint: int = 0) -> None:
        """Rejoin after crash recovery: adopt the synced chain position
        and the current view learned from sync peers.

        Without the view hint a recovered replica would come back in
        view 0, reject the live primary's pre-prepares, and force the
        cluster through a cascade of view changes to drag it forward;
        with it the replica slots straight into the active view (the
        real protocol's NEW-VIEW/checkpoint transfer, simplified).
        """
        self.last_executed = max(self.last_executed, height)
        if view_hint > self.view:
            self.view = view_hint
        self._view_changing = False
        self._pending_new_view = None
        self.in_flight = False
        # Pre-crash phase state is gone with the process; anything not
        # yet executed will be re-proposed from the mempool.
        self.log = {
            seq: entry for seq, entry in self.log.items()
            if entry.executed and seq <= self.last_executed
        }
        self._view_change_votes = {
            view: votes
            for view, votes in self._view_change_votes.items()
            if view > self.view
        }
        self._progress_deadline = 0.0
        self.start()
        self._arm_progress_timer()

    def on_new_pending_tx(self) -> None:
        """Arm the no-progress watchdog; batching happens on the tick."""
        self._arm_progress_timer()

    # ------------------------------------------------------------------
    # Leader: batching and proposal
    # ------------------------------------------------------------------
    def _batch_tick(self) -> None:
        if not self._running:
            return
        self._check_request_timeout()
        self._try_propose()
        self.host.set_timer(self.config.batch_interval, self._batch_tick)

    def _check_request_timeout(self) -> None:
        """Fabric v0.6's request watchdog (see PBFTConfig.request_timeout)."""
        if self._view_changing:
            return
        age = self.host.oldest_request_age()
        if age > self.config.request_timeout:
            self._start_view_change(self.view + 1)

    def _try_propose(self) -> None:
        if (
            not self.is_leader()
            or self._view_changing
            or self.in_flight
            or self.host.pending_count() == 0
        ):
            return
        parent = self.host.chain().tip
        seq = self.last_executed + 1
        if parent.height + 1 != seq:
            return  # chain and log disagree; wait for sync
        block = self.host.assemble_block(
            parent,
            consensus_meta={"view": str(self.view), "seq": str(seq)},
            max_txs=self.config.batch_size,
        )
        if not block.transactions:
            return
        self.in_flight = True
        entry = self._entry(seq, self.view)
        entry.block = block
        entry.digest = block.hash
        self.host.broadcast_to_peers(PRE_PREPARE, block, block.size_bytes())
        self._record_prepare(seq, self.host.node_id, block.hash)
        self.host.broadcast_to_peers(
            PREPARE,
            {"view": self.view, "seq": seq, "digest": block.hash},
            _CONTROL_MSG_BYTES,
        )
        self._arm_progress_timer()

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, kind: str, payload: Any, sender: str) -> None:
        """Dispatch one PBFT message to its phase handler."""
        if not self._running:
            return
        if kind == PRE_PREPARE:
            self._on_pre_prepare(payload, sender)
        elif kind == PREPARE:
            self._on_prepare(payload, sender)
        elif kind == COMMIT:
            self._on_commit(payload, sender)
        elif kind == VIEW_CHANGE:
            self._on_view_change(payload, sender)
        elif kind == NEW_VIEW:
            self._on_new_view(payload, sender)
        elif kind == SYNC_REQ:
            self._on_sync_req(payload, sender)
        elif kind == SYNC_RESP:
            self._on_sync_resp(payload, sender)

    def _entry(self, seq: int, view: int) -> _LogEntry:
        entry = self.log.get(seq)
        if entry is None or entry.view != view:
            entry = _LogEntry(view=view)
            self.log[seq] = entry
        return entry

    def _on_pre_prepare(self, block: Block, sender: str) -> None:
        if sender != self.leader_of(self.view) or self._view_changing:
            return
        if not self.proposal_intact(block):
            return  # digest fails verification (byzantine leader)
        seq = block.height
        if seq <= self.last_executed:
            return  # already executed (a retransmission)
        if seq > self.last_executed + 1:
            self._request_sync(sender)
        entry = self._entry(seq, self.view)
        entry.block = block
        entry.digest = block.hash
        self._record_prepare(seq, self.host.node_id, block.hash)
        self.host.broadcast_to_peers(
            PREPARE,
            {"view": self.view, "seq": seq, "digest": block.hash},
            _CONTROL_MSG_BYTES,
        )
        self._arm_progress_timer()
        self._check_phase_transitions(seq)

    def _on_prepare(self, payload: dict, sender: str) -> None:
        if payload["view"] != self.view:
            return
        self._record_prepare(payload["seq"], sender, payload["digest"])
        self._check_phase_transitions(payload["seq"])

    def _record_prepare(self, seq: int, node: str, digest: Hash) -> None:
        entry = self._entry(seq, self.view)
        if entry.digest is not None and entry.digest != digest:
            return  # conflicting digest; ignore (byzantine or stale)
        entry.prepares.add(node)

    def _on_commit(self, payload: dict, sender: str) -> None:
        if payload["view"] != self.view:
            return
        entry = self._entry(payload["seq"], self.view)
        if entry.digest is not None and entry.digest != payload["digest"]:
            return
        entry.commits.add(sender)
        self._check_phase_transitions(payload["seq"])

    def _check_phase_transitions(self, seq: int) -> None:
        entry = self.log.get(seq)
        if entry is None or entry.view != self.view:
            return
        # Prepared: quorum of matching prepares and we know the block.
        if (
            entry.block is not None
            and not entry.sent_commit
            and len(entry.prepares) >= self.quorum
        ):
            entry.sent_commit = True
            entry.commits.add(self.host.node_id)
            self.host.broadcast_to_peers(
                COMMIT,
                {"view": self.view, "seq": seq, "digest": entry.digest},
                _CONTROL_MSG_BYTES,
            )
        # Committed: quorum of commits -> execute in order.
        if (
            entry.block is not None
            and not entry.executed
            and entry.sent_commit
            and len(entry.commits) >= self.quorum
        ):
            self._execute_ready()

    def _execute_ready(self) -> None:
        """Execute consecutive committed sequences starting after last_executed."""
        while True:
            entry = self.log.get(self.last_executed + 1)
            if (
                entry is None
                or entry.executed
                or entry.block is None
                or not entry.sent_commit
                or len(entry.commits) < self.quorum
            ):
                return
            entry.executed = True
            self.last_executed += 1
            self.batches_committed += 1
            self.host.deliver_block(entry.block)
            if self.leader_of(entry.view) == self.host.node_id:
                self.in_flight = False
            self._arm_progress_timer()
            self._try_propose()

    # ------------------------------------------------------------------
    # View changes
    # ------------------------------------------------------------------
    def _arm_progress_timer(self) -> None:
        """(Re)arm the no-progress watchdog while work is outstanding."""
        if not self._running:
            return
        has_work = self.host.pending_count() > 0 or any(
            not e.executed for e in self.log.values()
        )
        if not has_work:
            return
        deadline = self.host.now + self.config.view_timeout
        self._progress_deadline = deadline
        self.host.set_timer(self.config.view_timeout, self._progress_check, deadline)

    def _progress_check(self, deadline: float) -> None:
        if not self._running or self._view_changing:
            return
        if self._progress_deadline > deadline:
            return  # progress happened; a newer timer is armed
        has_work = self.host.pending_count() > 0 or any(
            not e.executed for e in self.log.values()
        )
        if has_work:
            self._start_view_change(self.view + 1)

    def _start_view_change(self, new_view: int) -> None:
        if not self._running:
            return
        self._view_changing = True
        self._pending_new_view = new_view
        self.view_changes_started += 1
        votes = self._view_change_votes.setdefault(new_view, set())
        votes.add(self.host.node_id)
        self.host.broadcast_to_peers(
            VIEW_CHANGE,
            {"new_view": new_view, "last_executed": self.last_executed},
            _CONTROL_MSG_BYTES,
        )
        self._maybe_lead_new_view(new_view)
        timeout = self.config.view_timeout + self.config.view_timeout_backoff * max(
            0, new_view - self.view - 1
        )
        self.host.set_timer(timeout, self._view_change_check, new_view)

    def _view_change_check(self, attempted_view: int) -> None:
        """Escalate if the view change we started never completed."""
        if not self._running:
            return
        if not (self._view_changing and self._pending_new_view == attempted_view):
            return
        if not self._has_work():
            # Nothing left to order (e.g. we caught up via sync while the
            # change was pending): liveness is moot, stand down.
            self._view_changing = False
            self._pending_new_view = None
            return
        self._start_view_change(attempted_view + 1)

    def _has_work(self) -> bool:
        return self.host.pending_count() > 0 or any(
            not e.executed for e in self.log.values()
        )

    def _on_view_change(self, payload: dict, sender: str) -> None:
        new_view = payload["new_view"]
        # A view-change vote doubles as a status report: if the voter is
        # behind our executed state, ship it the blocks it is missing
        # (PBFT's state-transfer, simplified).
        if payload["last_executed"] < self.last_executed:
            chain = self.host.chain()
            blocks = chain.blocks_in_range(payload["last_executed"], chain.height)
            if blocks:
                size = sum(b.size_bytes() for b in blocks)
                self.host.send_to(sender, SYNC_RESP, blocks, size)
        if new_view <= self.view:
            return
        votes = self._view_change_votes.setdefault(new_view, set())
        votes.add(sender)
        # A replica that sees f+1 view-change votes joins the change even
        # if its own timer has not fired (standard PBFT liveness rule).
        if len(votes) >= self.f + 1 and not (
            self._view_changing and (self._pending_new_view or 0) >= new_view
        ):
            self._start_view_change(new_view)
        self._maybe_lead_new_view(new_view)

    def _maybe_lead_new_view(self, new_view: int) -> None:
        votes = self._view_change_votes.get(new_view, set())
        if (
            self.leader_of(new_view) == self.host.node_id
            and len(votes) >= self.quorum
            and new_view > self.view
        ):
            self.host.broadcast_to_peers(
                NEW_VIEW,
                {"view": new_view, "last_executed": self.last_executed},
                _CONTROL_MSG_BYTES,
            )
            self._enter_view(new_view)

    def _on_new_view(self, payload: dict, sender: str) -> None:
        new_view = payload["view"]
        if new_view < self.view or sender != self.leader_of(new_view):
            return
        self._enter_view(new_view)

    def _enter_view(self, new_view: int) -> None:
        if new_view <= self.view:
            return
        self.view = new_view
        self.views_entered += 1
        self._view_changing = False
        self._pending_new_view = None
        self.in_flight = False
        # Drop un-executed entries from older views; their transactions
        # are still in the mempool and will be re-proposed.
        self.log = {
            seq: entry
            for seq, entry in self.log.items()
            if entry.executed or entry.view >= new_view
        }
        self._view_change_votes = {
            view: votes
            for view, votes in self._view_change_votes.items()
            if view > new_view
        }
        self._arm_progress_timer()
        self._try_propose()

    # ------------------------------------------------------------------
    # State sync (catch-up after drops, crashes, partitions)
    # ------------------------------------------------------------------
    def _request_sync(self, peer: str) -> None:
        self.host.send_to(
            peer,
            SYNC_REQ,
            {"from_height": self.host.chain().height},
            _CONTROL_MSG_BYTES,
        )

    def _on_sync_req(self, payload: dict, sender: str) -> None:
        chain = self.host.chain()
        blocks = chain.blocks_in_range(payload["from_height"], chain.height)
        if not blocks:
            return
        size = sum(b.size_bytes() for b in blocks)
        self.host.send_to(sender, SYNC_RESP, blocks, size)

    def _on_sync_resp(self, blocks: list[Block], sender: str) -> None:
        for block in blocks:
            if block.height == self.last_executed + 1:
                self.host.deliver_block(block)
                self.last_executed = block.height
                self.batches_committed += 1
        self._arm_progress_timer()

    def confirmed_height(self) -> int:
        """PBFT blocks are final on commit (no confirmation depth)."""
        return self.host.chain().height

    def sync_hint(self) -> int:
        """Report the current view so recovering replicas rejoin it."""
        return self.view
