"""Tendermint BFT (the protocol behind ErisDB / Monax).

The paper surveys ErisDB as a Tendermint-based permissioned platform
(Section 2, Table 2) and notes its integration into BLOCKBENCH was
"under development" (Section 3.2). This module completes that work:
a full round-based Tendermint implementation that the ErisDB platform
node drives.

Protocol sketch (Buchman's thesis / the tendermint-core 0.x line):

* Heights are decided one at a time. Within a height, consensus
  proceeds in **rounds**; the proposer of round ``r`` at height ``h``
  is ``validators[(h + r) % N]`` — rotation is built in, unlike PBFT
  where the leader only changes on a view change.
* A round has three steps: **propose** (proposer broadcasts a block),
  **prevote** (validators broadcast a vote for the proposal or ``nil``)
  and **precommit** (on a ``+2/3`` prevote quorum for one block,
  validators lock on it and precommit; on ``+2/3`` nil they precommit
  nil). A ``+2/3`` precommit quorum commits the block — finality is
  immediate, like PBFT and unlike PoW.
* **Locking** provides safety across rounds: once a validator
  precommits a block it stays locked on it, prevoting only that block
  in later rounds, until a ``+2/3`` prevote quorum for a *different*
  block (a newer proof-of-lock) releases it.
* Liveness comes from per-step timeouts that grow with the round
  number, so a crashed or partitioned proposer costs one round, not a
  view-change storm.

Message complexity is O(N^2) per decision (two all-to-all vote phases),
the same order as PBFT; what differs is the built-in rotation and the
absence of a separate view-change subprotocol — differences the
extension benchmarks surface.

Idle behaviour follows ErisDB's ``create_empty_blocks = false``: rounds
start only when there is work, so an idle network exchanges no
messages (and burns no simulated CPU).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..chain.block import Block
from ..crypto.hashing import Hash
from ..registry import register_consensus
from .base import ConsensusHost, ConsensusProtocol

PROPOSAL = "tm/proposal"
PREVOTE = "tm/prevote"
PRECOMMIT = "tm/precommit"
SYNC_REQ = "tm/sync-req"
SYNC_RESP = "tm/sync-resp"

_VOTE_MSG_BYTES = 96

#: Proposals/votes this many heights ahead of ours are buffered rather
#: than dropped. Gossip keeps flowing while a validator is still
#: finishing the previous height; without the buffer a proposal that
#: lands one commit early would be lost and its round would stall for a
#: full timeout cycle (tendermint-core buffers these the same way).
FUTURE_HEIGHT_WINDOW = 2

#: Step names, in round order (used for assertions and reporting).
STEP_IDLE = "idle"
STEP_PROPOSE = "propose"
STEP_PREVOTE = "prevote"
STEP_PRECOMMIT = "precommit"


@dataclass
class TendermintConfig:
    """Tuning for one Tendermint network (ErisDB-style defaults)."""

    #: Transactions per proposed block (ErisDB's block_size analogue).
    max_txs_per_block: int = 500
    #: Cadence at which an idle validator checks for new work.
    tick_interval: float = 0.25
    #: Pacing between a commit and the next proposal (commit timeout).
    commit_interval: float = 0.25
    #: Base timeout of the propose step.
    propose_timeout: float = 1.5
    #: Timeout of the prevote step (waiting for +2/3 prevotes).
    prevote_timeout: float = 1.0
    #: Timeout of the precommit step (waiting for +2/3 precommits).
    precommit_timeout: float = 1.0
    #: Extra timeout added per failed round, keeping liveness under
    #: asynchrony (Tendermint's timeout increment).
    round_timeout_delta: float = 0.5


@dataclass
class _RoundState:
    """Vote bookkeeping for one (height, round)."""

    proposal: Block | None = None
    #: voter -> block hash (None = nil vote).
    prevotes: dict[str, Hash | None] = field(default_factory=dict)
    precommits: dict[str, Hash | None] = field(default_factory=dict)
    prevote_sent: bool = False
    precommit_sent: bool = False

    def prevote_count(self, digest: Hash | None) -> int:
        """Prevotes recorded for ``digest`` (None counts nil votes)."""
        return sum(1 for d in self.prevotes.values() if d == digest)

    def precommit_count(self, digest: Hash | None) -> int:
        """Precommits recorded for ``digest`` (None counts nil votes)."""
        return sum(1 for d in self.precommits.values() if d == digest)

    def prevote_quorum_digest(self, quorum: int) -> Hash | None:
        """The non-nil digest holding a prevote quorum, if any."""
        counts: dict[Hash, int] = {}
        for digest in self.prevotes.values():
            if digest is not None:
                counts[digest] = counts.get(digest, 0) + 1
        for digest, count in counts.items():
            if count >= quorum:
                return digest
        return None

    def precommit_quorum_digest(self, quorum: int) -> Hash | None:
        """The non-nil digest holding a precommit quorum, if any."""
        counts: dict[Hash, int] = {}
        for digest in self.precommits.values():
            if digest is not None:
                counts[digest] = counts.get(digest, 0) + 1
        for digest, count in counts.items():
            if count >= quorum:
                return digest
        return None


@register_consensus("tendermint")
class Tendermint(ConsensusProtocol):
    """One validator's view of the Tendermint state machine."""

    message_kinds = (PROPOSAL, PREVOTE, PRECOMMIT, SYNC_REQ, SYNC_RESP)
    proposal_kinds = (PROPOSAL,)
    vote_kinds = (PREVOTE, PRECOMMIT)

    def __init__(
        self,
        host: ConsensusHost,
        config: TendermintConfig,
        validators: list[str],
    ) -> None:
        super().__init__(host)
        self.config = config
        self.validators = list(validators)
        #: Height currently being decided (= committed height + 1).
        self.height = 1
        self.round = 0
        self.step = STEP_IDLE
        #: Lock state (Tendermint's safety core).
        self.locked_block: Block | None = None
        self.locked_round = -1
        self._rounds: dict[tuple[int, int], _RoundState] = {}
        self._running = False
        #: Guards stale step timers: bumped on every step transition.
        self._step_serial = 0
        # Statistics surfaced in experiment reports.
        self.blocks_committed = 0
        self.rounds_started = 0
        self.nil_prevotes_sent = 0

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Validator count."""
        return len(self.validators)

    @property
    def f(self) -> int:
        """Crash/Byzantine faults tolerated: strictly less than N/3."""
        return (self.n - 1) // 3

    @property
    def quorum(self) -> int:
        """Strictly more than two thirds of the validator set."""
        return (2 * self.n) // 3 + 1

    def proposer_of(self, height: int, round_: int) -> str:
        """Deterministic proposer rotation: validators[(h + r) % N]."""
        return self.validators[(height + round_) % self.n]

    def is_proposer(self) -> bool:
        """Whether we propose for the current (height, round)."""
        return self.proposer_of(self.height, self.round) == self.host.node_id

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the work-polling tick loop."""
        self._running = True
        self.host.set_timer(self.config.tick_interval, self._tick)

    def stop(self) -> None:
        """Stop participating (crash injection)."""
        self._running = False

    def restart(self, height: int, view_hint: int = 0) -> None:
        """Rejoin after crash recovery at the synced chain height.

        Tendermint needs no view transfer: the proposer of each round
        derives from (height, round), so entering the next undecided
        height at round 0 is enough. Pre-crash lock and round state are
        process-local and died with the process.
        """
        self.height = max(self.height, height + 1)
        self.round = 0
        self.step = STEP_IDLE
        self._step_serial += 1
        self.locked_block = None
        self.locked_round = -1
        self._rounds = {
            key: state for key, state in self._rounds.items()
            if key[0] >= self.height
        }
        self.start()

    def on_new_pending_tx(self) -> None:
        """No-op: the tick loop batches work, like a real mempool reap.

        Proposing synchronously here would emit one block per arriving
        transaction; deferring to :meth:`_tick` (at ``tick_interval``
        cadence) batches whatever accumulated, mirroring Tendermint's
        timeout_commit/reap cycle.
        """

    # ------------------------------------------------------------------
    # Round machinery
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._running:
            return
        if self.step == STEP_IDLE and self._has_work():
            self._enter_round(self.round)
        self.host.set_timer(self.config.tick_interval, self._tick)

    def _has_work(self) -> bool:
        return self.host.pending_count() > 0 or self.locked_block is not None

    def _round_state(self, height: int, round_: int) -> _RoundState:
        key = (height, round_)
        state = self._rounds.get(key)
        if state is None:
            state = _RoundState()
            self._rounds[key] = state
        return state

    def _enter_round(self, round_: int) -> None:
        """Start (height, round_): propose if it is our turn."""
        if not self._running:
            return
        self.round = round_
        self.step = STEP_PROPOSE
        self._step_serial += 1
        self.rounds_started += 1
        if self.is_proposer():
            self._propose()
        self._arm_step_timer(
            self.config.propose_timeout + round_ * self.config.round_timeout_delta,
            self._on_propose_timeout,
        )
        # The proposal (and even vote quorums) may have arrived while we
        # were still committing the previous height; act on the buffered
        # round state instead of waiting out the propose timeout.
        state = self._round_state(self.height, round_)
        if self.step == STEP_PROPOSE and state.proposal is not None:
            block = state.proposal
            if self.locked_block is not None and self.locked_block.hash != block.hash:
                self._cast_prevote(self.locked_block.hash)
            else:
                self._cast_prevote(block.hash)
        else:
            self._check_prevotes(self.height, round_)
            self._check_precommits(self.height, round_)

    def _arm_step_timer(self, delay: float, fn: Any) -> None:
        self.host.set_timer(delay, fn, self.height, self.round, self._step_serial)

    def _stale(self, height: int, round_: int, serial: int) -> bool:
        return (
            not self._running
            or height != self.height
            or round_ != self.round
            or serial != self._step_serial
        )

    # -- propose -----------------------------------------------------------
    def _propose(self) -> None:
        if self.locked_block is not None:
            # Re-propose the locked block (proof-of-lock re-proposal).
            block = self.locked_block
        else:
            parent = self.host.chain().tip
            if parent.height + 1 != self.height:
                return  # chain behind consensus state; wait for sync
            block = self.host.assemble_block(
                parent,
                consensus_meta={
                    "height": str(self.height),
                    "round": str(self.round),
                },
                max_txs=self.config.max_txs_per_block,
            )
            if not block.transactions:
                return
        state = self._round_state(self.height, self.round)
        state.proposal = block
        self.host.broadcast_to_peers(PROPOSAL, block, block.size_bytes())
        self._cast_prevote(block.hash)

    def _on_propose_timeout(self, height: int, round_: int, serial: int) -> None:
        if self._stale(height, round_, serial) or self.step != STEP_PROPOSE:
            return
        # No acceptable proposal arrived: prevote the lock, or nil.
        digest = self.locked_block.hash if self.locked_block is not None else None
        self._cast_prevote(digest)

    # -- prevote -----------------------------------------------------------
    def _cast_prevote(self, digest: Hash | None) -> None:
        state = self._round_state(self.height, self.round)
        if state.prevote_sent:
            return
        state.prevote_sent = True
        if digest is None:
            self.nil_prevotes_sent += 1
        self.step = STEP_PREVOTE
        self._step_serial += 1
        vote = {"height": self.height, "round": self.round, "digest": digest}
        state.prevotes[self.host.node_id] = digest
        self.host.broadcast_to_peers(PREVOTE, vote, _VOTE_MSG_BYTES)
        self._arm_step_timer(
            self.config.prevote_timeout
            + self.round * self.config.round_timeout_delta,
            self._on_prevote_timeout,
        )
        self._check_prevotes(self.height, self.round)

    def _on_prevote_timeout(self, height: int, round_: int, serial: int) -> None:
        if self._stale(height, round_, serial) or self.step != STEP_PREVOTE:
            return
        # No +2/3 for one block within the step: precommit nil.
        self._cast_precommit(None)

    def _check_prevotes(self, height: int, round_: int) -> None:
        if height != self.height or round_ != self.round:
            return
        state = self._round_state(height, round_)
        digest = state.prevote_quorum_digest(self.quorum)
        if digest is not None:
            # Proof-of-lock: a +2/3 prevote quorum for one block.
            if state.proposal is not None and state.proposal.hash == digest:
                self.locked_block = state.proposal
                self.locked_round = round_
                if self.step in (STEP_PROPOSE, STEP_PREVOTE):
                    if not state.prevote_sent:
                        self._cast_prevote(digest)
                    self._cast_precommit(digest)
            elif (
                self.locked_block is not None
                and self.locked_block.hash != digest
                and round_ > self.locked_round
            ):
                # A newer proof-of-lock for a different block unlocks us.
                self.locked_block = None
                self.locked_round = -1
        elif (
            state.prevote_count(None) >= self.quorum
            and self.step in (STEP_PROPOSE, STEP_PREVOTE)
        ):
            self._cast_precommit(None)

    # -- precommit ----------------------------------------------------------
    def _cast_precommit(self, digest: Hash | None) -> None:
        state = self._round_state(self.height, self.round)
        if state.precommit_sent:
            return
        state.precommit_sent = True
        self.step = STEP_PRECOMMIT
        self._step_serial += 1
        vote = {"height": self.height, "round": self.round, "digest": digest}
        state.precommits[self.host.node_id] = digest
        self.host.broadcast_to_peers(PRECOMMIT, vote, _VOTE_MSG_BYTES)
        self._arm_step_timer(
            self.config.precommit_timeout
            + self.round * self.config.round_timeout_delta,
            self._on_precommit_timeout,
        )
        self._check_precommits(self.height, self.round)

    def _on_precommit_timeout(self, height: int, round_: int, serial: int) -> None:
        if self._stale(height, round_, serial) or self.step != STEP_PRECOMMIT:
            return
        if self._has_work():
            self._enter_round(self.round + 1)
        else:
            self.step = STEP_IDLE
            self._step_serial += 1

    def _check_precommits(self, height: int, round_: int) -> None:
        if height != self.height:
            return
        state = self._round_state(height, round_)
        digest = state.precommit_quorum_digest(self.quorum)
        if digest is not None:
            if state.proposal is not None and state.proposal.hash == digest:
                self._commit(state.proposal)
            # else: quorum exists but we never saw the block; the sync
            # path (triggered by higher-height votes) will catch us up.
        elif (
            round_ == self.round
            and state.precommit_count(None) >= self.quorum
            and self.step == STEP_PRECOMMIT
        ):
            # The round is dead for everyone: move on immediately.
            if self._has_work():
                self._enter_round(self.round + 1)
            else:
                self.step = STEP_IDLE
                self._step_serial += 1

    # -- commit ------------------------------------------------------------
    def _commit(self, block: Block) -> None:
        if block.height != self.height:
            return
        self.host.deliver_block(block)
        self.blocks_committed += 1
        self.height += 1
        self.round = 0
        self.step = STEP_IDLE
        self._step_serial += 1
        self.locked_block = None
        self.locked_round = -1
        self._rounds = {
            key: state for key, state in self._rounds.items() if key[0] >= self.height
        }
        if self._has_work():
            self.host.set_timer(self.config.commit_interval, self._next_height_tick)

    def _next_height_tick(self) -> None:
        if self._running and self.step == STEP_IDLE and self._has_work():
            self._enter_round(self.round)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, kind: str, payload: Any, sender: str) -> None:
        """Dispatch one Tendermint message to its step handler."""
        if not self._running:
            return
        if kind == PROPOSAL:
            self._on_proposal(payload, sender)
        elif kind == PREVOTE:
            self._on_vote(payload, sender, prevote=True)
        elif kind == PRECOMMIT:
            self._on_vote(payload, sender, prevote=False)
        elif kind == SYNC_REQ:
            self._on_sync_req(payload, sender)
        elif kind == SYNC_RESP:
            self._on_sync_resp(payload, sender)

    def _on_proposal(self, block: Block, sender: str) -> None:
        height = block.height
        if height < self.height:
            return  # stale proposal for a committed height
        if not self.proposal_intact(block):
            return  # digest fails verification (byzantine proposer)
        meta_round = int(block.header.meta("round", "0"))
        if sender != self.proposer_of(height, meta_round):
            return  # not from the legitimate proposer of that round
        if height > self.height:
            # Buffer near-future proposals; _enter_round picks them up
            # once the preceding commit lands.
            if height - self.height <= FUTURE_HEIGHT_WINDOW:
                self._round_state(height, meta_round).proposal = block
            self._request_sync(sender)
            return
        if meta_round < self.round:
            return
        state = self._round_state(height, meta_round)
        state.proposal = block
        if meta_round > self.round:
            # We lag behind the network's round; catch up to it.
            self._enter_round(meta_round)
        if self.step == STEP_PROPOSE and meta_round == self.round:
            if self.locked_block is not None and self.locked_block.hash != block.hash:
                self._cast_prevote(self.locked_block.hash)
            else:
                self._cast_prevote(block.hash)
        else:
            # The proposal may complete an already-seen quorum.
            self._check_prevotes(height, meta_round)
            self._check_precommits(height, meta_round)

    def _on_vote(self, payload: dict, sender: str, prevote: bool) -> None:
        height = payload["height"]
        round_ = payload["round"]
        if height < self.height:
            return
        if height > self.height:
            # Buffer near-future votes so a quorum that formed while we
            # were committing is visible the moment we enter the round.
            if height - self.height <= FUTURE_HEIGHT_WINDOW:
                state = self._round_state(height, round_)
                votes = state.prevotes if prevote else state.precommits
                votes[sender] = payload["digest"]
            self._request_sync(sender)
            return
        state = self._round_state(height, round_)
        votes = state.prevotes if prevote else state.precommits
        votes[sender] = payload["digest"]
        # Round catch-up: f+1 distinct voters in a newer round prove the
        # network moved on without us.
        if round_ > self.round:
            voters = set(state.prevotes) | set(state.precommits)
            if len(voters) >= self.f + 1:
                self._enter_round(round_)
        if prevote:
            self._check_prevotes(height, round_)
        else:
            self._check_precommits(height, round_)

    # ------------------------------------------------------------------
    # State sync (catch-up after partitions, crashes, drops)
    # ------------------------------------------------------------------
    def _request_sync(self, peer: str) -> None:
        self.host.send_to(
            peer,
            SYNC_REQ,
            {"from_height": self.host.chain().height},
            _VOTE_MSG_BYTES,
        )

    def _on_sync_req(self, payload: dict, sender: str) -> None:
        chain = self.host.chain()
        blocks = chain.blocks_in_range(payload["from_height"], chain.height)
        if not blocks:
            return
        size = sum(b.size_bytes() for b in blocks)
        self.host.send_to(sender, SYNC_RESP, blocks, size)

    def _on_sync_resp(self, blocks: list[Block], sender: str) -> None:
        for block in blocks:
            if block.height == self.height:
                self._commit(block)

    def confirmed_height(self) -> int:
        """Tendermint blocks are final on commit (no confirmation depth)."""
        return self.host.chain().height
