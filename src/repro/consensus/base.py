"""Consensus protocol interface.

A protocol instance runs inside one platform node. It never touches the
network or chain directly — everything goes through the
:class:`ConsensusHost`, which the platform node implements. That keeps
the protocols independently testable against fake hosts and lets the
four platforms share one protocol implementation each with different
tuning.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Protocol

from ..chain.block import Block
from ..chain.blockchain import Blockchain
from ..sim.events import Event


class ConsensusHost(Protocol):
    """Services a platform node offers to its consensus protocol."""

    node_id: str

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        ...

    def set_timer(self, delay: float, fn: Any, *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` seconds; returns the
        event handle (cancellable)."""
        ...

    def send_to(
        self, recipient: str, kind: str, payload: Any, size_bytes: int
    ) -> None:
        """Send one message to one peer over the simulated network."""
        ...

    def broadcast_to_peers(
        self, kind: str, payload: Any, size_bytes: int
    ) -> None:
        """Send one message to every peer (not to ourselves)."""
        ...

    def peer_ids(self) -> list[str]:
        """Node ids of every other node in the deployment."""
        ...

    def rng(self) -> random.Random:
        """This node's deterministic random stream (mining races)."""
        ...

    def consume_cpu(self, seconds: float) -> None:
        """Occupy the node's CPU — backpressures message processing."""
        ...

    def chain(self) -> Blockchain:
        """The node's local copy of the blockchain."""
        ...

    def pending_count(self) -> int:
        """Transactions waiting in the local mempool."""
        ...

    def oldest_request_age(self) -> float:
        """Seconds the oldest pending transaction has waited (drives
        Fabric v0.6's request-timeout watchdog)."""
        ...

    def assemble_block(
        self, parent: Block, consensus_meta: dict[str, Any], max_txs: int | None
    ) -> Block:
        """Batch pending transactions into a candidate block on top of
        ``parent``; ``consensus_meta`` is stamped into the header."""
        ...

    def deliver_block(self, block: Block, execute: bool = True) -> bool:
        """Append a decided block to the local chain (and execute it at
        confirmation); returns whether the main branch changed."""
        ...


class ConsensusProtocol(ABC):
    """Base class for PoW, PoA, PBFT, and Tendermint."""

    #: Message kinds this protocol consumes (the node routes on these).
    message_kinds: tuple[str, ...] = ()

    def __init__(self, host: ConsensusHost) -> None:
        self.host = host

    @abstractmethod
    def start(self) -> None:
        """Begin participating (arm timers, start mining, ...)."""

    @abstractmethod
    def on_message(self, kind: str, payload: Any, sender: str) -> None:
        """Handle one consensus message routed by the platform node."""

    def on_new_pending_tx(self) -> None:
        """Hook: a transaction entered the local mempool."""

    def stop(self) -> None:
        """Stop participating (crash injection support)."""

    def describe(self) -> str:
        """Human-readable protocol name for reports."""
        return type(self).__name__
