"""Consensus protocol interface.

A protocol instance runs inside one platform node. It never touches the
network or chain directly — everything goes through the
:class:`ConsensusHost`, which the platform node implements. That keeps
the protocols independently testable against fake hosts and lets the
four platforms share one protocol implementation each with different
tuning.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Protocol

from ..chain.block import Block
from ..chain.blockchain import Blockchain
from ..sim.events import Event


class ConsensusHost(Protocol):
    """Services a platform node offers to its consensus protocol."""

    node_id: str

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        ...

    def set_timer(self, delay: float, fn: Any, *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` seconds; returns the
        event handle (cancellable)."""
        ...

    def send_to(
        self, recipient: str, kind: str, payload: Any, size_bytes: int
    ) -> None:
        """Send one message to one peer over the simulated network."""
        ...

    def broadcast_to_peers(
        self, kind: str, payload: Any, size_bytes: int
    ) -> None:
        """Send one message to every peer (not to ourselves)."""
        ...

    def peer_ids(self) -> list[str]:
        """Node ids of every other node in the deployment."""
        ...

    def rng(self) -> random.Random:
        """This node's deterministic random stream (mining races)."""
        ...

    def consume_cpu(self, seconds: float) -> None:
        """Occupy the node's CPU — backpressures message processing."""
        ...

    def chain(self) -> Blockchain:
        """The node's local copy of the blockchain."""
        ...

    def pending_count(self) -> int:
        """Transactions waiting in the local mempool."""
        ...

    def oldest_request_age(self) -> float:
        """Seconds the oldest pending transaction has waited (drives
        Fabric v0.6's request-timeout watchdog)."""
        ...

    def assemble_block(
        self, parent: Block, consensus_meta: dict[str, Any], max_txs: int | None
    ) -> Block:
        """Batch pending transactions into a candidate block on top of
        ``parent``; ``consensus_meta`` is stamped into the header."""
        ...

    def deliver_block(self, block: Block, execute: bool = True) -> bool:
        """Append a decided block to the local chain (and execute it at
        confirmation); returns whether the main branch changed."""
        ...


#: Header meta key a forged proposal carries. ``garbage:*`` variants are
#: locally detectable (a digest that fails verification) and honest
#: nodes reject them via :meth:`ConsensusProtocol.proposal_intact`;
#: ``equivocate:*`` variants are well-formed conflicting proposals a
#: hash check cannot catch — only the cross-replica safety auditor can.
BYZ_META_KEY = "byz"


class ConsensusProtocol(ABC):
    """Base class for PoW, PoA, PBFT, and Tendermint."""

    #: Message kinds this protocol consumes (the node routes on these).
    message_kinds: tuple[str, ...] = ()
    #: Kinds whose payload is a proposed :class:`Block` — the targets of
    #: equivocation and digest corruption (adversary hook API).
    proposal_kinds: tuple[str, ...] = ()
    #: Kinds carrying votes as ``{"digest": Hash, ...}`` dicts — the
    #: targets of vote withholding and digest rewriting.
    vote_kinds: tuple[str, ...] = ()

    def __init__(self, host: ConsensusHost) -> None:
        self.host = host

    def forge_proposal(self, kind: str, payload: Any, variant: str) -> Block | None:
        """A conflicting-but-plausible double of a proposal payload.

        The default handles the common shape — ``payload`` is the
        proposed :class:`Block` — by rebuilding it with an extra header
        meta key, which changes the hash while preserving every field a
        protocol validates (height, parent, round/step/sealer meta).
        Returns ``None`` when the payload is not forgeable.
        """
        if kind not in self.proposal_kinds or not isinstance(payload, Block):
            return None
        meta = dict(payload.header.consensus_meta)
        meta[BYZ_META_KEY] = variant
        return Block.build(
            height=payload.height,
            parent_hash=payload.header.parent_hash,
            transactions=payload.transactions,
            state_root=payload.header.state_root,
            proposer=payload.header.proposer,
            timestamp=payload.header.timestamp,
            consensus_meta=meta,
        )

    def proposal_intact(self, block: Block) -> bool:
        """Digest verification an honest replica performs on a proposal:
        a block whose advertised digest fails the content check (the
        ``garbage`` forgeries) is rejected; an equivocated block is
        internally consistent and passes."""
        return not block.header.meta(BYZ_META_KEY, "").startswith("garbage")

    @abstractmethod
    def start(self) -> None:
        """Begin participating (arm timers, start mining, ...)."""

    @abstractmethod
    def on_message(self, kind: str, payload: Any, sender: str) -> None:
        """Handle one consensus message routed by the platform node."""

    def on_new_pending_tx(self) -> None:
        """Hook: a transaction entered the local mempool."""

    def stop(self) -> None:
        """Stop participating (crash injection support)."""

    def restart(self, height: int, view_hint: int = 0) -> None:
        """Rejoin consensus after crash recovery at ``height``.

        Called by the platform node once block sync has caught the
        local chain up to the live tip. ``height`` is the synced chain
        height; ``view_hint`` is the highest view/round number learned
        from sync peers (meaningful for view-based protocols — PBFT
        adopts it so the rejoining replica does not trigger spurious
        view changes from a stale view). The default is sufficient for
        protocols whose position derives from time or chain state
        alone: it simply re-arms via :meth:`start`.
        """
        self.start()

    def sync_hint(self) -> int:
        """The view/round number a sync peer reports to a recovering
        node (fed back as ``view_hint`` to :meth:`restart`). Protocols
        without a view concept return 0."""
        return 0

    def describe(self) -> str:
        """Human-readable protocol name for reports."""
        return type(self).__name__
