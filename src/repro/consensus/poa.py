"""Proof-of-Authority consensus (Parity's Aura).

A fixed authority set takes turns: wall-clock time is divided into
``step_duration`` slots and slot ``s`` belongs to authority
``s % len(authorities)`` (Section 3.1.1: "a set of authorities are
pre-determined and each authority is assigned a fixed time slot within
which it can generate blocks").

The paper's key Parity finding is that consensus is *not* the
bottleneck — server-side transaction signing is. That stage lives in
the platform (see ``platforms/parity.py``); here the protocol simply
drains whatever the signing stage has managed to admit, which is what
pins Parity's throughput at a constant rate regardless of load and node
count (Figures 5, 7, 8).

Forks: during a network partition every side keeps its slot schedule,
so both sides extend the chain and the shorter branch is discarded on
heal — Parity forks in Figure 10 just like Ethereum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..chain.block import Block
from ..registry import register_consensus
from .base import ConsensusHost, ConsensusProtocol
from .gossip import AncestorFetcher

BLOCK_MSG = "poa/block"


@dataclass
class PoAConfig:
    """Tuning for an Aura-style authority round."""

    step_duration: float = 1.0
    confirmation_depth: int = 2
    max_txs_per_block: int = 1000
    #: CPU cost of sealing one block (header signature).
    seal_cost_s: float = 0.002


@register_consensus("poa")
class ProofOfAuthority(ConsensusProtocol):
    """One authority's view of the Aura rotation."""

    message_kinds = (BLOCK_MSG,) + AncestorFetcher.message_kinds
    proposal_kinds = (BLOCK_MSG,)

    def __init__(
        self,
        host: ConsensusHost,
        config: PoAConfig,
        authorities: list[str],
    ) -> None:
        super().__init__(host)
        self.config = config
        self.fetcher = AncestorFetcher(host)
        self.authorities = list(authorities)
        self._running = False
        self.blocks_sealed = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._running = True
        self._schedule_next_step()

    def stop(self) -> None:
        self._running = False

    def slot_owner(self, step: int) -> str:
        return self.authorities[step % len(self.authorities)]

    def current_step(self) -> int:
        return int(self.host.now / self.config.step_duration)

    def _schedule_next_step(self) -> None:
        if not self._running:
            return
        step = self.current_step() + 1
        fire_at = step * self.config.step_duration - self.host.now
        self.host.set_timer(fire_at, self._on_step, step)

    def _on_step(self, step: int) -> None:
        if not self._running:
            return
        if self.slot_owner(step) == self.host.node_id:
            self._seal_block(step)
        self._schedule_next_step()

    def _seal_block(self, step: int) -> None:
        parent = self.host.chain().tip
        block = self.host.assemble_block(
            parent,
            consensus_meta={"step": str(step), "sealer": self.host.node_id},
            max_txs=self.config.max_txs_per_block,
        )
        self.host.consume_cpu(self.config.seal_cost_s)
        self.blocks_sealed += 1
        self.host.deliver_block(block)
        self.host.broadcast_to_peers(BLOCK_MSG, block, block.size_bytes())

    # ------------------------------------------------------------------
    def on_message(self, kind: str, payload: Any, sender: str) -> None:
        if self.fetcher.on_message(kind, payload, sender):
            return
        if kind != BLOCK_MSG:
            return
        block: Block = payload
        if not self._valid_seal(block) or not self.proposal_intact(block):
            return
        self.host.deliver_block(block)
        self.fetcher.maybe_fetch(block, sender)

    def _valid_seal(self, block: Block) -> bool:
        """The sealer must own the slot it claims."""
        step_str = block.header.meta("step")
        sealer = block.header.meta("sealer")
        if not step_str or not sealer:
            return False
        return self.slot_owner(int(step_str)) == sealer

    def confirmed_height(self) -> int:
        return max(0, self.host.chain().height - self.config.confirmation_depth)
