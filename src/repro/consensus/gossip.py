"""Ancestor fetch for chain-based gossip protocols (PoW and PoA).

When a node receives a block whose parent it does not know — typical
right after a partition heals, when each side extended its own branch —
it asks the sender for the missing ancestors. The sender walks parent
pointers back from the requested hash and ships the blocks oldest-first
so the receiver's orphan pool connects in one pass. If the oldest block
shipped still does not connect, the receiver simply asks again from the
new frontier, terminating at the common ancestor.
"""

from __future__ import annotations

from typing import Any

from ..chain.block import Block
from .base import ConsensusHost

FETCH_REQ = "gossip/fetch-req"
FETCH_RESP = "gossip/fetch-resp"

#: How many ancestors one fetch round returns.
FETCH_BATCH = 32


class AncestorFetcher:
    """Shared fetch logic; protocols delegate their fetch messages here."""

    message_kinds = (FETCH_REQ, FETCH_RESP)

    def __init__(self, host: ConsensusHost) -> None:
        self.host = host
        self.fetch_rounds = 0

    def maybe_fetch(self, block: Block, sender: str) -> None:
        """Request ancestors if ``block`` failed to connect."""
        chain = self.host.chain()
        if chain.contains(block.hash):
            return
        if chain.contains(block.header.parent_hash):
            return
        self.fetch_rounds += 1
        self.host.send_to(
            sender,
            FETCH_REQ,
            {"from_hash": block.header.parent_hash, "count": FETCH_BATCH},
            96,
        )

    def on_message(self, kind: str, payload: Any, sender: str) -> bool:
        """Handle a fetch message; returns True if it was consumed."""
        if kind == FETCH_REQ:
            self._on_fetch_req(payload, sender)
            return True
        if kind == FETCH_RESP:
            self._on_fetch_resp(payload, sender)
            return True
        return False

    def _on_fetch_req(self, payload: dict, sender: str) -> None:
        chain = self.host.chain()
        cursor = chain.block_by_hash(payload["from_hash"])
        blocks: list[Block] = []
        while cursor is not None and cursor.height > 0 and len(blocks) < payload["count"]:
            blocks.append(cursor)
            cursor = chain.block_by_hash(cursor.header.parent_hash)
        if not blocks:
            return
        blocks.reverse()  # oldest first so they connect in order
        size = sum(b.size_bytes() for b in blocks)
        self.host.send_to(sender, FETCH_RESP, blocks, size)

    def _on_fetch_resp(self, blocks: list[Block], sender: str) -> None:
        if not blocks:
            return
        for block in blocks:
            self.host.deliver_block(block)
        oldest = blocks[0]
        chain = self.host.chain()
        if not chain.contains(oldest.hash):
            # Still disconnected: keep walking back from the new frontier.
            self.host.send_to(
                sender,
                FETCH_REQ,
                {"from_hash": oldest.header.parent_hash, "count": FETCH_BATCH},
                96,
            )
