"""Consensus layer: PoW (Ethereum), PoA (Parity), PBFT (Hyperledger),
Tendermint (ErisDB)."""

from .base import ConsensusHost, ConsensusProtocol
from .pbft import PBFT, PBFTConfig
from .poa import PoAConfig, ProofOfAuthority
from .pow import PoWConfig, ProofOfWork
from .tendermint import Tendermint, TendermintConfig

__all__ = [
    "ConsensusHost",
    "ConsensusProtocol",
    "PBFT",
    "PBFTConfig",
    "PoAConfig",
    "ProofOfAuthority",
    "PoWConfig",
    "ProofOfWork",
    "Tendermint",
    "TendermintConfig",
]
