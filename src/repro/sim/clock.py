"""Simulated-time helpers.

Simulated time is a plain ``float`` number of seconds since the start of
the experiment. This module centralizes formatting and the wall-clock
stopwatch used by the *real* (non-simulated) microbenchmarks such as
CPUHeavy, which measure actual VM execution time.
"""

from __future__ import annotations

import time

SimTime = float

#: Sentinel for "never" / unset deadlines.
NEVER: SimTime = float("inf")


def format_time(t: SimTime) -> str:
    """Render a simulated timestamp as a short human-readable string."""
    if t == NEVER:
        return "never"
    if t < 1e-3:
        return f"{t * 1e6:.0f}us"
    if t < 1.0:
        return f"{t * 1e3:.1f}ms"
    if t < 120.0:
        return f"{t:.3f}s"
    minutes, seconds = divmod(t, 60.0)
    return f"{int(minutes)}m{seconds:04.1f}s"


class Stopwatch:
    """Wall-clock stopwatch for real measurements (execution-layer bench).

    >>> watch = Stopwatch()
    >>> watch.start()
    >>> _ = sum(range(1000))
    >>> elapsed = watch.stop()
    >>> elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._started_at: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
