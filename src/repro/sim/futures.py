"""Simulation-native futures and generator-coroutines.

The redesigned client API (``IBlockchainConnector`` v2) returns a
:class:`SimFuture` from every RPC, and client logic is written as
*generator-coroutines* driven by :func:`spawn`::

    def client(connector):
        reply = yield connector.send_transaction(tx)
        if not reply["accepted"]:
            return None
        update = yield connector.get_latest_block(0)
        return update["blocks"]

    future = spawn(client(connector))

This is deliberately **not** asyncio. The simulation owns time: every
run must replay the exact same event order for a given seed, so the
coroutine machinery may not introduce its own event loop, threads, or
wall-clock anything. The rules that keep determinism intact:

* Resolving a future runs its continuations *inline*, in the same
  scheduler event that resolved it — exactly when an ``on_reply``
  callback would have run under the old API. No extra heap events are
  created, so the ``(time, seq)`` order of every message and timer is
  bit-identical between callback-style and coroutine-style clients.
* The only way a coroutine waits for simulated time is
  :meth:`Scheduler.sleep`, which is one heap event — the same cost as
  the ``scheduler.schedule(delay, fn)`` it replaces.
* ``yield`` accepts a :class:`SimFuture` or a nested generator (which
  is spawned in place); anything else is a programming error and
  raises immediately.

The trampoline in :func:`spawn` is iterative, so a coroutine that
yields a long chain of already-resolved futures (e.g. an in-memory
backend answering instantly) runs in constant stack depth.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Callable, Generator, Iterable

from ..errors import SimulationError

__all__ = ["SimFuture", "SimCoroutine", "spawn", "gather"]

#: A client coroutine: yields SimFutures (or nested generators),
#: optionally returns a value via ``return``.
SimCoroutine = Generator[Any, Any, Any]


class SimFuture:
    """A one-shot container for a value produced later in simulated time.

    Futures carry either a value or an exception. Continuations added
    with :meth:`add_done_callback` fire inline when the future resolves
    (or immediately, if it already has) — resolution never touches the
    scheduler heap, which is what keeps coroutine clients bit-identical
    to callback clients.

    ``_callbacks`` holds ``None`` (no continuation), a bare callable
    (one continuation — by far the common case: every RPC future feeds
    exactly one coroutine), or a list. Driver runs create tens of
    thousands of futures per simulated minute, so skipping the list
    allocation is a measurable win on the hot path.
    """

    __slots__ = ("done", "_result", "_exception", "_callbacks")

    def __init__(self) -> None:
        self.done = False
        self._result: Any = None
        self._exception: BaseException | None = None
        self._callbacks: Any = None

    def result(self) -> Any:
        """The resolved value; raises the stored exception if failed."""
        if not self.done:
            raise SimulationError("SimFuture is not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> BaseException | None:
        """The stored exception, or None (also None while pending)."""
        return self._exception

    def set_result(self, value: Any) -> None:
        """Resolve with ``value`` and run continuations inline."""
        if self.done:
            raise SimulationError("SimFuture is already resolved")
        self.done = True
        self._result = value
        self._fire()

    def set_exception(self, exc: BaseException) -> int:
        """Fail with ``exc``; returns how many continuations consumed it.

        Callers (notably :func:`spawn`) use the count to decide whether
        anyone saw the failure — an unobserved exception should crash
        the run, like an exception in an ``on_reply`` callback would.
        """
        if self.done:
            raise SimulationError("SimFuture is already resolved")
        self.done = True
        self._exception = exc
        return self._fire()

    def add_done_callback(self, fn: Callable[["SimFuture"], None]) -> None:
        """Run ``fn(self)`` at resolution — immediately if already done."""
        if self.done:
            fn(self)
            return
        callbacks = self._callbacks
        if callbacks is None:
            self._callbacks = fn
        elif type(callbacks) is list:
            callbacks.append(fn)
        else:
            self._callbacks = [callbacks, fn]

    def _fire(self) -> int:
        callbacks = self._callbacks
        if callbacks is None:
            return 0
        self._callbacks = None
        if type(callbacks) is list:
            for fn in callbacks:
                fn(self)
            return len(callbacks)
        callbacks(self)
        return 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.done:
            state = "pending"
        elif self._exception is not None:
            state = f"error={self._exception!r}"
        else:
            state = f"result={self._result!r}"
        return f"<SimFuture {state}>"


class _Task(SimFuture):
    """A running coroutine; doubles as the future for its return value.

    One object per :func:`spawn` — the task *is* the out-future, and
    its bound ``_step`` is the continuation registered on whatever the
    coroutine awaits. Submission-heavy driver runs spawn one of these
    per transaction, so the trampoline is deliberately allocation-lean.
    """

    __slots__ = ("_send", "_throw", "_strict")

    def __init__(self, coroutine: SimCoroutine, strict: bool) -> None:
        SimFuture.__init__(self)
        self._send = coroutine.send
        self._throw = coroutine.throw
        self._strict = strict

    def _step(self, fut: "SimFuture | None") -> None:
        if fut is None:  # initial kick from spawn()
            value = exc = None
        else:
            exc = fut._exception
            value = fut._result if exc is None else None
        while True:
            try:
                if exc is not None:
                    awaited = self._throw(exc)
                    exc = None
                else:
                    awaited = self._send(value)
            except StopIteration as stop:
                self.set_result(getattr(stop, "value", None))
                return
            except BaseException as failure:
                if not self.set_exception(failure) and self._strict:
                    raise
                return
            if not isinstance(awaited, SimFuture):
                if isinstance(awaited, GeneratorType):
                    awaited = spawn(awaited, strict=False)
                else:
                    exc = SimulationError(
                        f"coroutine yielded {type(awaited).__name__}; "
                        "expected a SimFuture or a generator-coroutine"
                    )
                    continue
            if awaited.done:
                # Continue iteratively: a chain of already-resolved
                # futures must not grow the Python stack.
                exc = awaited._exception
                value = None if exc is not None else awaited._result
                continue
            awaited.add_done_callback(self._step)
            return


def spawn(coroutine: SimCoroutine, strict: bool = True) -> SimFuture:
    """Run a generator-coroutine; returns a future for its return value.

    The coroutine advances immediately (inline) until its first
    unresolved ``yield``; from then on each resolution resumes it
    inline. ``yield`` accepts a :class:`SimFuture` or a nested
    generator, which is spawned in place; its return value becomes the
    value of the ``yield`` expression, and an exception raised inside
    it is re-raised at the ``yield`` site.

    With ``strict=True`` (the default for top-level clients) an
    exception that escapes the coroutine while nothing is awaiting its
    future is re-raised immediately, so bugs surface through
    ``Scheduler.step()`` instead of vanishing into an unread future.
    """
    task = _Task(coroutine, strict)
    task._step(None)
    return task


def gather(futures: Iterable[SimFuture]) -> SimFuture:
    """A future resolving to the list of all results, in input order.

    The gather future fails as soon as any input fails (remaining
    results are discarded). Useful for windowed fan-out::

        replies = yield gather([connector.query(...) for _ in range(8)])
    """
    pending = list(futures)
    out = SimFuture()
    results: list[Any] = [None] * len(pending)
    remaining = len(pending)
    if remaining == 0:
        out.set_result([])
        return out

    def on_done(index: int, fut: SimFuture) -> None:
        nonlocal remaining
        if out.done:
            return  # a sibling already failed the gather
        if fut._exception is not None:
            out.set_exception(fut._exception)
            return
        results[index] = fut._result
        remaining -= 1
        if remaining == 0:
            out.set_result(results)

    for index, fut in enumerate(pending):
        fut.add_done_callback(lambda f, i=index: on_done(i, f))
    return out
