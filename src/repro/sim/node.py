"""Base class for simulated nodes.

A :class:`SimNode` owns a *bounded* inbox drained by a single logical
CPU: each message costs ``message_cost(msg)`` seconds of processing
before its handler runs, and messages arriving while the node is
saturated beyond ``inbox_capacity`` are dropped. That bounded channel
is not a convenience — it is the mechanism behind the paper's headline
negative result (Hyperledger v0.6 failing past 16 nodes because
"consensus messages are rejected ... on account of the message channel
being full", Section 4.1.2).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from .clock import SimTime
from .events import Event, Scheduler
from .network import Message, Network


class SimNode:
    """A network-attached actor with serial message processing."""

    def __init__(
        self,
        node_id: str,
        scheduler: Scheduler,
        network: Network,
        inbox_capacity: int | None = None,
    ) -> None:
        self.node_id = node_id
        self.scheduler = scheduler
        self.network = network
        self.inbox_capacity = inbox_capacity
        self.inbox: deque[Message] = deque()
        self.crashed = False
        self._processing = False
        self.cpu_time: SimTime = 0.0
        self.dropped_messages = 0
        self._timers: list[Event] = []
        self._deferred_cost: SimTime = 0.0
        network.register(self)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(
        self, recipient: str, kind: str, payload: Any, size_bytes: int = 256
    ) -> None:
        if self.crashed:
            return
        self.network.send(self.node_id, recipient, kind, payload, size_bytes)

    def broadcast(self, kind: str, payload: Any, size_bytes: int = 256) -> None:
        if self.crashed:
            return
        self.network.broadcast(self.node_id, kind, payload, size_bytes)

    def deliver(self, message: Message) -> None:
        """Called by the network when a message arrives."""
        if self.crashed:
            return
        if self.inbox_capacity is not None and len(self.inbox) >= self.inbox_capacity:
            self.dropped_messages += 1
            return
        self.inbox.append(message)
        if not self._processing:
            self._processing = True
            self.scheduler.schedule(0.0, self._process_next)

    def _process_next(self) -> None:
        if self.crashed or not self.inbox:
            self._processing = False
            return
        message = self.inbox.popleft()
        cost = self.message_cost(message)
        self.consume_cpu(cost)
        if cost > 0:
            self.scheduler.schedule(cost, self._finish_message, message)
        else:
            self._finish_message(message)

    def _finish_message(self, message: Message) -> None:
        if not self.crashed:
            self.handle_message(message)
        # Handlers may discover extra work mid-flight (e.g. executing a
        # block's transactions) via defer_cost(); it extends the busy
        # window before the next message is served.
        extra = self._deferred_cost
        self._deferred_cost = 0.0
        if extra > 0:
            self.consume_cpu(extra)
        if self.inbox and not self.crashed:
            self.scheduler.schedule(extra, self._process_next)
        else:
            if extra > 0:
                self.scheduler.schedule(extra, self._resume_after_busy)
            else:
                self._processing = False

    def _resume_after_busy(self) -> None:
        if self.crashed:
            self._processing = False
            return
        if self.inbox:
            self._process_next()
        else:
            self._processing = False

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def message_cost(self, message: Message) -> SimTime:
        """CPU seconds consumed before ``handle_message`` runs."""
        return 0.0

    def handle_message(self, message: Message) -> None:
        """Process one delivered message. Subclasses override."""

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(self, delay: SimTime, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule a callback that is suppressed if the node has crashed."""

        def fire() -> None:
            if not self.crashed:
                fn(*args)

        event = self.scheduler.schedule(delay, fire)
        self._timers.append(event)
        return event

    # ------------------------------------------------------------------
    # CPU accounting / fault injection
    # ------------------------------------------------------------------
    def consume_cpu(self, seconds: SimTime) -> None:
        """Account ``seconds`` of CPU work (for utilization sampling)."""
        if seconds > 0:
            self.cpu_time += seconds

    def defer_cost(self, seconds: SimTime) -> None:
        """Charge CPU work discovered while handling the current message.

        The node stays busy for the extra time before draining its next
        message — this is what lets heavy block execution back-pressure
        a node's inbox (the mechanism behind Hyperledger's overload
        collapse).
        """
        if seconds > 0:
            self._deferred_cost += seconds

    def crash(self) -> None:
        """Stop the node: drop inbox, cancel timers, ignore future traffic."""
        self.crashed = True
        self.inbox.clear()
        self._processing = False
        # Work discovered mid-message dies with the process: a node
        # recovered later must not charge the interrupted handler's
        # deferred CPU to its first post-recovery message.
        self._deferred_cost = 0.0
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    def recover(self) -> None:
        """Restart a crashed node (subclasses re-arm their timers)."""
        self.crashed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"<{type(self).__name__} {self.node_id} {state}>"
