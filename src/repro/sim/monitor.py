"""Resource-utilization sampling (reproduces Figure 16).

The monitor samples every node's cumulative CPU-busy time and the
network byte counters once per interval and converts the deltas into
CPU-utilization percentages and link throughput in Mbps — the two
series plotted in the paper's resource-utilization figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .clock import SimTime
from .events import Scheduler
from .network import Network
from .node import SimNode


@dataclass
class ResourceSample:
    """One monitoring interval for one node."""

    time: SimTime
    cpu_pct: float
    net_mbps: float


@dataclass
class ResourceSeries:
    """Time series of samples for one node."""

    node_id: str
    samples: list[ResourceSample] = field(default_factory=list)

    def mean_cpu_pct(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.cpu_pct for s in self.samples) / len(self.samples)

    def mean_net_mbps(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.net_mbps for s in self.samples) / len(self.samples)


class ResourceMonitor:
    """Periodic sampler over a set of nodes.

    ``cores`` scales the CPU percentage: a node that accounted one
    simulated second of CPU work per wall second on an 8-core budget
    reports 12.5%, matching how the paper reports utilization of the
    whole machine.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        network: Network,
        nodes: list[SimNode],
        interval: SimTime = 1.0,
        cores: int = 8,
    ) -> None:
        self.scheduler = scheduler
        self.network = network
        self.nodes = nodes
        self.interval = interval
        self.cores = cores
        self.series: dict[str, ResourceSeries] = {
            node.node_id: ResourceSeries(node.node_id) for node in nodes
        }
        self._last_cpu: dict[str, float] = {}
        self._last_bytes: dict[str, int] = {}
        self._running = False

    def start(self) -> None:
        self._running = True
        for node in self.nodes:
            self._last_cpu[node.node_id] = node.cpu_time
            self._last_bytes[node.node_id] = self._node_bytes(node.node_id)
        self.scheduler.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False

    def _node_bytes(self, node_id: str) -> int:
        stats = self.network.stats
        return stats.bytes_sent.get(node_id, 0) + stats.bytes_received.get(node_id, 0)

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.scheduler.now
        for node in self.nodes:
            node_id = node.node_id
            cpu_delta = node.cpu_time - self._last_cpu[node_id]
            self._last_cpu[node_id] = node.cpu_time
            byte_total = self._node_bytes(node_id)
            byte_delta = byte_total - self._last_bytes[node_id]
            self._last_bytes[node_id] = byte_total
            sample = ResourceSample(
                time=now,
                cpu_pct=min(100.0, 100.0 * cpu_delta / (self.interval * self.cores)),
                net_mbps=byte_delta * 8 / self.interval / 1e6,
            )
            self.series[node_id].samples.append(sample)
        self.scheduler.schedule(self.interval, self._tick)

    def mean_cpu_pct(self) -> float:
        """Average CPU utilization across all monitored nodes."""
        series = list(self.series.values())
        if not series:
            return 0.0
        return sum(s.mean_cpu_pct() for s in series) / len(series)

    def mean_net_mbps(self) -> float:
        """Average network throughput across all monitored nodes."""
        series = list(self.series.values())
        if not series:
            return 0.0
        return sum(s.mean_net_mbps() for s in series) / len(series)
