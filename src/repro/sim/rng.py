"""Deterministic random-number streams.

Every stochastic component (each miner, each client, the network jitter
model, ...) draws from its own named stream derived from one master
seed. This keeps experiments reproducible *and* insulated: adding a new
component does not perturb the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory for named, reproducible ``random.Random`` streams.

    >>> reg = RngRegistry(42)
    >>> a1 = reg.stream("miner-0").random()
    >>> a2 = RngRegistry(42).stream("miner-0").random()
    >>> a1 == a2
    True
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry with an independent master seed."""
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))
