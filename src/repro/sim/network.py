"""Simulated network: links, latency, partitions, and fault injection.

The network model reproduces the paper's testbed abstraction — a set of
commodity servers on a 1 Gb switch — plus the three fault modes used in
Section 3.3 (crash, message delay, message corruption) and the
partition attack from Section 4.1.3.

Messages are delivered point-to-point with ``latency + size / bandwidth``
delay. During an active partition, traffic crossing partition groups is
dropped, exactly as BLOCKBENCH "drops network traffic between any two
nodes in the two partitions".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from ..errors import NetworkError
from .clock import SimTime
from .events import Scheduler
from .rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import SimNode

#: Default LAN characteristics: 1 Gb switch, ~0.3 ms one-way latency.
DEFAULT_BANDWIDTH_BPS = 1_000_000_000
DEFAULT_LATENCY = 0.0003
DEFAULT_JITTER = 0.0002

_message_counter = itertools.count()

#: Per-sender send interceptor: ``fn(recipient, kind, payload, size_bytes)``
#: returns ``None`` to drop the send, or a rewritten
#: ``(payload, size_bytes, extra_delay_s)`` triple. The hook point for
#: Byzantine behaviors — equivocation rewrites the payload per recipient,
#: silence drops, vote withholding adds delay.
SendFilter = Callable[[str, str, Any, int], "tuple[Any, int, float] | None"]


@dataclass
class Message:
    """A unit of network traffic between two simulated nodes."""

    sender: str
    recipient: str
    kind: str
    payload: Any
    size_bytes: int = 256
    corrupted: bool = False
    sent_at: SimTime = 0.0
    msg_id: int = field(default_factory=lambda: next(_message_counter))


@dataclass
class NetworkStats:
    """Aggregate traffic counters, also kept per node."""

    messages_sent: int = 0
    messages_delivered: int = 0
    dropped_partition: int = 0
    dropped_crash: int = 0
    dropped_delay_jitter: int = 0
    dropped_byzantine: int = 0
    bytes_sent: dict[str, int] = field(default_factory=dict)
    bytes_received: dict[str, int] = field(default_factory=dict)

    def record_send(self, node_id: str, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent[node_id] = self.bytes_sent.get(node_id, 0) + size

    def record_delivery(self, node_id: str, size: int) -> None:
        self.messages_delivered += 1
        self.bytes_received[node_id] = self.bytes_received.get(node_id, 0) + size


class Network:
    """Routes messages between registered nodes under fault schedules."""

    def __init__(
        self,
        scheduler: Scheduler,
        rng: RngRegistry,
        bandwidth_bps: int = DEFAULT_BANDWIDTH_BPS,
        base_latency: SimTime = DEFAULT_LATENCY,
        jitter: SimTime = DEFAULT_JITTER,
    ) -> None:
        self.scheduler = scheduler
        self._rng = rng.stream("network")
        self.bandwidth_bps = bandwidth_bps
        self.base_latency = base_latency
        self.jitter = jitter
        self.nodes: dict[str, "SimNode"] = {}
        self.stats = NetworkStats()
        # Fault state. Delay and corruption are *windows* keyed by a
        # handle so overlapping faults compose: each window ends when
        # its own ``remove_*`` runs, never when another fault resets a
        # shared scalar (the clobbering bug the handles replace).
        self._partition_groups: list[frozenset[str]] | None = None
        self._fault_ids = itertools.count(1)
        self._delay_windows: dict[int, tuple[SimTime, frozenset[str] | None]] = {}
        self._corruption_windows: dict[int, float] = {}
        # Byzantine interception: per-sender rewrite hooks, plus the set
        # of nodes that ever had one (the safety auditor's honesty test).
        self._send_filters: dict[str, SendFilter] = {}
        self.ever_byzantine: set[str] = set()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, node: "SimNode") -> None:
        if node.node_id in self.nodes:
            raise NetworkError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node

    def node_ids(self) -> list[str]:
        return list(self.nodes)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the network; traffic between different groups is dropped."""
        frozen = [frozenset(group) for group in groups]
        covered = set().union(*frozen) if frozen else set()
        unknown = covered - set(self.nodes)
        if unknown:
            raise NetworkError(f"partition names unknown nodes: {sorted(unknown)}")
        self._partition_groups = frozen

    def heal(self) -> None:
        """Remove the active partition.

        Heals the partition *only*: a delay or corruption window that
        overlaps the partition keeps running until its own removal
        (healing used to wipe them, silently ending overlapping faults
        early).
        """
        self._partition_groups = None

    # -- delay windows --------------------------------------------------
    def add_delay(self, extra: SimTime, nodes: Iterable[str] | None = None) -> int:
        """Open a delay window: ``extra`` seconds on messages touching
        ``nodes`` (or all). Returns a handle for :meth:`remove_delay`;
        concurrent windows stack additively."""
        if extra < 0:
            raise NetworkError(f"delay {extra} must be non-negative")
        window_id = next(self._fault_ids)
        affected = frozenset(nodes) if nodes is not None else None
        self._delay_windows[window_id] = (extra, affected)
        return window_id

    def remove_delay(self, window_id: int) -> None:
        """Close one delay window (idempotent)."""
        self._delay_windows.pop(window_id, None)

    def inject_delay(self, extra: SimTime, nodes: Iterable[str] | None = None) -> None:
        """Replace every delay window with a single one (legacy API;
        ``extra=0`` clears all delay)."""
        self._delay_windows.clear()
        if extra:
            self.add_delay(extra, nodes)

    # -- corruption windows ---------------------------------------------
    def add_corruption(self, rate: float) -> int:
        """Open a corruption window; the effective rate is the max of
        all active windows. Returns a handle for :meth:`remove_corruption`."""
        if not 0.0 <= rate <= 1.0:
            raise NetworkError(f"corruption rate {rate} outside [0, 1]")
        window_id = next(self._fault_ids)
        self._corruption_windows[window_id] = rate
        return window_id

    def remove_corruption(self, window_id: int) -> None:
        """Close one corruption window (idempotent)."""
        self._corruption_windows.pop(window_id, None)

    def inject_corruption(self, rate: float) -> None:
        """Replace every corruption window with a single one (legacy
        API; ``rate=0`` clears all corruption)."""
        if not 0.0 <= rate <= 1.0:
            raise NetworkError(f"corruption rate {rate} outside [0, 1]")
        self._corruption_windows.clear()
        if rate:
            self.add_corruption(rate)

    def active_corruption_rate(self) -> float:
        """The corruption probability currently applied to deliveries."""
        return max(self._corruption_windows.values(), default=0.0)

    def active_delay_extra(self, sender: str, recipient: str) -> SimTime:
        """Total extra delay (pre-jitter) a send between the pair sees."""
        total = 0.0
        for extra, affected in self._delay_windows.values():
            if affected is None or sender in affected or recipient in affected:
                total += extra
        return total

    # -- byzantine send interception ------------------------------------
    def set_send_filter(self, node_id: str, fn: SendFilter) -> None:
        """Install a send interceptor for ``node_id`` (one per node; a
        second call replaces the first). The node is remembered in
        :attr:`ever_byzantine` for the safety auditor's honesty test."""
        if node_id not in self.nodes:
            raise NetworkError(f"unknown node {node_id!r}")
        self._send_filters[node_id] = fn
        self.ever_byzantine.add(node_id)

    def clear_send_filter(self, node_id: str) -> None:
        """Remove ``node_id``'s send interceptor (idempotent); the node
        stays in :attr:`ever_byzantine` — past lies taint its commits."""
        self._send_filters.pop(node_id, None)

    def partitioned(self, a: str, b: str) -> bool:
        """True if nodes ``a`` and ``b`` are currently in different groups."""
        if self._partition_groups is None or a == b:
            return False
        group_a = next((g for g in self._partition_groups if a in g), None)
        group_b = next((g for g in self._partition_groups if b in g), None)
        # Nodes absent from all groups communicate only within the implicit
        # "rest" group.
        if group_a is None and group_b is None:
            return False
        return group_a is not group_b

    # ------------------------------------------------------------------
    # Message transfer
    # ------------------------------------------------------------------
    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        size_bytes: int = 256,
    ) -> Message:
        """Send one message; returns it (useful for tests and tracing)."""
        if recipient not in self.nodes:
            raise NetworkError(f"unknown recipient {recipient!r}")
        filter_delay = 0.0
        filter_fn = self._send_filters.get(sender)
        if filter_fn is not None:
            rewritten = filter_fn(recipient, kind, payload, size_bytes)
            if rewritten is None:
                # The byzantine node chose not to transmit: nothing hits
                # the wire, so no send is recorded.
                self.stats.dropped_byzantine += 1
                return Message(
                    sender=sender,
                    recipient=recipient,
                    kind=kind,
                    payload=payload,
                    size_bytes=size_bytes,
                    sent_at=self.scheduler.now,
                )
            payload, size_bytes, filter_delay = rewritten
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=self.scheduler.now,
        )
        self.stats.record_send(sender, size_bytes)
        if self.partitioned(sender, recipient):
            self.stats.dropped_partition += 1
            return message
        delay = self._delivery_delay(sender, recipient, size_bytes) + filter_delay
        rate = self.active_corruption_rate()
        if rate and self._rng.random() < rate:
            message.corrupted = True
        self.scheduler.schedule(delay, self._deliver, message)
        return message

    def broadcast(
        self,
        sender: str,
        kind: str,
        payload: Any,
        size_bytes: int = 256,
        include_self: bool = False,
    ) -> int:
        """Send to every registered node; returns number of sends."""
        count = 0
        for node_id in self.nodes:
            if node_id == sender and not include_self:
                continue
            self.send(sender, node_id, kind, payload, size_bytes)
            count += 1
        return count

    def _delivery_delay(self, sender: str, recipient: str, size: int) -> SimTime:
        latency = self.base_latency + self._rng.random() * self.jitter
        serialization = size * 8 / self.bandwidth_bps
        extra = self.active_delay_extra(sender, recipient)
        if extra:
            # One jitter draw regardless of how many windows stack, so a
            # single-window schedule replays byte-identically to the
            # pre-window scalar implementation.
            extra *= 0.5 + self._rng.random()
        return latency + serialization + extra

    def _deliver(self, message: Message) -> None:
        # Partitions that began while the message was in flight still drop it:
        # the paper's attack drops traffic for the whole partition window.
        if self.partitioned(message.sender, message.recipient):
            self.stats.dropped_partition += 1
            return
        node = self.nodes.get(message.recipient)
        if node is None or node.crashed:
            self.stats.dropped_crash += 1
            return
        self.stats.record_delivery(message.recipient, message.size_bytes)
        node.deliver(message)
