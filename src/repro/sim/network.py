"""Simulated network: links, latency, partitions, and fault injection.

The network model reproduces the paper's testbed abstraction — a set of
commodity servers on a 1 Gb switch — plus the three fault modes used in
Section 3.3 (crash, message delay, message corruption) and the
partition attack from Section 4.1.3.

Messages are delivered point-to-point with ``latency + size / bandwidth``
delay. During an active partition, traffic crossing partition groups is
dropped, exactly as BLOCKBENCH "drops network traffic between any two
nodes in the two partitions".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from ..errors import NetworkError
from .clock import SimTime
from .events import Scheduler
from .rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import SimNode

#: Default LAN characteristics: 1 Gb switch, ~0.3 ms one-way latency.
DEFAULT_BANDWIDTH_BPS = 1_000_000_000
DEFAULT_LATENCY = 0.0003
DEFAULT_JITTER = 0.0002

_message_counter = itertools.count()


@dataclass
class Message:
    """A unit of network traffic between two simulated nodes."""

    sender: str
    recipient: str
    kind: str
    payload: Any
    size_bytes: int = 256
    corrupted: bool = False
    sent_at: SimTime = 0.0
    msg_id: int = field(default_factory=lambda: next(_message_counter))


@dataclass
class NetworkStats:
    """Aggregate traffic counters, also kept per node."""

    messages_sent: int = 0
    messages_delivered: int = 0
    dropped_partition: int = 0
    dropped_crash: int = 0
    dropped_delay_jitter: int = 0
    bytes_sent: dict[str, int] = field(default_factory=dict)
    bytes_received: dict[str, int] = field(default_factory=dict)

    def record_send(self, node_id: str, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent[node_id] = self.bytes_sent.get(node_id, 0) + size

    def record_delivery(self, node_id: str, size: int) -> None:
        self.messages_delivered += 1
        self.bytes_received[node_id] = self.bytes_received.get(node_id, 0) + size


class Network:
    """Routes messages between registered nodes under fault schedules."""

    def __init__(
        self,
        scheduler: Scheduler,
        rng: RngRegistry,
        bandwidth_bps: int = DEFAULT_BANDWIDTH_BPS,
        base_latency: SimTime = DEFAULT_LATENCY,
        jitter: SimTime = DEFAULT_JITTER,
    ) -> None:
        self.scheduler = scheduler
        self._rng = rng.stream("network")
        self.bandwidth_bps = bandwidth_bps
        self.base_latency = base_latency
        self.jitter = jitter
        self.nodes: dict[str, "SimNode"] = {}
        self.stats = NetworkStats()
        # Fault state.
        self._partition_groups: list[frozenset[str]] | None = None
        self._extra_delay: SimTime = 0.0
        self._delayed_nodes: frozenset[str] | None = None
        self._corruption_rate: float = 0.0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, node: "SimNode") -> None:
        if node.node_id in self.nodes:
            raise NetworkError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node

    def node_ids(self) -> list[str]:
        return list(self.nodes)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the network; traffic between different groups is dropped."""
        frozen = [frozenset(group) for group in groups]
        covered = set().union(*frozen) if frozen else set()
        unknown = covered - set(self.nodes)
        if unknown:
            raise NetworkError(f"partition names unknown nodes: {sorted(unknown)}")
        self._partition_groups = frozen

    def heal(self) -> None:
        """Remove the active partition, delay, and corruption faults."""
        self._partition_groups = None
        self._extra_delay = 0.0
        self._delayed_nodes = None
        self._corruption_rate = 0.0

    def inject_delay(self, extra: SimTime, nodes: Iterable[str] | None = None) -> None:
        """Add ``extra`` seconds to messages touching ``nodes`` (or all)."""
        self._extra_delay = extra
        self._delayed_nodes = frozenset(nodes) if nodes is not None else None

    def inject_corruption(self, rate: float) -> None:
        """Corrupt each delivered message with probability ``rate``."""
        if not 0.0 <= rate <= 1.0:
            raise NetworkError(f"corruption rate {rate} outside [0, 1]")
        self._corruption_rate = rate

    def partitioned(self, a: str, b: str) -> bool:
        """True if nodes ``a`` and ``b`` are currently in different groups."""
        if self._partition_groups is None or a == b:
            return False
        group_a = next((g for g in self._partition_groups if a in g), None)
        group_b = next((g for g in self._partition_groups if b in g), None)
        # Nodes absent from all groups communicate only within the implicit
        # "rest" group.
        if group_a is None and group_b is None:
            return False
        return group_a is not group_b

    # ------------------------------------------------------------------
    # Message transfer
    # ------------------------------------------------------------------
    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        size_bytes: int = 256,
    ) -> Message:
        """Send one message; returns it (useful for tests and tracing)."""
        if recipient not in self.nodes:
            raise NetworkError(f"unknown recipient {recipient!r}")
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=self.scheduler.now,
        )
        self.stats.record_send(sender, size_bytes)
        if self.partitioned(sender, recipient):
            self.stats.dropped_partition += 1
            return message
        delay = self._delivery_delay(sender, recipient, size_bytes)
        if self._corruption_rate and self._rng.random() < self._corruption_rate:
            message.corrupted = True
        self.scheduler.schedule(delay, self._deliver, message)
        return message

    def broadcast(
        self,
        sender: str,
        kind: str,
        payload: Any,
        size_bytes: int = 256,
        include_self: bool = False,
    ) -> int:
        """Send to every registered node; returns number of sends."""
        count = 0
        for node_id in self.nodes:
            if node_id == sender and not include_self:
                continue
            self.send(sender, node_id, kind, payload, size_bytes)
            count += 1
        return count

    def _delivery_delay(self, sender: str, recipient: str, size: int) -> SimTime:
        latency = self.base_latency + self._rng.random() * self.jitter
        serialization = size * 8 / self.bandwidth_bps
        extra = 0.0
        if self._extra_delay:
            affected = self._delayed_nodes
            if affected is None or sender in affected or recipient in affected:
                extra = self._extra_delay * (0.5 + self._rng.random())
        return latency + serialization + extra

    def _deliver(self, message: Message) -> None:
        # Partitions that began while the message was in flight still drop it:
        # the paper's attack drops traffic for the whole partition window.
        if self.partitioned(message.sender, message.recipient):
            self.stats.dropped_partition += 1
            return
        node = self.nodes.get(message.recipient)
        if node is None or node.crashed:
            self.stats.dropped_crash += 1
            return
        self.stats.record_delivery(message.recipient, message.size_bytes)
        node.deliver(message)
