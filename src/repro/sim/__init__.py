"""Discrete-event simulation kernel.

Provides the deterministic scheduler, seeded RNG streams, the network
model with fault injection, the base node class with bounded inboxes,
and the resource monitor used to reproduce the paper's utilization
figures.
"""

from .clock import NEVER, SimTime, Stopwatch, format_time
from .events import Event, Scheduler
from .futures import SimCoroutine, SimFuture, gather, spawn
from .monitor import ResourceMonitor, ResourceSample, ResourceSeries
from .network import Message, Network, NetworkStats
from .node import SimNode
from .rng import RngRegistry, derive_seed

__all__ = [
    "NEVER",
    "SimTime",
    "Stopwatch",
    "format_time",
    "Event",
    "Scheduler",
    "SimCoroutine",
    "SimFuture",
    "gather",
    "spawn",
    "ResourceMonitor",
    "ResourceSample",
    "ResourceSeries",
    "Message",
    "Network",
    "NetworkStats",
    "SimNode",
    "RngRegistry",
    "derive_seed",
]
