"""Deterministic discrete-event scheduler.

The scheduler is the heart of the simulation substrate: every node,
network link, consensus timer, and benchmark client schedules callbacks
on a single priority queue keyed by simulated time. Determinism is
guaranteed by breaking time ties with a monotonically increasing
sequence number, so two runs with the same seed replay the exact same
event order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..errors import SimulationError
from .clock import NEVER, SimTime
from .futures import SimCoroutine, SimFuture, spawn

# Heap entries are plain ``(time, seq, event)`` tuples. The unique,
# monotonically increasing ``seq`` breaks time ties before comparison
# ever reaches the (non-comparable) event, and tuple comparison in C is
# several times faster than a dataclass __lt__ — this queue is pushed
# and popped for every simulated message, timer, and client tick.


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("fn", "args", "cancelled", "_scheduler")

    def __init__(
        self,
        fn: Callable[..., Any],
        args: tuple[Any, ...],
        scheduler: "Scheduler | None" = None,
    ) -> None:
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent; cancelling an
        event that already fired is a no-op."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._on_cancel()
            self._scheduler = None


class Scheduler:
    """Single-threaded event loop over simulated time.

    >>> sched = Scheduler()
    >>> fired = []
    >>> _ = sched.schedule(2.0, fired.append, "b")
    >>> _ = sched.schedule(1.0, fired.append, "a")
    >>> sched.run()
    >>> fired
    ['a', 'b']
    """

    #: Compact the heap when at least this many cancelled entries are
    #: buried in it *and* they outnumber the live ones; below the
    #: floor, popping them lazily is cheaper than a rebuild.
    COMPACT_FLOOR = 64

    def __init__(self) -> None:
        self._queue: list[tuple[SimTime, int, Event]] = []
        self._seq = 0
        self.now: SimTime = 0.0
        self._running = False
        self.events_processed = 0
        # Live-event counter: pending() is O(1) instead of scanning the
        # heap (monitors and the driver sample it every simulated
        # second). _cancelled counts tombstones still buried in the
        # heap so compaction can trigger before they dominate memory.
        self._live = 0
        self._cancelled = 0

    def schedule(self, delay: SimTime, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, when: SimTime, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when:.6f}s; current time is {self.now:.6f}s"
            )
        event = Event(fn, args, self)
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, event))
        self._live += 1
        return event

    def _on_cancel(self) -> None:
        """Bookkeeping for Event.cancel(); compacts tombstones lazily."""
        self._live -= 1
        self._cancelled += 1
        if (
            self._cancelled >= self.COMPACT_FLOOR
            and self._cancelled > len(self._queue) // 2
        ):
            self._queue = [
                entry for entry in self._queue if not entry[2].cancelled
            ]
            heapq.heapify(self._queue)
            self._cancelled = 0

    def peek_time(self) -> SimTime:
        """Time of the next pending event, or ``NEVER`` if queue is empty."""
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
            self._cancelled -= 1
        return self._queue[0][0] if self._queue else NEVER

    def step(self) -> bool:
        """Run the single next event. Returns False when nothing is left."""
        queue = self._queue
        while queue:
            when, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = when
            self.events_processed += 1
            self._live -= 1
            # Detach before firing so a later cancel() of this handle
            # cannot double-decrement the live counter.
            event._scheduler = None
            event.fn(*event.args)
            return True
        return False

    def run(self, max_events: int | None = None) -> None:
        """Drain the queue, optionally stopping after ``max_events``."""
        remaining = max_events
        while self.step():
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return

    def run_until(self, deadline: SimTime) -> None:
        """Run all events with time <= ``deadline`` and advance the clock.

        The clock always lands exactly on ``deadline`` so callers can
        interleave ``run_until`` calls with direct inspection.
        """
        if deadline < self.now:
            raise SimulationError(
                f"deadline {deadline:.6f}s is before current time {self.now:.6f}s"
            )
        while True:
            next_time = self.peek_time()
            if next_time > deadline:
                break
            self.step()
        self.now = deadline

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued. O(1):
        maintained as a counter rather than scanning the heap."""
        return self._live

    # ------------------------------------------------------------------
    # Coroutine support (see repro.sim.futures)
    # ------------------------------------------------------------------
    def sleep(self, delay: SimTime) -> SimFuture:
        """A future resolving ``delay`` simulated seconds from now.

        The awaitable replacement for ``schedule(delay, fn)``-style
        timer callbacks: ``yield scheduler.sleep(0.5)``. Costs exactly
        one heap event, like the callback it replaces.
        """
        future = SimFuture()
        self.schedule(delay, future.set_result, None)
        return future

    def spawn(self, coroutine: SimCoroutine) -> SimFuture:
        """Run a generator-coroutine against this scheduler's timeline.

        Pure convenience over :func:`repro.sim.futures.spawn` — the
        trampoline itself never touches the heap; only ``sleep`` and
        the RPC layer do.
        """
        return spawn(coroutine)
