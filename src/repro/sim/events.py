"""Deterministic discrete-event scheduler.

The scheduler is the heart of the simulation substrate: every node,
network link, consensus timer, and benchmark client schedules callbacks
on a single priority queue keyed by simulated time. Determinism is
guaranteed by breaking time ties with a monotonically increasing
sequence number, so two runs with the same seed replay the exact same
event order.

Two fast paths keep the dispatch rate high enough that the scheduler is
never the layer being measured (the ISSUE 6 scale work):

* Events scheduled at *exactly the current instant* — the ``0.0``-delay
  hand-offs every simulated node uses to yield between messages — go to
  a FIFO run queue instead of the heap. Dispatch order is unchanged
  (the run queue is consumed in sequence order, interleaved with any
  same-timestamp heap entries by their sequence numbers); only the
  ``heappush``/``heappop`` pair is skipped.
* :meth:`Scheduler.push_many` bulk-schedules a batch of timers with one
  ``heapify`` instead of N ``heappush`` calls — the entry point the
  open-loop arrival pump uses to pre-schedule a chunk of arrivals.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Iterable

from ..errors import SimulationError
from .clock import NEVER, SimTime
from .futures import SimCoroutine, SimFuture, spawn

# Heap entries are plain ``(time, seq, event)`` tuples. The unique,
# monotonically increasing ``seq`` breaks time ties before comparison
# ever reaches the (non-comparable) event, and tuple comparison in C is
# several times faster than a dataclass __lt__ — this queue is pushed
# and popped for every simulated message, timer, and client tick.
# Run-queue entries are ``(seq, event)`` — their time is always the
# scheduler's current instant.


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("fn", "args", "cancelled", "_scheduler")

    def __init__(
        self,
        fn: Callable[..., Any],
        args: tuple[Any, ...],
        scheduler: "Scheduler | None" = None,
    ) -> None:
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the callback from firing. Idempotent; cancelling an
        event that already fired is a no-op."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._on_cancel()
            self._scheduler = None


class Scheduler:
    """Single-threaded event loop over simulated time.

    >>> sched = Scheduler()
    >>> fired = []
    >>> _ = sched.schedule(2.0, fired.append, "b")
    >>> _ = sched.schedule(1.0, fired.append, "a")
    >>> sched.run()
    >>> fired
    ['a', 'b']
    """

    #: Compact the heap when at least this many cancelled entries are
    #: buried in it *and* they outnumber the live ones; below the
    #: floor, popping them lazily is cheaper than a rebuild.
    COMPACT_FLOOR = 64

    def __init__(self) -> None:
        self._queue: list[tuple[SimTime, int, Event]] = []
        # Events scheduled at exactly ``now`` while the clock already
        # stands there: consumed FIFO (== seq order) without touching
        # the heap. Invariant: every entry's time is the current
        # instant, so the queue always drains before the clock moves.
        self._runq: deque[tuple[int, Event]] = deque()
        self._seq = 0
        self.now: SimTime = 0.0
        self.events_processed = 0
        # Tombstones (cancelled events) still buried in the heap or run
        # queue. pending() derives the live count from the container
        # sizes minus this, so the hot dispatch path maintains no
        # separate live counter.
        self._cancelled = 0

    def schedule(self, delay: SimTime, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        event = Event(fn, args, self)
        self._seq = seq = self._seq + 1
        if delay == 0.0:
            self._runq.append((seq, event))
        else:
            heapq.heappush(self._queue, (self.now + delay, seq, event))
        return event

    def schedule_at(self, when: SimTime, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        now = self.now
        if when < now:
            raise SimulationError(
                f"cannot schedule at {when:.6f}s; current time is {now:.6f}s"
            )
        event = Event(fn, args, self)
        self._seq = seq = self._seq + 1
        if when == now:
            self._runq.append((seq, event))
        else:
            heapq.heappush(self._queue, (when, seq, event))
        return event

    def push_many(
        self,
        items: Iterable[tuple[SimTime, Callable[..., Any], tuple[Any, ...]]],
    ) -> list[Event]:
        """Bulk-schedule ``(delay, fn, args)`` entries; returns their Events.

        One ``heapify`` over the merged heap replaces N ``heappush``
        sift-ups when the batch is large relative to the pending queue
        — the win the open-loop arrival pump depends on when it
        pre-schedules a chunk of arrivals at once. Order semantics are
        identical to N sequential :meth:`schedule` calls (entries take
        consecutive sequence numbers in input order).
        """
        now = self.now
        queue = self._queue
        seq = self._seq
        events: list[Event] = []
        entries: list[tuple[SimTime, int, Event]] = []
        for delay, fn, args in items:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule {delay:.6f}s in the past"
                )
            seq += 1
            event = Event(fn, args, self)
            events.append(event)
            entries.append((now + delay, seq, event))
        self._seq = seq
        # Crossover: k pushes cost O(k log n); extend+heapify O(n + k).
        if len(entries) * 4 >= len(queue):
            queue.extend(entries)
            heapq.heapify(queue)
        else:
            for entry in entries:
                heapq.heappush(queue, entry)
        return events

    def _on_cancel(self) -> None:
        """Bookkeeping for Event.cancel(); compacts tombstones lazily."""
        self._cancelled += 1
        if (
            self._cancelled >= self.COMPACT_FLOOR
            and self._cancelled > (len(self._queue) + len(self._runq)) // 2
        ):
            self._queue = [
                entry for entry in self._queue if not entry[2].cancelled
            ]
            heapq.heapify(self._queue)
            if self._runq:
                self._runq = deque(
                    entry for entry in self._runq if not entry[1].cancelled
                )
            self._cancelled = 0

    def peek_time(self) -> SimTime:
        """Time of the next pending event, or ``NEVER`` if queue is empty."""
        runq = self._runq
        while runq and runq[0][1].cancelled:
            runq.popleft()
            self._cancelled -= 1
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._cancelled -= 1
        if runq:
            return self.now  # run-queue entries live at the current instant
        return queue[0][0] if queue else NEVER

    def _pop_next(self) -> tuple[SimTime, Event] | None:
        """Pop the next live event honoring (time, seq) order, or None."""
        queue = self._queue
        runq = self._runq
        pop = heapq.heappop
        while True:
            if runq:
                # A heap entry at the same instant with a smaller seq
                # was scheduled earlier and goes first.
                head = queue[0] if queue else None
                if head is not None and head[0] == self.now and head[1] < runq[0][0]:
                    when, _seq, event = pop(queue)
                else:
                    when, event = self.now, runq.popleft()[1]
            elif queue:
                when, _seq, event = pop(queue)
            else:
                return None
            if event.cancelled:
                self._cancelled -= 1
                continue
            return when, event

    def step(self) -> bool:
        """Run the single next event. Returns False when nothing is left."""
        nxt = self._pop_next()
        if nxt is None:
            return False
        when, event = nxt
        self.now = when
        self.events_processed += 1
        # Detach before firing so a later cancel() of this handle
        # cannot corrupt the tombstone counter.
        event._scheduler = None
        event.fn(*event.args)
        return True

    def run(self, max_events: int | None = None) -> None:
        """Drain the queue, optionally stopping after ``max_events``."""
        queue = self._queue
        runq = self._runq
        pop = heapq.heappop
        remaining = -1 if max_events is None else max_events
        # Inlined _pop_next: this loop is the simulator's innermost
        # hot path, so it avoids a Python call per dispatched event.
        while True:
            if runq:
                head = queue[0] if queue else None
                if head is not None and head[0] == self.now and head[1] < runq[0][0]:
                    when, _seq, event = pop(queue)
                else:
                    when, event = self.now, runq.popleft()[1]
            elif queue:
                when, _seq, event = pop(queue)
            else:
                return
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = when
            self.events_processed += 1
            event._scheduler = None
            event.fn(*event.args)
            if remaining != -1:
                remaining -= 1
                if remaining <= 0:
                    return

    def run_until(self, deadline: SimTime) -> None:
        """Run all events with time <= ``deadline`` and advance the clock.

        The clock always lands exactly on ``deadline`` so callers can
        interleave ``run_until`` calls with direct inspection.
        """
        if deadline < self.now:
            raise SimulationError(
                f"deadline {deadline:.6f}s is before current time {self.now:.6f}s"
            )
        queue = self._queue
        runq = self._runq
        pop = heapq.heappop
        while True:
            if runq:
                # Run-queue entries live at the current instant, which
                # is always <= deadline.
                head = queue[0] if queue else None
                if head is not None and head[0] == self.now and head[1] < runq[0][0]:
                    when, _seq, event = pop(queue)
                else:
                    when, event = self.now, runq.popleft()[1]
            elif queue:
                head = queue[0]
                if head[2].cancelled:
                    pop(queue)
                    self._cancelled -= 1
                    continue
                if head[0] > deadline:
                    break
                when, _seq, event = pop(queue)
            else:
                break
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = when
            self.events_processed += 1
            event._scheduler = None
            event.fn(*event.args)
        self.now = deadline

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued. O(1):
        derived from the container sizes minus buried tombstones."""
        return len(self._queue) + len(self._runq) - self._cancelled

    # ------------------------------------------------------------------
    # Coroutine support (see repro.sim.futures)
    # ------------------------------------------------------------------
    def sleep(self, delay: SimTime) -> SimFuture:
        """A future resolving ``delay`` simulated seconds from now.

        The awaitable replacement for ``schedule(delay, fn)``-style
        timer callbacks: ``yield scheduler.sleep(0.5)``. Costs exactly
        one heap event, like the callback it replaces.
        """
        future = SimFuture()
        self.schedule(delay, future.set_result, None)
        return future

    def spawn(self, coroutine: SimCoroutine) -> SimFuture:
        """Run a generator-coroutine against this scheduler's timeline.

        Pure convenience over :func:`repro.sim.futures.spawn` — the
        trampoline itself never touches the heap; only ``sleep`` and
        the RPC layer do.
        """
        return spawn(coroutine)
