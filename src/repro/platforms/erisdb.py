"""ErisDB platform (Monax / eris-db analogue) — the fourth backend.

The paper lists ErisDB as "under development" as a BLOCKBENCH backend
(Section 3.2) and surveys it in Table 2: Tendermint BFT consensus, the
EVM execution engine, an account-based data model. This module
completes the integration:

* **consensus** — :class:`~repro.consensus.tendermint.Tendermint`
  (round-based BFT with immediate finality);
* **data model** — account state in a Patricia-Merkle trie kept in
  memory (the IAVL-tree analogue), with per-height snapshots so
  historical queries work like Ethereum's;
* **execution** — the EVM cost profile (ErisDB runs Solidity contracts
  in an EVM, so execution is priced like Ethereum's, not like
  Hyperledger's native chaincode);
* **application interface** — the standard RPC set *plus* the
  publish/subscribe interface the paper singles out: "ErisDB provides
  a publish/subscribe interface that could simplify the implementation
  of [getLatestBlock]" (Section 3.2). Clients may subscribe once and
  receive a push event per executed block instead of polling.
"""

from __future__ import annotations

from ..chain import Block
from ..config import ErisDBConfig, erisdb_config
from ..consensus.tendermint import PROPOSAL, Tendermint
from ..registry import register_platform
from ..sim import Message, Network, RngRegistry, Scheduler
from .base import PlatformNode
from .ethereum import EthereumState

RPC_SUBSCRIBE = "rpc/subscribe"
RPC_UNSUBSCRIBE = "rpc/unsubscribe"
RPC_EVENT = "rpc/event"


class ErisDBState(EthereumState):
    """Account trie held in memory — ErisDB's IAVL-tree analogue.

    Same structure and snapshot semantics as the Ethereum state, but
    never backed by the LSM store: eris-db v0.x kept its merkle state
    in memory and persisted through Tendermint's block store. The
    journaled overlay and batched per-block trie flush are inherited
    from :class:`EthereumState`, so Tendermint commits pay one shared
    path rewrite per block too.
    """

    def __init__(self) -> None:
        super().__init__(storage_dir=None)


class ErisDBNode(PlatformNode):
    """eris-db validator: Tendermint + EVM + pub/sub block events."""

    supports_subscription = True

    def __init__(
        self,
        node_id: str,
        scheduler: Scheduler,
        network: Network,
        rng_registry: RngRegistry,
        config: ErisDBConfig | None = None,
        validators: list[str] | None = None,
    ) -> None:
        config = config or erisdb_config()
        super().__init__(
            node_id, scheduler, network, rng_registry, config, ErisDBState()
        )
        self.eris_config = config
        self.attach_protocol(
            Tendermint(self, config.tendermint, validators or [node_id])
        )
        #: subscriber client id -> subscription id (one sub per client).
        self._subscribers: dict[str, int] = {}
        self.events_published = 0

    def start(self) -> None:
        self.protocol.start()

    def _fresh_state(self) -> ErisDBState:
        """Empty in-memory trie for cold recovery."""
        return ErisDBState()

    # ------------------------------------------------------------------
    # Message costs: a Tendermint proposal carries a block and pays
    # per-transaction verification, like a PBFT pre-prepare.
    # ------------------------------------------------------------------
    def message_cost(self, message: Message) -> float:
        if message.kind == PROPOSAL:
            block: Block = message.payload
            costs = self.config.execution
            return costs.consensus_msg_cost_s + costs.verify_cost_s * len(
                block.transactions
            )
        return super().message_cost(message)

    # ------------------------------------------------------------------
    # Publish/subscribe (the Section 3.2 interface)
    # ------------------------------------------------------------------
    def handle_message(self, message: Message) -> None:
        if message.kind == RPC_SUBSCRIBE and not message.corrupted:
            self._on_subscribe(message)
        elif message.kind == RPC_UNSUBSCRIBE and not message.corrupted:
            self._on_unsubscribe(message)
        else:
            super().handle_message(message)

    #: Spacing between replayed events. The event feed is a stream (one
    #: TCP connection), so replayed blocks must arrive in height order;
    #: pacing them beyond the network's jitter window models that FIFO
    #: property on top of the jittering message layer.
    REPLAY_SPACING_S = 0.001

    def _on_subscribe(self, message: Message) -> None:
        sub_id = message.payload["req_id"]
        from_height = message.payload.get("from_height", 0)
        self._subscribers[message.sender] = sub_id
        # Replay blocks the subscriber missed, so subscribing is
        # race-free with respect to commits that landed just before.
        confirmed = min(self.confirmed_height(), self.executed_height)
        for i, block in enumerate(
            self._chain.blocks_in_range(from_height, confirmed)
        ):
            self.set_timer(
                i * self.REPLAY_SPACING_S,
                self._push_event,
                message.sender,
                sub_id,
                block,
            )

    def _on_unsubscribe(self, message: Message) -> None:
        """Stop publishing to the sender: without this, a client that
        dropped its local callback would keep receiving (and paying
        network delivery for) one event per executed block forever."""
        sub_id = message.payload.get("sub_id")
        if self._subscribers.get(message.sender) == sub_id:
            del self._subscribers[message.sender]

    def _execute_block(self, block: Block) -> None:
        super()._execute_block(block)
        for client, sub_id in self._subscribers.items():
            self._push_event(client, sub_id, block)

    def _push_event(self, client: str, sub_id: int, block: Block) -> None:
        summary = {
            "height": block.height,
            "timestamp": block.header.timestamp,
            "tx_ids": [tx.tx_id for tx in block.transactions],
        }
        self.events_published += 1
        self.send(
            client,
            RPC_EVENT,
            {"sub_id": sub_id, "block": summary},
            64 + 40 * len(summary["tx_ids"]),
        )


@register_platform(
    "erisdb",
    default_config=erisdb_config,
    description="ErisDB: Tendermint BFT with a pub/sub block feed",
)
def build_erisdb_node(
    node_id: str,
    scheduler: Scheduler,
    network: Network,
    rng: RngRegistry,
    config: ErisDBConfig,
    all_ids: list[str],
    storage_dir=None,
) -> ErisDBNode:
    """Node factory used by ``build_cluster`` (see ``repro.registry``)."""
    return ErisDBNode(node_id, scheduler, network, rng, config, validators=all_ids)
