"""Cluster builder: a private testnet of one platform.

Assembles scheduler, network, N platform nodes with peering, deployed
contracts, and an optional resource monitor — the simulated equivalent
of the paper's 48-node commodity cluster on a 1 Gb switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..core.audit import ChainAuditor
from ..core.trace import StageTracer
from ..errors import BenchmarkError
from ..registry import PLATFORMS
from ..sim import Network, ResourceMonitor, RngRegistry, Scheduler
from .base import ExecutionCache, PlatformNode

# Importing the platform modules runs their @register_platform
# decorators, populating the registry with the built-in backends.
from . import erisdb, ethereum, hyperledger, parity  # noqa: F401

DEFAULT_CONTRACTS = (
    "kvstore",
    "smallbank",
    "donothing",
    "ioheavy",
    "cpuheavy",
    "versionkv",
    "etherid",
    "doubler",
    "wavespresale",
)


@dataclass
class Cluster:
    """A running testnet plus its simulation plumbing."""

    platform: str
    scheduler: Scheduler
    network: Network
    rng: RngRegistry
    nodes: list[PlatformNode]
    monitor: ResourceMonitor | None = None
    #: Always-on chain safety auditor (fork/digest/monotonicity checks).
    auditor: ChainAuditor | None = None
    #: Lifecycle stage tracer (``trace_stages`` knob; None when off).
    tracer: StageTracer | None = None

    def node_ids(self) -> list[str]:
        return [node.node_id for node in self.nodes]

    def run_until(self, deadline: float) -> None:
        self.scheduler.run_until(deadline)

    def alive_nodes(self) -> list[PlatformNode]:
        return [node for node in self.nodes if not node.crashed]

    def crash_nodes(self, count: int, include_leader: bool = True) -> list[str]:
        """Crash ``count`` nodes (Figure 9's fault injection).

        ``include_leader`` crashes from the head of the replica list,
        which for PBFT includes the view-0 leader — the harder case.
        """
        victims = self.nodes[:count] if include_leader else self.nodes[-count:]
        for node in victims:
            node.crash()
        return [node.node_id for node in victims]

    def crash_named(self, node_ids: Iterable[str]) -> list[str]:
        """Crash an explicit set of nodes (CrashFault's ``nodes`` knob)."""
        wanted = set(node_ids)
        victims = [node for node in self.nodes if node.node_id in wanted]
        for node in victims:
            node.crash()
        return [node.node_id for node in victims]

    def recover_nodes(
        self, node_ids: Iterable[str], mode: str = "warm"
    ) -> list[str]:
        """Restart crashed nodes; each begins chain catch-up and rejoins
        consensus when synced (see PlatformNode.recover)."""
        wanted = set(node_ids)
        recovered = []
        for node in self.nodes:
            if node.node_id in wanted and node.crashed:
                node.recover(mode)
                recovered.append(node.node_id)
        return recovered

    def recovery_times(self) -> dict[str, float]:
        """Latest completed recovery cycle per node (empty when none)."""
        return {
            node.node_id: node.recovery_times[-1]
            for node in self.nodes
            if node.recovery_times
        }

    def sync_traffic(self) -> dict[str, int]:
        """Cluster-total block-sync counters (crash-recovery traffic)."""
        return {
            "requests": sum(n.sync_requests_sent for n in self.nodes),
            "blocks": sum(n.sync_blocks_received for n in self.nodes),
            "bytes": sum(n.sync_bytes_received for n in self.nodes),
        }

    def partition_halves(self) -> tuple[list[str], list[str]]:
        """Split the testnet in half (the Figure 10 attack)."""
        ids = self.node_ids()
        half = len(ids) // 2
        first, second = ids[:half], ids[half:]
        self.network.partition([first, second])
        return first, second

    def heal(self) -> None:
        self.network.heal()

    def committed_tx_count(self) -> int:
        """Committed transactions as seen by the first live node."""
        alive = self.alive_nodes()
        return alive[0].committed_tx_count if alive else 0

    def chain_height(self) -> int:
        alive = self.alive_nodes()
        return alive[0].chain().height if alive else 0

    def global_block_stats(self) -> tuple[int, int]:
        """(total distinct blocks anywhere, blocks on the main branch).

        The paper's Figure 10 metric is global: blocks abandoned after
        a partition heals survive only in the stores of the nodes that
        produced them, so the union across nodes is required.
        """
        all_hashes: set[bytes] = set()
        for node in self.nodes:
            chain = node.chain()
            for block in chain._blocks.values():  # noqa: SLF001 - metric probe
                if block.height > 0:
                    all_hashes.add(block.hash)
        main = max(
            (node.chain() for node in self.nodes), key=lambda c: c.height
        )
        return len(all_hashes), main.main_branch_blocks

    def stale_executions(self) -> int:
        """Executed blocks that a later reorg replaced, across nodes.

        A block is executed once it reaches the platform's confirmation
        depth; if the final main branch carries a *different* block at
        that height, every state change a client acted on there was
        unwound — the double-spend window the confirmation-depth
        ablation quantifies.
        """
        reference = max(
            (node.chain() for node in self.nodes), key=lambda c: c.height
        )
        stale = 0
        for node in self.nodes:
            for height, executed_hash in node.executed_block_hashes.items():
                final = reference.block_by_height(height)
                if final is not None and final.hash != executed_hash:
                    stale += 1
        return stale

    def close(self) -> None:
        for node in self.nodes:
            node.close()


def build_cluster(
    platform: str,
    n_nodes: int,
    seed: int = 42,
    contracts: Iterable[str] = DEFAULT_CONTRACTS,
    config=None,
    config_overrides: dict | None = None,
    storage_dir: str | Path | None = None,
    with_monitor: bool = False,
    monitor_interval: float = 1.0,
    trace_stages: bool = True,
) -> Cluster:
    """Build and start an N-node testnet of ``platform``.

    ``config_overrides`` is a JSON-shaped knob dict (scenario-file
    ``overrides``) applied to the platform's config — the explicit
    ``config`` if given, the registered default otherwise — via
    :func:`repro.config.apply_overrides`. ``storage_dir`` switches
    state persistence to the real LSM engine (one subdirectory per
    node) — used by the IOHeavy experiment.
    """
    if n_nodes < 1:
        raise BenchmarkError("cluster needs at least one node")
    scheduler = Scheduler()
    rng = RngRegistry(seed)
    network = Network(scheduler, rng)
    ids = [f"server-{i}" for i in range(n_nodes)]
    nodes: list[PlatformNode] = []

    def node_dir(node_id: str) -> Path | None:
        if storage_dir is None:
            return None
        path = Path(storage_dir) / node_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    spec = PLATFORMS.get(platform)
    config = spec.make_config(config, config_overrides)
    for node_id in ids:
        nodes.append(
            spec.factory(
                node_id, scheduler, network, rng, config, ids, node_dir(node_id)
            )
        )

    # One shared execution-memoization cache per cluster: the first
    # replica to execute a block records its write-set, the rest
    # replay it (see repro.platforms.base.ExecutionCache). Gated by
    # the platform-config knob so scenarios can A/B it.
    if getattr(config, "execution_cache", False):
        cache = ExecutionCache()
        for node in nodes:
            if isinstance(node, PlatformNode):
                node.attach_execution_cache(cache)

    # Always-on safety auditor: every node's finalized blocks feed the
    # fork/digest/monotonicity checks (ISSUE: adversarial fault axis).
    auditor = ChainAuditor(network)
    for node in nodes:
        if isinstance(node, PlatformNode):
            node.attach_auditor(auditor)

    # Lifecycle stage tracer (repro.core.trace): one shared recorder
    # stamps admit/propose/decide/execute/commit for every transaction
    # through protocol-neutral hooks. Recording never charges CPU or
    # schedules events, so the timeline is identical with it off.
    tracer = None
    if trace_stages:
        tracer = StageTracer()
        for node in nodes:
            if isinstance(node, PlatformNode):
                node.attach_tracer(tracer)

    for node in nodes:
        node.set_peers(ids)
        for contract_name in contracts:
            node.deploy(contract_name)
    for node in nodes:
        node.start()

    monitor = None
    if with_monitor:
        monitor = ResourceMonitor(
            scheduler, network, nodes, interval=monitor_interval, cores=8
        )
        monitor.start()
    return Cluster(
        platform=platform,
        scheduler=scheduler,
        network=network,
        rng=rng,
        nodes=nodes,
        monitor=monitor,
        auditor=auditor,
        tracer=tracer,
    )
