"""Ethereum platform (geth v1.4.18 analogue).

Composition per the paper: PoW consensus (difficulty tuned for ~2.5 s
blocks at 8 nodes), account state in a Patricia-Merkle trie over a
LevelDB-preset LSM store with an LRU node cache, the EVM execution cost
profile, and limited transaction gossip — the paper observed that geth
servers "do not always broadcast transactions to each other (they keep
mining on their own transaction pool)" (Section 4.1.2), which we model
with a bounded gossip fan-out.
"""

from __future__ import annotations

from pathlib import Path

from ..chain import Transaction
from ..config import EthereumConfig, ethereum_config
from ..consensus.pow import ProofOfWork
from ..crypto.hashing import Hash, sha256
from ..crypto.trie import NodeStore, StateTrie
from ..registry import register_platform
from ..sim import Network, RngRegistry, Scheduler
from ..storage import LSMStore, leveldb_config
from ..util.lru import LRUCache
from .base import TX_GOSSIP, JournaledState, PlatformNode

#: geth's state-cache sizing (entries, not bytes, for simplicity).
NODE_CACHE_ENTRIES = 120_000

#: How many peers a geth node forwards a pending transaction to.
TX_GOSSIP_FANOUT = 3


class _CachedNodeStore:
    """LRU read cache in front of a persistent node store."""

    def __init__(self, backing: NodeStore, capacity: int = NODE_CACHE_ENTRIES) -> None:
        self._backing = backing
        self.cache: LRUCache[bytes, bytes] = LRUCache(capacity)

    def get(self, key: bytes) -> bytes | None:
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        value = self._backing.get(key)
        if value is not None:
            self.cache.put(key, value)
        return value

    def put(self, key: bytes, value: bytes) -> None:
        self._backing.put(key, value)
        self.cache.put(key, value)


class EthereumState(JournaledState):
    """Patricia-Merkle trie over LevelDB (or memory for macro runs).

    Intra-block writes buffer in the journaled overlay
    (:class:`~repro.platforms.base.JournaledState`); ``commit_block``
    flushes the net write-set through the trie's batched ``update`` so
    shared path segments are rewritten once per block, not once per
    logical put.
    """

    def __init__(self, storage_dir: str | Path | None = None) -> None:
        super().__init__()
        self._store: LSMStore | None = None
        if storage_dir is not None:
            self._store = LSMStore(Path(storage_dir), leveldb_config())
            # The trie's own decoded-node cache is disabled here: in
            # disk-backed mode _CachedNodeStore *models* geth's state
            # cache and the LSM read counters feed the IOHeavy figures,
            # so every logical node read must reach that layer.
            self.trie = StateTrie(
                _CachedNodeStore(self._store), node_cache_entries=0
            )
        else:
            self.trie = StateTrie()
        self._snapshots: dict[int, int] = {}

    def _backing_get(self, key: bytes) -> bytes | None:
        return self.trie.get(key)

    def _flush(self, items) -> None:
        self.trie.update(items)

    def _seal(self, height: int) -> Hash:
        self._snapshots[height] = self.trie.snapshot()
        return self.trie.root_hash()

    def pre_state_root(self) -> Hash:
        return self.trie.root_hash()

    def get_at(self, height: int, key: bytes) -> bytes | None:
        snapshot = self._snapshots.get(height)
        if snapshot is None:
            # Before the first commit at/after `height`: walk back.
            candidates = [h for h in self._snapshots if h <= height]
            if not candidates:
                return None
            snapshot = self._snapshots[max(candidates)]
        return self.trie.get_at(snapshot, key)

    def disk_usage_bytes(self) -> int:
        return self._store.disk_usage_bytes() if self._store is not None else 0

    def close(self) -> None:
        if self._store is not None:
            self._store.close()


class EthereumNode(PlatformNode):
    """geth-style full node: PoW miner + trie state + EVM cost model."""

    def __init__(
        self,
        node_id: str,
        scheduler: Scheduler,
        network: Network,
        rng_registry: RngRegistry,
        config: EthereumConfig | None = None,
        storage_dir: str | Path | None = None,
    ) -> None:
        config = config or ethereum_config()
        super().__init__(
            node_id,
            scheduler,
            network,
            rng_registry,
            config,
            EthereumState(storage_dir),
        )
        self.eth_config = config
        self._storage_dir = storage_dir
        self._recovery_epoch = 0
        self.attach_protocol(ProofOfWork(self, config.pow))

    def start(self) -> None:
        self.protocol.start()

    def _fresh_state(self) -> EthereumState:
        """Empty trie for cold recovery. Disk-backed nodes get a fresh
        LSM directory — the wiped store's files are gone, and reusing
        the old path would collide with the closed store's artifacts."""
        path = self._storage_dir
        if path is not None:
            self._recovery_epoch += 1
            path = Path(path) / f"recovery-{self._recovery_epoch}"
        return EthereumState(path)

    def _on_send_tx(self, message) -> None:
        """geth admission: pool locally, gossip to a few static peers."""
        request = message.payload
        tx: Transaction = request["tx"]
        if self._dup_reply(message, tx):
            return
        accepted = self.mempool.add(tx, self.now)
        if accepted:
            fanout = self._gossip_targets(tx)
            for peer in fanout:
                self.network.send(self.node_id, peer, TX_GOSSIP, tx, tx.size_bytes())
            if self.protocol is not None:
                self.protocol.on_new_pending_tx()
        else:
            self.rejected_submissions += 1
        self._reply(message, {"accepted": accepted, "tx_id": tx.tx_id})

    def _gossip_targets(self, tx: Transaction) -> list[str]:
        if len(self.peers) <= TX_GOSSIP_FANOUT:
            return list(self.peers)
        # Deterministic per-transaction peer choice (static peering).
        seed = int.from_bytes(sha256(tx.tx_id.encode())[:4], "big")
        start = seed % len(self.peers)
        return [
            self.peers[(start + i) % len(self.peers)] for i in range(TX_GOSSIP_FANOUT)
        ]


@register_platform(
    "ethereum",
    default_config=ethereum_config,
    description="geth v1.4.18: PoW, Patricia-Merkle trie, EVM costs",
)
def build_ethereum_node(
    node_id: str,
    scheduler: Scheduler,
    network: Network,
    rng: RngRegistry,
    config: EthereumConfig,
    all_ids: list[str],
    storage_dir: Path | None,
) -> EthereumNode:
    """Node factory used by ``build_cluster`` (see ``repro.registry``)."""
    return EthereumNode(node_id, scheduler, network, rng, config, storage_dir)
