"""Parity platform (v1.6.0 analogue).

Composition per the paper: Proof-of-Authority (Aura) with a 1-second
``stepDuration``, the entire state held in memory (Section 3.1.2 /
4.2.2), and — the paper's key finding — a **server-side transaction
signing stage** that caps the whole network at a constant processing
rate regardless of offered load and node count (Sections 4.1.1, 4.2.3:
"the bottleneck in Parity is due to the server's transaction signing,
not due to consensus or transaction execution").

Mechanics:

* every submission must pass a per-node intake throttle (~80 tx/s, the
  "maximum client request rate" of Figure 6's analysis);
* accepted submissions are forwarded to the *signer* (the node holding
  the unlocked authority account) whose single-threaded signing loop
  serves one transaction per ``signing_cost_s``;
* the signing queue is bounded — overflow is rejected back to the
  client immediately. That is why Parity's measured latency stays flat
  while its client-side queue grows: the latency of *accepted*
  transactions is bounded by queue-capacity x signing-cost plus two
  confirmation blocks.
"""

from __future__ import annotations

from collections import deque

from ..chain import Transaction
from ..config import ParityConfig, parity_config
from ..consensus.poa import ProofOfAuthority
from ..crypto.hashing import Hash
from ..crypto.trie import StateTrie
from ..errors import StorageError
from ..registry import register_platform
from ..sim import Message, Network, RngRegistry, Scheduler
from ..storage import MemKVStore
from .base import TX_GOSSIP, JournaledState, PlatformNode

SIGN_REQ = "parity/sign-req"


class ParityState(JournaledState):
    """Patricia trie whose nodes live entirely in process memory.

    ``memory_cap_bytes`` reproduces the paper's Figure 12 finding that
    Parity "holds all the state information in memory ... but fails to
    handle large data": exceeding the cap raises an out-of-memory
    StorageError, surfaced as the 'X' cells. The journaled overlay is
    process memory too, so uncommitted writes count against the cap at
    ``put`` time (key + value payload bytes); the trie nodes the
    commit-time flush materializes are charged by the backing
    :class:`MemKVStore` itself.
    """

    def __init__(self, memory_cap_bytes: int | None = None) -> None:
        super().__init__()
        self._store = MemKVStore(memory_cap_bytes=memory_cap_bytes)
        self.trie = StateTrie(self._store)
        self._snapshots: dict[int, int] = {}
        self._overlay_bytes = 0

    def put(self, key: bytes, value: bytes) -> None:
        # Net accounting: an overwrite of a journaled key replaces its
        # contribution (the overlay is last-write-wins — K rewrites of
        # a hot SmallBank key occupy one entry, not K).
        old = self._overlay.get(key)
        if old is not None:
            self._overlay_bytes -= len(key) + len(old)
        super().put(key, value)
        self._overlay_bytes += len(key) + len(value)
        cap = self._store.memory_cap_bytes
        if cap is not None:
            total = self._store.approx_bytes() + self._overlay_bytes
            if total > cap:
                raise StorageError(
                    f"out of memory: {total} bytes (committed state + "
                    f"journaled writes) exceeds cap {cap} "
                    "(Parity-style in-memory state)"
                )

    def delete(self, key: bytes) -> None:
        old = self._overlay.get(key)
        if old is not None:
            self._overlay_bytes -= len(key) + len(old)
        super().delete(key)

    def _backing_get(self, key: bytes) -> bytes | None:
        return self.trie.get(key)

    def _flush(self, items) -> None:
        self.trie.update(items)
        self._overlay_bytes = 0

    def _seal(self, height: int) -> Hash:
        self._snapshots[height] = self.trie.snapshot()
        return self.trie.root_hash()

    def pre_state_root(self) -> Hash:
        return self.trie.root_hash()

    def get_at(self, height: int, key: bytes) -> bytes | None:
        snapshot = self._snapshots.get(height)
        if snapshot is None:
            candidates = [h for h in self._snapshots if h <= height]
            if not candidates:
                return None
            snapshot = self._snapshots[max(candidates)]
        return self.trie.get_at(snapshot, key)

    def memory_bytes(self) -> int:
        return self._store.approx_bytes() + self._overlay_bytes


class ParityNode(PlatformNode):
    """Parity authority node with the signing-stage bottleneck."""

    def __init__(
        self,
        node_id: str,
        scheduler: Scheduler,
        network: Network,
        rng_registry: RngRegistry,
        config: ParityConfig | None = None,
        authorities: list[str] | None = None,
        signer_id: str | None = None,
    ) -> None:
        config = config or parity_config()
        super().__init__(
            node_id,
            scheduler,
            network,
            rng_registry,
            config,
            ParityState(config.memory_cap_bytes),
        )
        self.parity_config = config
        self.authorities = authorities or [node_id]
        self.signer_id = signer_id or self.authorities[0]
        self.attach_protocol(
            ProofOfAuthority(self, config.poa, authorities=self.authorities)
        )
        # Signing stage (active only on the signer node).
        self._sign_queue: deque[dict] = deque()
        self._signing_busy = False
        self.signed_count = 0
        self.rejected_sign_queue_full = 0
        # Intake throttle (token bucket).
        self._tokens = 8.0
        self._tokens_updated = 0.0

    def start(self) -> None:
        self.protocol.start()

    def _fresh_state(self) -> ParityState:
        """Empty in-memory trie for cold recovery."""
        return ParityState(self.parity_config.memory_cap_bytes)

    def crash(self) -> None:
        """The signing queue and its busy flag are process state."""
        super().crash()
        self._sign_queue.clear()
        self._signing_busy = False

    def recover(self, mode: str = "warm") -> None:
        """Restart resets the intake bucket to its boot credit — a
        recovered process must not inherit a huge refill window."""
        if self.crashed:
            self._tokens = 8.0
            self._tokens_updated = self.now
        super().recover(mode)

    # ------------------------------------------------------------------
    # Intake throttle
    # ------------------------------------------------------------------
    def _take_token(self) -> bool:
        rate = self.parity_config.intake_rate_tx_s
        elapsed = self.now - self._tokens_updated
        self._tokens = min(16.0, self._tokens + elapsed * rate)
        self._tokens_updated = self.now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    # ------------------------------------------------------------------
    # Admission: throttle -> forward to the signer
    # ------------------------------------------------------------------
    def _on_send_tx(self, message: Message) -> None:
        request = message.payload
        tx: Transaction = request["tx"]
        if self._dup_reply(message, tx):
            return
        if not self._take_token():
            self.rejected_submissions += 1
            self._reply(message, {"accepted": False, "tx_id": tx.tx_id})
            return
        item = {"tx": tx, "client": message.sender, "req_id": request.get("req_id")}
        if self.node_id == self.signer_id:
            self._enqueue_signing(item)
        else:
            self.send(self.signer_id, SIGN_REQ, item, tx.size_bytes() + 64)

    def message_cost(self, message: Message) -> float:
        if message.kind == SIGN_REQ:
            return self.config.execution.tx_ingress_cost_s
        return super().message_cost(message)

    def handle_message(self, message: Message) -> None:
        if message.kind == SIGN_REQ and not message.corrupted:
            self._enqueue_signing(message.payload)
            return
        super().handle_message(message)

    # ------------------------------------------------------------------
    # The signing stage
    # ------------------------------------------------------------------
    def _enqueue_signing(self, item: dict) -> None:
        if len(self._sign_queue) >= self.parity_config.signing_queue_capacity:
            self.rejected_sign_queue_full += 1
            self._reject_to_client(item)
            return
        self._sign_queue.append(item)
        if not self._signing_busy:
            self._sign_next()

    def _reject_to_client(self, item: dict) -> None:
        self.send(
            item["client"],
            "rpc/reply",
            {"accepted": False, "tx_id": item["tx"].tx_id, "req_id": item["req_id"]},
            128,
        )

    def _sign_next(self) -> None:
        if self.crashed or not self._sign_queue:
            self._signing_busy = False
            return
        self._signing_busy = True
        item = self._sign_queue.popleft()
        cost = self.parity_config.signing_cost_s
        self.consume_cpu(cost)
        self.set_timer(cost, self._finish_signing, item)

    def _finish_signing(self, item: dict) -> None:
        tx: Transaction = item["tx"]
        self.signed_count += 1
        accepted = self.mempool.add(tx, self.now)
        if accepted:
            for peer in self.peers:
                self.network.send(self.node_id, peer, TX_GOSSIP, tx, tx.size_bytes())
            if self.protocol is not None:
                self.protocol.on_new_pending_tx()
        reply = {"accepted": accepted, "tx_id": tx.tx_id, "req_id": item["req_id"]}
        if not accepted and (tx.tx_id in self.receipts or tx.tx_id in self.mempool):
            reply["dup"] = True
        self.send(item["client"], "rpc/reply", reply, 128)
        self._sign_next()

    # ------------------------------------------------------------------
    def _execute_block(self, block) -> None:
        try:
            super()._execute_block(block)
        except StorageError as exc:
            # In-memory state exhausted: the node dies (Figure 12's 'X').
            self.crash()
            raise


@register_platform(
    "parity",
    default_config=parity_config,
    description="Parity v1.6.0: PoA with a single round-robin signer",
)
def build_parity_node(
    node_id: str,
    scheduler: Scheduler,
    network: Network,
    rng: RngRegistry,
    config: ParityConfig,
    all_ids: list[str],
    storage_dir=None,
) -> ParityNode:
    """Node factory used by ``build_cluster`` (see ``repro.registry``)."""
    return ParityNode(
        node_id,
        scheduler,
        network,
        rng,
        config,
        authorities=all_ids,
        signer_id=all_ids[0],
    )
