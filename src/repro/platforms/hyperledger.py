"""Hyperledger Fabric platform (v0.6.0-preview analogue).

Composition per the paper: PBFT consensus with batch size 500, chain
state in a Bucket-Merkle tree persisted through a RocksDB-preset LSM
store, and chaincode executed natively (the Docker execution model —
"the smart contract is compiled and runs directly on the native
machine", Section 4.2.1), which is why its execution cost factor is the
smallest of the three platforms.

The node inherits the bounded inbox from its config: transaction
gossip, PBFT control traffic, and client RPCs all share that channel,
so a saturating load starves consensus of prepares and commits — the
paper's >16-node collapse (Section 4.1.2).
"""

from __future__ import annotations

from pathlib import Path

from ..config import HyperledgerConfig, hyperledger_config
from ..consensus.pbft import PBFT
from ..crypto.bucket_tree import BucketTree
from ..crypto.hashing import Hash
from ..registry import register_platform
from ..sim import Network, RngRegistry, Scheduler
from ..storage import LSMStore, rocksdb_config
from .base import JournaledState, PlatformNode

#: Fabric v0.6's default bucket-tree size class.
N_BUCKETS = 1024


class HyperledgerState(JournaledState):
    """Bucket-Merkle tree over RocksDB (or memory for macro runs).

    No historical state queries: "the system does not have APIs to
    query historical states" (Section 3.4.2) — ``get_at`` raises, and
    the analytics workload must use the VersionKVStore chaincode
    instead, exactly as in the paper.

    Intra-block writes buffer in the journaled overlay; the commit
    flushes the net write-set through the bucket tree (marking each
    dirty bucket once) and the LSM store in one sorted pass — Fabric's
    own per-block state-delta write batch.
    """

    def __init__(self, storage_dir: str | Path | None = None) -> None:
        super().__init__()
        self.tree = BucketTree(n_buckets=N_BUCKETS)
        self._store: LSMStore | None = None
        if storage_dir is not None:
            self._store = LSMStore(Path(storage_dir), rocksdb_config())

    def _backing_get(self, key: bytes) -> bytes | None:
        if self._store is not None:
            return self._store.get(key)
        return self.tree.get(key)

    def _flush(self, items) -> None:
        self.tree.update(items)
        if self._store is not None:
            for key, value in items:
                if value is None:
                    self._store.delete(key)
                else:
                    self._store.put(key, value)

    def _seal(self, height: int) -> Hash:
        return self.tree.root_hash()

    def pre_state_root(self) -> Hash:
        return self.tree.root_hash()

    def disk_usage_bytes(self) -> int:
        return self._store.disk_usage_bytes() if self._store is not None else 0

    def close(self) -> None:
        if self._store is not None:
            self._store.close()


class HyperledgerNode(PlatformNode):
    """Fabric v0.6 validating peer."""

    def __init__(
        self,
        node_id: str,
        scheduler: Scheduler,
        network: Network,
        rng_registry: RngRegistry,
        config: HyperledgerConfig | None = None,
        replicas: list[str] | None = None,
        storage_dir: str | Path | None = None,
    ) -> None:
        config = config or hyperledger_config()
        super().__init__(
            node_id,
            scheduler,
            network,
            rng_registry,
            config,
            HyperledgerState(storage_dir),
        )
        self.hlf_config = config
        self._storage_dir = storage_dir
        self._recovery_epoch = 0
        self.attach_protocol(
            PBFT(self, config.pbft, replicas=replicas or [node_id])
        )

    def start(self) -> None:
        self.protocol.start()

    def _fresh_state(self) -> HyperledgerState:
        """Empty bucket tree for cold recovery (fresh LSM directory for
        disk-backed nodes; see EthereumNode._fresh_state)."""
        path = self._storage_dir
        if path is not None:
            self._recovery_epoch += 1
            path = Path(path) / f"recovery-{self._recovery_epoch}"
        return HyperledgerState(path)


@register_platform(
    "hyperledger",
    default_config=hyperledger_config,
    description="Hyperledger Fabric v0.6: PBFT over a bucket-Merkle tree",
)
def build_hyperledger_node(
    node_id: str,
    scheduler: Scheduler,
    network: Network,
    rng: RngRegistry,
    config: HyperledgerConfig,
    all_ids: list[str],
    storage_dir: Path | None,
) -> HyperledgerNode:
    """Node factory used by ``build_cluster`` (see ``repro.registry``)."""
    return HyperledgerNode(
        node_id,
        scheduler,
        network,
        rng,
        config,
        replicas=all_ids,
        storage_dir=storage_dir,
    )
