"""Blockchain platforms: Ethereum (PoW), Parity (PoA), Hyperledger
(PBFT), ErisDB (Tendermint).

Each platform module registers a node factory with
:data:`repro.registry.PLATFORMS` at import time; ``build_cluster``
resolves platforms through that registry, so external backends can add
themselves with :func:`repro.registry.register_platform` and every
entry point (CLI, scenario files, ``run_experiment``) picks them up.
"""

from ..registry import PLATFORMS
from .base import ExecutionCache, JournaledState, PlatformNode, PlatformState
from .cluster import DEFAULT_CONTRACTS, Cluster, build_cluster
from .erisdb import ErisDBNode, ErisDBState
from .ethereum import EthereumNode, EthereumState
from .hyperledger import HyperledgerNode, HyperledgerState
from .parity import ParityNode, ParityState


def available_platforms() -> list[str]:
    """Names of every registered platform backend."""
    return PLATFORMS.names()


__all__ = [
    "ExecutionCache",
    "JournaledState",
    "PlatformNode",
    "PlatformState",
    "DEFAULT_CONTRACTS",
    "Cluster",
    "build_cluster",
    "available_platforms",
    "ErisDBNode",
    "ErisDBState",
    "EthereumNode",
    "EthereumState",
    "HyperledgerNode",
    "HyperledgerState",
    "ParityNode",
    "ParityState",
]
