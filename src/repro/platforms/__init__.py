"""Blockchain platforms: Ethereum (PoW), Parity (PoA), Hyperledger
(PBFT), ErisDB (Tendermint)."""

from .base import PlatformNode, PlatformState
from .cluster import DEFAULT_CONTRACTS, Cluster, build_cluster
from .erisdb import ErisDBNode, ErisDBState
from .ethereum import EthereumNode, EthereumState
from .hyperledger import HyperledgerNode, HyperledgerState
from .parity import ParityNode, ParityState

__all__ = [
    "PlatformNode",
    "PlatformState",
    "DEFAULT_CONTRACTS",
    "Cluster",
    "build_cluster",
    "ErisDBNode",
    "ErisDBState",
    "EthereumNode",
    "EthereumState",
    "HyperledgerNode",
    "HyperledgerState",
    "ParityNode",
    "ParityState",
]
