"""Platform node base: the full blockchain software stack of Figure 1.

A :class:`PlatformNode` is one server in the private testnet. It wires
together every layer the paper identifies:

* **consensus** — a :class:`~repro.consensus.base.ConsensusProtocol`
  attached after construction (PoW / PoA / PBFT);
* **data model** — a :class:`PlatformState` (Patricia trie or bucket
  tree over a storage backend) committed once per executed block;
* **execution** — the Table-1 contracts, invoked natively with gas
  metering; gas converts to CPU seconds through the platform's
  execution-cost model, and that CPU time *occupies the node* (via
  ``defer_cost``), which is what lets execution back-pressure the
  message channel;
* **application interface** — a JSON-RPC-like message protocol used by
  BLOCKBENCH clients: ``rpc/send_tx``, ``rpc/get_blocks`` (the driver's
  ``getLatestBlock(h)``), ``rpc/get_block_txs``, ``rpc/get_balance``
  and read-only ``rpc/query``.

Blocks are *executed at confirmation* (immediately for PBFT, after the
confirmation depth for PoW/PoA), so state never needs to be unwound on
the shallow reorgs PoW naturally produces.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from dataclasses import dataclass

from ..chain import Block, Blockchain, Mempool, Receipt, Transaction
from ..config import PlatformConfig
from ..consensus.base import ConsensusProtocol
from ..contracts import Contract, TxContext, create_contract
from ..crypto.hashing import EMPTY_HASH, Hash
from ..errors import ConnectorError, ContractRevert, ExecutionError
from ..sim import Message, Network, RngRegistry, Scheduler, SimNode
from ..util.lru import LRUCache

TX_GOSSIP = "tx/gossip"
RPC_SEND_TX = "rpc/send_tx"
RPC_GET_BLOCKS = "rpc/get_blocks"
RPC_GET_BLOCK_TXS = "rpc/get_block_txs"
RPC_GET_BALANCE = "rpc/get_balance"
RPC_QUERY = "rpc/query"
RPC_REPLY = "rpc/reply"

#: Block-sync protocol (crash recovery): a recovering node requests
#: missing block ranges from live peers; peers answer with batches of
#: full blocks. The messages ride the normal network (real
#: ``size_bytes``) and peer CPU (per-transaction verification), so
#: catch-up traffic contends with live consensus traffic.
SYNC_REQUEST = "sync/request"
SYNC_BLOCKS = "sync/blocks"
#: Blocks served per sync response (mirrors the gossip fetcher's batch).
SYNC_BATCH = 32
#: Seconds a recovering node waits for a sync response before asking
#: the next peer (covers peers that crashed or sit behind a partition).
SYNC_RETRY_S = 1.0
#: Recovery modes: ``warm`` keeps the executed state and syncs only the
#: missed suffix; ``cold`` wipes the state store and replays the whole
#: chain through the execution path before syncing.
RECOVERY_MODES = ("warm", "cold")


#: One net write per key: ``(key, value)`` with ``value=None`` a delete.
WriteSet = tuple[tuple[bytes, "bytes | None"], ...]


class PlatformState(ABC):
    """State layer: key-value facade plus per-block commitment."""

    @abstractmethod
    def get(self, key: bytes) -> bytes | None:
        """Read one key from the current state."""

    @abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Write one key into the current (uncommitted) state."""

    @abstractmethod
    def delete(self, key: bytes) -> None:
        """Remove one key from the current state."""

    @abstractmethod
    def commit_block(self, height: int) -> Hash:
        """Seal the state for one block; returns the state root."""

    def get_at(self, height: int, key: bytes) -> bytes | None:
        """Historical read at a block height; not every platform can."""
        raise ConnectorError(
            f"{type(self).__name__} does not support historical state queries"
        )

    def pre_state_root(self) -> Hash | None:
        """Root of the last *committed* state, or None when the state
        cannot name one — returning None opts the platform out of
        cross-replica execution memoization (see
        :class:`ExecutionCache`)."""
        return None

    def pending_writes(self) -> "WriteSet | None":
        """The net uncommitted write-set (sorted), or None when the
        state does not journal writes — returning None opts out of
        execution memoization the same way ``pre_state_root`` does."""
        return None

    def apply_write_set(self, items: "WriteSet") -> None:
        """Install a recorded write-set (replica replay path). Only
        reachable on states whose ``pending_writes`` produced the
        entry, so the base implementation is deliberately absent."""
        raise ConnectorError(
            f"{type(self).__name__} does not journal writes; "
            "nothing can have recorded a write-set to replay"
        )

    def close(self) -> None:
        """Release storage resources."""


class JournaledState(PlatformState):
    """Write-buffering state base: the block-commit fast path.

    All intra-block writes land in an in-memory overlay dict with
    last-write-wins semantics; reads are read-your-writes (overlay
    first, committed backing second). ``commit_block`` flushes the
    *net* write-set once, in deterministic sorted key order, through
    the platform's batched tree update — so K writes to a hot
    SmallBank/YCSB key cost one path rewrite at commit instead of K
    full leaf-to-root rewrites. Only the once-per-block commit root is
    observable, so the state roots (and every stat derived from them)
    are byte-identical to unbuffered writes.

    Subclasses implement the three hooks: ``_backing_get`` (committed
    read), ``_flush`` (apply one sorted net write-set to the tree), and
    ``_seal`` (record the per-height root and return it).
    """

    def __init__(self) -> None:
        #: key -> value, with None recording an uncommitted delete.
        self._overlay: dict[bytes, bytes | None] = {}
        #: Memoized sorted write-set; invalidated by every write so
        #: the cache-store path and commit_block share one sort.
        self._pending: WriteSet | None = None

    def get(self, key: bytes) -> bytes | None:
        overlay = self._overlay
        if key in overlay:
            return overlay[key]
        return self._backing_get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self._overlay[key] = value
        self._pending = None

    def delete(self, key: bytes) -> None:
        self._overlay[key] = None
        self._pending = None

    def pending_writes(self) -> WriteSet:
        """The net uncommitted write-set, sorted by key."""
        if self._pending is None:
            self._pending = tuple(sorted(self._overlay.items()))
        return self._pending

    def apply_write_set(self, items: WriteSet) -> None:
        """Install a recorded write-set into the overlay (replica
        replay path of :class:`ExecutionCache`). Routed through
        ``put``/``delete`` so subclass accounting (Parity's memory cap)
        sees every write."""
        for key, value in items:
            if value is None:
                self.delete(key)
            else:
                self.put(key, value)

    def commit_block(self, height: int) -> Hash:
        items = self.pending_writes()
        if items:
            self._flush(items)
            self._overlay.clear()
            self._pending = None
        return self._seal(height)

    @abstractmethod
    def _backing_get(self, key: bytes) -> bytes | None:
        """Read one key from the committed backing state."""

    @abstractmethod
    def _flush(self, items: WriteSet) -> None:
        """Apply one sorted net write-set to the backing tree."""

    @abstractmethod
    def _seal(self, height: int) -> Hash:
        """Record the committed root for ``height`` and return it."""


class _NamespacedState:
    """StateAccess wrapper isolating one contract's keys.

    Hyperledger's chaincodes "can only access its private storage and
    they are isolated from each other" (Section 3.1.2); Ethereum gives
    each contract its own storage trie. A per-contract key prefix
    models both.
    """

    __slots__ = ("_state", "_prefix")

    def __init__(self, state: PlatformState, contract_name: str) -> None:
        self._state = state
        self._prefix = contract_name.encode() + b"/"

    def get_state(self, key: bytes) -> bytes | None:
        return self._state.get(self._prefix + key)

    def put_state(self, key: bytes, value: bytes) -> None:
        self._state.put(self._prefix + key, value)

    def delete_state(self, key: bytes) -> None:
        self._state.delete(self._prefix + key)


@dataclass(frozen=True)
class CachedExecution:
    """Time-independent outcome of executing one block once.

    ``receipts`` holds ``(tx_id, success, gas_used, output, error)``
    per transaction, in block order; the replica replaying the entry
    stamps its own ``committed_at`` (local simulated time) when it
    materializes real :class:`~repro.chain.Receipt` objects, so the
    simulated timeline is untouched — only the redundant Python-level
    contract execution is skipped.

    ``levels`` is the dependency-level schedule captured by the
    parallel execution path (``exec_workers > 1``), or ``None`` when
    the block was executed serially. It is a pure function of the
    block's data hazards — never of the executing replica's worker
    count — so one entry serves replicas with any ``exec_workers``
    setting: each replayer recomputes its own makespan from the shared
    levels. ``write_set`` and ``receipts`` are identical whichever
    path produced them; tests pin this.
    """

    write_set: WriteSet
    receipts: tuple[tuple[str, bool, int, Any, str], ...]
    levels: tuple[int, ...] | None = None


class ExecutionCache:
    """Cross-replica execution memoization, shared by one cluster.

    The simulation is deterministic: replicas 2..N executing the same
    block from the same pre-state root must produce identical write
    sets and receipts. Only the first replica runs the contracts; the
    rest replay the recorded net write-set into their own overlay and
    commit — byte-identical roots, a fraction of the CPU. Keyed by
    ``(pre_state_root, block_hash)``: PoW forks execute different
    blocks at one height and hit different keys, so divergent branches
    can never cross-contaminate. Toggleable via the platform config's
    ``execution_cache`` knob (default on).
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._entries: LRUCache[tuple[Hash, Hash], CachedExecution] = (
            LRUCache(capacity)
        )

    @property
    def hits(self) -> int:
        return self._entries.hits

    @property
    def misses(self) -> int:
        return self._entries.misses

    def lookup(
        self, pre_state_root: Hash, block_hash: Hash
    ) -> CachedExecution | None:
        return self._entries.get((pre_state_root, block_hash))

    def store(
        self,
        pre_state_root: Hash,
        block_hash: Hash,
        entry: CachedExecution,
    ) -> None:
        self._entries.put((pre_state_root, block_hash), entry)


class PlatformNode(SimNode):
    """One server of a private blockchain deployment."""

    #: Whether the platform offers the publish/subscribe block feed the
    #: paper attributes to ErisDB (Section 3.2). Polling via
    #: ``rpc/get_blocks`` works everywhere.
    supports_subscription = False

    def __init__(
        self,
        node_id: str,
        scheduler: Scheduler,
        network: Network,
        rng_registry: RngRegistry,
        config: PlatformConfig,
        state: PlatformState,
        chain_id: str = "testnet",
    ) -> None:
        super().__init__(
            node_id, scheduler, network, inbox_capacity=config.inbox_capacity
        )
        self.config = config
        self.state = state
        #: Cluster-shared execution memoization; attached by
        #: ``build_cluster`` when the platform config enables it.
        self.execution_cache: ExecutionCache | None = None
        self._rng = rng_registry.stream(node_id)
        self._chain = Blockchain(chain_id)
        self.mempool = Mempool(config.mempool_capacity)
        self.protocol: ConsensusProtocol | None = None
        self.peers: list[str] = []
        self.contracts: dict[str, Contract] = {}
        self.receipts: dict[str, Receipt] = {}
        self.executed_height = 0
        self._height_roots: dict[int, Hash] = {}
        #: Which block this node executed at each height. On PoW a deep
        #: reorg can later replace a height with a different block; the
        #: mismatch count is exactly the double-spend exposure a
        #: depth-d client had (used by the confirmation-depth ablation).
        self.executed_block_hashes: dict[int, Hash] = {}
        #: Cluster-wide safety auditor (attached by build_cluster);
        #: sees every block this node finalizes.
        self.auditor = None
        #: Cluster-wide lifecycle tracer (attached by build_cluster);
        #: stamps propose/decide/execute/commit for every transaction.
        self.tracer = None
        # Statistics.
        self.committed_tx_count = 0
        self.failed_tx_count = 0
        self.corrupted_dropped = 0
        self.rejected_submissions = 0
        # Crash-recovery state and counters.
        self._recovering = False
        self._recovery_started_at = 0.0
        self._sync_serial = 0
        self._sync_peer_index = 0
        self._sync_view_hint = 0
        #: One entry per completed crash/recover cycle: simulated
        #: seconds from restart to caught-up-and-voting.
        self.recovery_times: list[float] = []
        # Pre-run (genesis) writes, re-applied by cold recovery: they
        # live in no block, so a wiped state cannot replay them.
        self._genesis_writes: list[tuple[bytes, bytes]] = []
        self._genesis_sealed = False
        self.sync_requests_sent = 0
        self.sync_blocks_received = 0
        self.sync_bytes_received = 0
        self.sync_blocks_served = 0
        self.sync_bytes_served = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_protocol(self, protocol: ConsensusProtocol) -> None:
        """Wire the consensus protocol driving this node."""
        self.protocol = protocol

    def set_peers(self, peer_ids: list[str]) -> None:
        """Install the deployment's node list (self excluded)."""
        self.peers = [p for p in peer_ids if p != self.node_id]

    def deploy(self, contract_name: str) -> None:
        """Install a Table-1 contract (idempotent)."""
        if contract_name not in self.contracts:
            self.contracts[contract_name] = create_contract(contract_name)

    def attach_execution_cache(self, cache: ExecutionCache | None) -> None:
        """Share one cluster-wide :class:`ExecutionCache` with this node."""
        self.execution_cache = cache

    def attach_auditor(self, auditor) -> None:
        """Subscribe a cluster-wide safety auditor to this node's commits."""
        self.auditor = auditor

    def attach_tracer(self, tracer) -> None:
        """Share one cluster-wide :class:`StageTracer` with this node.

        The mempool gets its own reference because admission happens
        inside ``Mempool.add`` (the only point common to direct
        ingress, Parity's signing queue, and gossip).
        """
        self.tracer = tracer
        self.mempool.tracer = tracer

    # ------------------------------------------------------------------
    # ConsensusHost interface
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (ConsensusHost)."""
        return self.scheduler.now

    def send_to(self, recipient: str, kind: str, payload: Any, size_bytes: int) -> None:
        """Point-to-point consensus message (ConsensusHost)."""
        self.send(recipient, kind, payload, size_bytes)

    def broadcast_to_peers(self, kind: str, payload: Any, size_bytes: int) -> None:
        """Broadcast a consensus message to every peer (ConsensusHost)."""
        if self.crashed:
            return
        for peer in self.peers:
            self.network.send(self.node_id, peer, kind, payload, size_bytes)

    def peer_ids(self) -> list[str]:
        """Peer node ids (ConsensusHost)."""
        return list(self.peers)

    def rng(self):
        """This node's deterministic random stream (ConsensusHost)."""
        return self._rng

    def chain(self) -> Blockchain:
        """The local blockchain copy (ConsensusHost)."""
        return self._chain

    def pending_count(self) -> int:
        """Mempool size (ConsensusHost)."""
        return len(self.mempool)

    def oldest_request_age(self) -> float:
        """Age of the oldest pending transaction (ConsensusHost)."""
        return self.mempool.oldest_pending_age(self.now)

    def assemble_block(
        self, parent: Block, consensus_meta: dict[str, Any], max_txs: int | None
    ) -> Block:
        limit = max_txs if max_txs is not None else 10_000
        gas_limit = self.config.block_gas_limit
        txs = self.mempool.peek_batch(
            limit,
            gas_budget=gas_limit,
            gas_estimate=self.gas_estimate if gas_limit else None,
        )
        if self.tracer is not None and txs:
            self.tracer.record_propose([tx.tx_id for tx in txs], self.now)
        return Block.build(
            height=parent.height + 1,
            parent_hash=parent.hash,
            transactions=txs,
            state_root=EMPTY_HASH,
            proposer=self.node_id,
            timestamp=self.now,
            consensus_meta=consensus_meta,
        )

    def deliver_block(self, block: Block, execute: bool = True) -> bool:
        """Append a decided block; executes it once confirmed."""
        known = self._chain.contains(block.hash)
        changed = self._chain.add_block(block)
        if not known and self._chain.contains(block.hash):
            self.mempool.remove(tx.tx_id for tx in block.transactions)
        if execute:
            self._advance_execution()
        return changed

    def gas_estimate(self, tx: Transaction) -> int:
        """Rough per-transaction gas used for block packing."""
        return 26_000

    # ------------------------------------------------------------------
    # Execution (at confirmation)
    # ------------------------------------------------------------------
    def confirmed_height(self) -> int:
        """Highest height the protocol treats as final."""
        if self.protocol is None:
            return 0
        return self.protocol.confirmed_height()

    def _advance_execution(self) -> None:
        target = min(self.confirmed_height(), self._chain.height)
        while self.executed_height < target:
            block = self._chain.block_by_height(self.executed_height + 1)
            if block is None:
                break
            self._execute_block(block)
            self.executed_height = block.height

    def _execute_block(self, block: Block) -> None:
        tracer = self.tracer
        tx_ids = None
        if tracer is not None and block.transactions:
            # The first replica to reach this point stamps the decide
            # time for the whole cluster (later replicas are no-ops).
            tx_ids = [tx.tx_id for tx in block.transactions]
            tracer.record_decide(tx_ids, self.now)
        cache = self.execution_cache
        pre_root: Hash | None = None
        entry: CachedExecution | None = None
        if cache is not None:
            pre_root = self.state.pre_state_root()
            if pre_root is not None:
                entry = cache.lookup(pre_root, block.hash)
        workers = self.config.exec_workers
        levels: tuple[int, ...] | None = None
        if entry is not None:
            # Another replica already executed this exact block from
            # this exact pre-state: replay its net write-set into our
            # overlay and materialize receipts from the recorded
            # time-independent fields. Simulated CPU is still charged
            # below — only the redundant Python work is skipped.
            self.state.apply_write_set(entry.write_set)
            levels = entry.levels
            receipts = [
                Receipt(
                    tx_id=tx_id,
                    block_height=block.height,
                    success=success,
                    gas_used=gas_used,
                    output=output,
                    error=error,
                    committed_at=self.now,
                )
                for tx_id, success, gas_used, output, error in entry.receipts
            ]
        else:
            if workers > 1:
                receipts, levels = self._execute_block_parallel(block)
            else:
                receipts = [
                    self._execute_tx(tx, block) for tx in block.transactions
                ]
            if cache is not None and pre_root is not None:
                write_set = self.state.pending_writes()
                if write_set is not None:
                    cache.store(
                        pre_root,
                        block.hash,
                        CachedExecution(
                            write_set=write_set,
                            receipts=tuple(
                                (r.tx_id, r.success, r.gas_used, r.output,
                                 r.error)
                                for r in receipts
                            ),
                            levels=levels,
                        ),
                    )
        seconds = 0.0
        costs = self.config.execution
        durations = [] if workers > 1 and levels is not None else None
        for receipt in receipts:
            self.receipts[receipt.tx_id] = receipt
            # Signature verification was already charged when the block
            # arrived (message_cost); only execution is charged here.
            cost = receipt.gas_used * costs.seconds_per_gas
            seconds += cost
            if durations is not None:
                durations.append(cost)
            if receipt.success:
                self.committed_tx_count += 1
            else:
                self.failed_tx_count += 1
        if durations is not None:
            # Charge the dependency-schedule makespan instead of the
            # serial sum: non-conflicting transactions overlap on the
            # modeled execution workers. Replays of a serially-executed
            # cache entry carry no levels and fall back to the serial
            # sum above — conservative, and impossible in a uniformly
            # configured cluster.
            from ..core.txsched import level_makespan

            seconds = level_makespan(durations, levels, workers)
        root = self.state.commit_block(block.height)
        self._height_roots[block.height] = root
        self.executed_block_hashes[block.height] = block.hash
        if self.auditor is not None:
            self.auditor.record_commit(self.node_id, block, self.now)
        if tx_ids is not None:
            # Execution completes once the charged CPU below has been
            # paid; stamping at now + seconds attributes that cost to
            # the execution interval instead of hiding it in result
            # propagation. The state commit itself carries no separate
            # charge in the cost model, so commit == execute.
            done = self.now + seconds
            tracer.record_execute(tx_ids, done)
            tracer.record_commit(tx_ids, done)
        self._charge(seconds)

    def _execute_block_parallel(self, block: Block):
        """Capture-and-schedule execution (``exec_workers > 1``).

        Each transaction runs against a :class:`TxView` whose reads
        fall through to the block state — the pre-state plus every
        earlier transaction's merged writes, exactly what serial
        execution would show it — and whose writes stay buffered until
        the view merges in block order (last writer wins, so the block
        overlay ends byte-identical to the serial path). The captured
        read/write sets feed the dependency scheduler; the returned
        levels drive the makespan charge and ride along in the
        :class:`ExecutionCache` entry.

        The serial path (``exec_workers=1``) deliberately bypasses all
        of this: it must stay byte-for-byte the pre-existing code,
        including the order floating-point durations are summed in.
        """
        from ..core.txsched import TxView, dependency_levels

        state = self.state
        receipts = []
        accesses = []
        for tx in block.transactions:
            view = TxView(state)
            receipts.append(self._execute_tx(tx, block, state=view))
            accesses.append(view.access_sets())
            # Merge even after a revert: partial writes made before the
            # revert persisted on the serial path (the facade wrote
            # straight through), so they must persist here too.
            view.merge_into(state)
        return receipts, dependency_levels(accesses)

    def _execute_tx(
        self,
        tx: Transaction,
        block: Block,
        state: "PlatformState | None" = None,
    ) -> Receipt:
        height = block.height
        contract = self.contracts.get(tx.contract)
        if contract is None:
            return Receipt(
                tx_id=tx.tx_id,
                block_height=height,
                success=False,
                error=f"contract {tx.contract!r} not deployed",
                committed_at=self.now,
            )
        facade = _NamespacedState(
            self.state if state is None else state, tx.contract
        )
        # The block's timestamp (the proposer's clock when it sealed
        # the block), not this replica's local time: every replica must
        # execute a block identically for replicated state to converge
        # — exactly Ethereum's TIMESTAMP-opcode semantics, and the
        # property the ExecutionCache relies on.
        ctx = TxContext(
            sender=tx.sender,
            value=tx.value,
            block_height=height,
            timestamp=block.header.timestamp,
        )
        try:
            result = contract.invoke(facade, tx.function, tx.args, ctx)
        except ContractRevert as exc:
            return Receipt(
                tx_id=tx.tx_id,
                block_height=height,
                success=False,
                gas_used=21_000,
                error=str(exc),
                committed_at=self.now,
            )
        return Receipt(
            tx_id=tx.tx_id,
            block_height=height,
            success=True,
            gas_used=result.gas_used,
            output=result.output,
            committed_at=self.now,
        )

    def _charge(self, seconds: float) -> None:
        """Charge CPU so heavy work occupies the node."""
        if self._processing:
            self.defer_cost(seconds)
        else:
            self.consume_cpu(seconds)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def message_cost(self, message: Message) -> float:
        """CPU price of handling one message, per the platform's cost
        model (gossip, ingress, consensus verification, RPC)."""
        costs = self.config.execution
        kind = message.kind
        if kind == TX_GOSSIP:
            return costs.tx_gossip_cost_s
        if kind == RPC_SEND_TX:
            return costs.tx_ingress_cost_s
        if kind == "pbft/pre-prepare":
            block: Block = message.payload
            return costs.consensus_msg_cost_s + costs.verify_cost_s * len(
                block.transactions
            )
        if kind.startswith("pbft/") or kind.startswith("gossip/"):
            return costs.consensus_msg_cost_s
        if kind in ("pow/block", "poa/block"):
            block = message.payload
            return costs.consensus_msg_cost_s + costs.verify_cost_s * len(
                block.transactions
            )
        if kind == SYNC_BLOCKS:
            # Catch-up batches carry full blocks: the recovering node
            # re-verifies every transaction, so big batches occupy it.
            total_txs = sum(
                len(b.transactions) for b in message.payload["blocks"]
            )
            return costs.consensus_msg_cost_s + costs.verify_cost_s * total_txs
        if kind.startswith("rpc/"):
            return costs.rpc_cost_s
        return costs.consensus_msg_cost_s

    def handle_message(self, message: Message) -> None:
        """Route one message: RPC, gossip, or consensus."""
        if message.corrupted:
            self.corrupted_dropped += 1
            return
        kind = message.kind
        if kind == TX_GOSSIP:
            self._on_tx_gossip(message.payload)
        elif kind == RPC_SEND_TX:
            self._on_send_tx(message)
        elif kind == RPC_GET_BLOCKS:
            self._on_get_blocks(message)
        elif kind == RPC_GET_BLOCK_TXS:
            self._on_get_block_txs(message)
        elif kind == RPC_GET_BALANCE:
            self._on_get_balance(message)
        elif kind == RPC_QUERY:
            self._on_query(message)
        elif kind == SYNC_REQUEST:
            self._on_sync_request(message)
        elif kind == SYNC_BLOCKS:
            self._on_sync_blocks(message)
        elif self.protocol is not None and kind in self.protocol.message_kinds:
            self.protocol.on_message(kind, message.payload, message.sender)

    # -- transaction admission -------------------------------------------
    def _on_tx_gossip(self, tx: Transaction) -> None:
        if self.mempool.add(tx, self.now) and self.protocol is not None:
            self.protocol.on_new_pending_tx()

    def _dup_reply(self, message: Message, tx: Transaction) -> bool:
        """Answer a resubmission of an already-known transaction.

        A client that timed out and failed over to this node may resend
        a transaction its dead endpoint had already admitted (gossip got
        it here) or that even committed in the meantime. Re-pooling a
        committed transaction would execute it twice, so the dedup check
        runs before admission; the ``dup`` marker lets the failover
        client treat the reply as "already in flight" rather than a
        rejection to retry.
        """
        if tx.tx_id in self.receipts or tx.tx_id in self.mempool:
            self._reply(
                message, {"accepted": False, "tx_id": tx.tx_id, "dup": True}
            )
            return True
        return False

    def _on_send_tx(self, message: Message) -> None:
        """Default admission (Ethereum/Hyperledger): pool + gossip."""
        request = message.payload
        tx: Transaction = request["tx"]
        if self._dup_reply(message, tx):
            return
        accepted = self.mempool.add(tx, self.now)
        if accepted:
            for peer in self.peers:
                self.network.send(
                    self.node_id, peer, TX_GOSSIP, tx, tx.size_bytes()
                )
            # Serializing one copy per peer is sender-side CPU work that
            # grows with cluster size (O(N) per admitted transaction).
            self._charge(
                len(self.peers) * self.config.execution.tx_broadcast_send_cost_s
            )
            if self.protocol is not None:
                self.protocol.on_new_pending_tx()
        else:
            self.rejected_submissions += 1
        self._reply(message, {"accepted": accepted, "tx_id": tx.tx_id})

    # -- queries -----------------------------------------------------------
    def _on_get_blocks(self, message: Message) -> None:
        """The driver's getLatestBlock(h): confirmed blocks in (h, t]."""
        from_height = message.payload["from_height"]
        confirmed = min(self.confirmed_height(), self.executed_height)
        blocks = self._chain.blocks_in_range(from_height, confirmed)
        summaries = [
            {
                "height": b.height,
                "timestamp": b.header.timestamp,
                "tx_ids": [tx.tx_id for tx in b.transactions],
            }
            for b in blocks
        ]
        size = 64 + sum(32 + 40 * len(s["tx_ids"]) for s in summaries)
        self._reply(message, {"blocks": summaries, "tip": confirmed}, size)

    def _on_get_block_txs(self, message: Message) -> None:
        height = message.payload["height"]
        block = self._chain.block_by_height(height)
        txs = (
            [
                {
                    "tx_id": tx.tx_id,
                    "sender": tx.sender,
                    "contract": tx.contract,
                    "function": tx.function,
                    "args": tx.args,
                    "value": tx.value,
                }
                for tx in block.transactions
            ]
            if block is not None
            else []
        )
        self._reply(message, {"height": height, "txs": txs}, 64 + 150 * len(txs))

    def _on_get_balance(self, message: Message) -> None:
        payload = message.payload
        key = f"{payload['contract']}/".encode() + payload["key"]
        try:
            value = self.state.get_at(payload["height"], key)
            self._reply(message, {"value": value})
        except ConnectorError as exc:
            self._reply(message, {"error": str(exc)})

    def _on_query(self, message: Message) -> None:
        """Read-only contract invocation (no consensus round)."""
        payload = message.payload
        contract = self.contracts.get(payload["contract"])
        if contract is None:
            self._reply(message, {"error": f"no contract {payload['contract']}"})
            return
        facade = _NamespacedState(self.state, payload["contract"])
        try:
            result = contract.invoke(
                facade, payload["function"], tuple(payload.get("args", ()))
            )
        except (ContractRevert, ExecutionError) as exc:
            self._reply(message, {"error": str(exc)})
            return
        self._charge(result.gas_used * self.config.execution.seconds_per_gas)
        self._reply(message, {"output": result.output})

    def _reply(self, message: Message, payload: dict, size: int = 128) -> None:
        payload = dict(payload)
        payload["req_id"] = message.payload.get("req_id")
        self.send(message.sender, RPC_REPLY, payload, size)

    # ------------------------------------------------------------------
    # Crash recovery: restart, chain catch-up, consensus rejoin
    # ------------------------------------------------------------------
    def _fresh_state(self) -> PlatformState:
        """Build an empty replacement state store (cold recovery).

        Platform subclasses override this with their own state
        constructor; the base class cannot know which tree/backing the
        platform uses.
        """
        raise ConnectorError(
            f"{type(self).__name__} does not support cold recovery "
            "(no _fresh_state implementation)"
        )

    def bootstrap_put(self, key: bytes, value: bytes) -> None:
        """Write one pre-run (genesis) record, remembering it so cold
        recovery can re-seed a wiped state before chain replay —
        preloading bypasses consensus, so no block carries these."""
        self._genesis_writes.append((key, value))
        self.state.put(key, value)

    def bootstrap_commit(self) -> None:
        """Seal the pre-run writes as the height-0 state commit."""
        self._genesis_sealed = True
        self.state.commit_block(0)

    def recover(self, mode: str = "warm") -> None:
        """Restart a crashed node and begin chain catch-up.

        ``warm`` keeps the executed state and fetches only the blocks
        missed while down. ``cold`` wipes the state store and replays
        the entire local chain through the normal execution path first
        (riding the cluster's :class:`ExecutionCache`), then fetches
        the missed suffix. Either way, once the node's chain reaches a
        live peer's confirmed tip its consensus protocol is re-armed
        via :meth:`ConsensusProtocol.restart` and the cycle's
        ``recovery_time_s`` is recorded.
        """
        if not self.crashed:
            return
        if mode not in RECOVERY_MODES:
            raise ConnectorError(
                f"unknown recovery mode {mode!r}; expected one of "
                f"{RECOVERY_MODES}"
            )
        super().recover()
        # A byzantine send filter is process state (the compromised
        # binary died with the crash): a restarted node comes back
        # honest. The network's ever_byzantine taint survives, so the
        # auditor still treats its pre-crash blocks with suspicion.
        self.network.clear_send_filter(self.node_id)
        self._recovering = True
        self._recovery_started_at = self.now
        self._sync_view_hint = 0
        if self.auditor is not None:
            self.auditor.node_recovering(self.node_id, cold=(mode == "cold"))
        if mode == "cold":
            self.state.close()
            self.state = self._fresh_state()
            self.executed_height = 0
            self._height_roots = {}
            self.executed_block_hashes = {}
            self.receipts = {}
            # Re-seed the consensus-bypassing genesis writes; without
            # them every replayed root diverges from the live replicas.
            for key, value in self._genesis_writes:
                self.state.put(key, value)
            if self._genesis_sealed:
                self.state.commit_block(0)
        # Replay whatever the local chain already holds (the full chain
        # for cold, nothing for warm unless execution lagged the crash).
        # The replay's CPU cost becomes a real delay before the node
        # starts syncing — a restarted node is busy replaying, so cold
        # recovery time grows with chain height.
        cpu_before = self.cpu_time
        self._advance_execution()
        replay_s = self.cpu_time - cpu_before
        self.set_timer(replay_s, self._sync_round)

    def _alive_sync_peers(self) -> list[str]:
        """Peers worth asking for blocks (failure-detector view).

        A real node's peer manager knows which peers answer heartbeats;
        we read liveness off the network registry. Partitioned peers
        still look alive — requests to them are dropped in transit and
        the retry timer rotates onward, so a node recovering inside a
        partition keeps retrying until ``heal()``.
        """
        alive = [
            p
            for p in self.peers
            if (node := self.network.nodes.get(p)) is not None
            and not node.crashed
        ]
        return alive or list(self.peers)

    def _sync_round(self) -> None:
        """Request the next missing block range from a live peer."""
        if self.crashed or not self._recovering:
            return
        if not self.peers:
            # Single-node deployment: nothing to fetch, rejoin at once.
            self._finish_recovery()
            return
        peers = self._alive_sync_peers()
        peer = peers[self._sync_peer_index % len(peers)]
        self._sync_peer_index += 1
        self._sync_serial += 1
        self.sync_requests_sent += 1
        self.send(
            peer,
            SYNC_REQUEST,
            {
                "from_height": self._chain.height,
                "count": SYNC_BATCH,
                "serial": self._sync_serial,
            },
            96,
        )
        self.set_timer(SYNC_RETRY_S, self._sync_retry_check, self._sync_serial)

    def _sync_retry_check(self, serial: int) -> None:
        """No response to request ``serial``: ask the next peer."""
        if self._recovering and serial == self._sync_serial:
            self._sync_round()

    def _on_sync_request(self, message: Message) -> None:
        """Serve a recovering peer a batch of confirmed blocks."""
        payload = message.payload
        from_height = payload["from_height"]
        count = payload.get("count", SYNC_BATCH)
        confirmed = min(self.confirmed_height(), self.executed_height)
        blocks = self._chain.blocks_in_range(
            from_height, min(confirmed, from_height + count)
        )
        view_hint = (
            self.protocol.sync_hint() if self.protocol is not None else 0
        )
        size = 96 + sum(b.size_bytes() for b in blocks)
        self.sync_blocks_served += len(blocks)
        self.sync_bytes_served += size
        self.send(
            message.sender,
            SYNC_BLOCKS,
            {
                "blocks": blocks,
                "tip": confirmed,
                "view_hint": view_hint,
                "serial": payload.get("serial"),
            },
            size,
        )

    def _on_sync_blocks(self, message: Message) -> None:
        """Install one catch-up batch; re-request or finish."""
        if not self._recovering:
            return
        payload = message.payload
        if payload.get("serial") != self._sync_serial:
            return  # stale response to a superseded request
        blocks = payload["blocks"]
        self.sync_blocks_received += len(blocks)
        self.sync_bytes_received += message.size_bytes
        self._sync_view_hint = max(
            self._sync_view_hint, payload.get("view_hint", 0)
        )
        for block in blocks:
            self._chain.add_block(block)
            self.mempool.remove(tx.tx_id for tx in block.transactions)
        self._advance_execution()
        if self._chain.height >= payload["tip"]:
            self._finish_recovery()
        else:
            self._sync_round()

    def _finish_recovery(self) -> None:
        """Caught up: record the cycle and rejoin consensus."""
        self._recovering = False
        self.recovery_times.append(self.now - self._recovery_started_at)
        if self.auditor is not None:
            self.auditor.node_recovered(
                self.node_id, self._chain.height, self.now
            )
        if self.protocol is not None:
            view_hint = self._sync_view_hint
            if not self.peers:
                view_hint = max(view_hint, self.protocol.sync_hint())
            self.protocol.restart(self._chain.height, view_hint)

    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash the node and stop its consensus participation."""
        super().crash()
        # An in-progress recovery dies with the process; a later
        # recover() starts a fresh cycle.
        self._recovering = False
        if self.protocol is not None:
            self.protocol.stop()

    def close(self) -> None:
        """Release storage resources (LSM files, caches)."""
        self.state.close()
