"""Platform configuration and calibration constants.

Every absolute cost in the simulation lives here, in one place, so the
calibration is auditable. The constants were chosen so the three
platforms land near the paper's peak numbers at the reference setup
(8 servers, 8 clients, YCSB — Figure 5a):

============  =================  ==========================
platform      paper peak (tx/s)  dominant limit
============  =================  ==========================
Ethereum      284                ~2.5 s PoW interval x gasLimit-bounded blocks
Parity        45                 single signer at ~22 ms per transaction
Hyperledger   1273               ~0.75 ms of CPU per transaction across
                                 ingress + validation + execution stages
============  =================  ==========================

*Shapes* (scalability curves, collapse points, fork windows) emerge
from the protocol implementations; these constants only set scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass, replace

from .consensus.pbft import PBFTConfig
from .consensus.poa import PoAConfig
from .consensus.pow import PoWConfig
from .consensus.tendermint import TendermintConfig
from .errors import BenchmarkError


@dataclass(frozen=True)
class ExecutionCosts:
    """CPU-time model for one platform's execution engine."""

    #: Seconds of CPU per unit of gas when executing a transaction.
    seconds_per_gas: float
    #: Per-transaction signature verification when validating a block.
    verify_cost_s: float
    #: Cost of accepting one client submission (RPC deserialization,
    #: signature check, pool insert).
    tx_ingress_cost_s: float
    #: Cost of receiving one peer-gossiped transaction (already
    #: verified upstream; re-checked cheaply).
    tx_gossip_cost_s: float
    #: Sender-side cost of serializing one gossip copy to one peer
    #: (gRPC stream write). Charged (fan-out x this) at admission, so
    #: broadcasting to N-1 peers is O(N) work for the admitting server
    #: — the per-transaction cost that grows with cluster size.
    tx_broadcast_send_cost_s: float
    #: Base cost of handling one consensus control message.
    consensus_msg_cost_s: float
    #: Cost of serving one RPC request (excluding payload size effects).
    rpc_cost_s: float = 0.0002


@dataclass(frozen=True)
class PlatformConfig:
    """Everything needed to instantiate one platform node."""

    name: str
    execution: ExecutionCosts
    #: Bounded message channel; None = unbounded.
    inbox_capacity: int | None
    #: Mempool capacity (transactions).
    mempool_capacity: int | None
    #: Gas budget per block (None = count-limited only).
    block_gas_limit: int | None
    #: Storage backend: "memory" for macro runs, "lsm" for IOHeavy.
    storage_backend: str = "memory"
    #: In-memory state cap in bytes (Parity's OOM behaviour); None = off.
    memory_cap_bytes: int | None = None
    #: Cross-replica execution memoization: the deterministic sim means
    #: replicas 2..N re-executing a block from the same pre-state root
    #: must produce identical write-sets, so only the first replica
    #: runs the contracts and the rest replay the recorded net writes
    #: (byte-identical roots and stats). Overridable per scenario via
    #: ``{"execution_cache": false}``.
    execution_cache: bool = True
    #: Modeled execution-engine workers for intra-block parallelism.
    #: 1 (default) is the historical serial path, byte-for-byte. >1
    #: executes each transaction against an isolated captured view,
    #: schedules by data-hazard dependency levels, and charges the
    #: W-worker makespan instead of the serial sum — state roots,
    #: receipts, and write-sets stay byte-identical to serial; only
    #: the simulated execution time shrinks. Overridable per scenario
    #: via ``{"exec_workers": 4}`` or the CLI's ``--exec-workers``.
    exec_workers: int = 1


# ---------------------------------------------------------------------------
# Ethereum (geth v1.4.18)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EthereumConfig(PlatformConfig):
    pow: PoWConfig = field(default_factory=PoWConfig)


def ethereum_config(**overrides) -> EthereumConfig:
    """geth v1.4.18 private-testnet preset.

    Difficulty tuned for ~2.5 s blocks at 8 nodes (Section 4); the
    gasLimit bounds blocks at roughly 700 YCSB transactions, giving the
    ~284 tx/s peak.
    """
    defaults = dict(
        name="ethereum",
        execution=ExecutionCosts(
            seconds_per_gas=2.0e-8,
            verify_cost_s=0.0001,
            tx_ingress_cost_s=0.00015,
            tx_gossip_cost_s=0.00008,
            tx_broadcast_send_cost_s=0.00002,
            consensus_msg_cost_s=0.0002,
        ),
        inbox_capacity=None,  # geth queues; latency grows instead of dropping
        mempool_capacity=None,
        block_gas_limit=20_000_000,
        pow=PoWConfig(
            base_block_interval=2.5,
            reference_nodes=8,
            difficulty_exponent=1.45,
            confirmation_depth=5,
            max_txs_per_block=800,
            mining_cores=8,
        ),
    )
    defaults.update(overrides)
    return EthereumConfig(**defaults)


# ---------------------------------------------------------------------------
# Parity v1.6.0
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ParityConfig(PlatformConfig):
    poa: PoAConfig = field(default_factory=PoAConfig)
    #: Single-threaded server-side signing cost per transaction — the
    #: paper's Parity bottleneck (Sections 4.1.1, 4.2.3).
    signing_cost_s: float = 0.022
    #: Bounded signing queue; overflow is rejected back to the client,
    #: which is why Parity's latency stays flat while its client queue
    #: grows (Figures 5, 6).
    signing_queue_capacity: int = 128
    #: Per-server intake throttle ("a maximum client request rate at
    #: around 80 tx/s", Section 4.1.1).
    intake_rate_tx_s: float = 80.0


def parity_config(**overrides) -> ParityConfig:
    defaults = dict(
        name="parity",
        execution=ExecutionCosts(
            seconds_per_gas=1.2e-8,
            verify_cost_s=0.00008,
            tx_ingress_cost_s=0.0001,
            tx_gossip_cost_s=0.00006,
            tx_broadcast_send_cost_s=0.00002,
            consensus_msg_cost_s=0.00015,
        ),
        inbox_capacity=None,
        mempool_capacity=None,
        block_gas_limit=None,  # "gasLimit is not applicable to local transactions"
        poa=PoAConfig(
            step_duration=1.0,
            confirmation_depth=2,
            max_txs_per_block=1000,
        ),
    )
    defaults.update(overrides)
    return ParityConfig(**defaults)


# ---------------------------------------------------------------------------
# Hyperledger Fabric v0.6.0-preview
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class HyperledgerConfig(PlatformConfig):
    pbft: PBFTConfig = field(default_factory=PBFTConfig)


def hyperledger_config(**overrides) -> HyperledgerConfig:
    """Fabric v0.6 preset: PBFT with batch size 500 and the bounded
    message channel whose overflow causes the >16-node collapse."""
    defaults = dict(
        name="hyperledger",
        execution=ExecutionCosts(
            seconds_per_gas=1.2e-8,
            verify_cost_s=0.0002,
            tx_ingress_cost_s=0.0003,
            tx_gossip_cost_s=0.00012,
            tx_broadcast_send_cost_s=0.0001,
            consensus_msg_cost_s=0.0002,
        ),
        inbox_capacity=650,  # the fatal bounded channel (Section 4.1.2)
        mempool_capacity=None,
        block_gas_limit=None,
        pbft=PBFTConfig(
            batch_size=500,
            batch_interval=0.25,
            view_timeout=2.5,
        ),
    )
    defaults.update(overrides)
    return HyperledgerConfig(**defaults)


# ---------------------------------------------------------------------------
# ErisDB (Monax / eris-db — the paper's "under development" backend)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ErisDBConfig(PlatformConfig):
    tendermint: TendermintConfig = field(default_factory=TendermintConfig)


def erisdb_config(**overrides) -> ErisDBConfig:
    """eris-db preset: Tendermint BFT consensus over an EVM engine.

    The paper never benchmarks ErisDB, so there is no peak to calibrate
    against; the costs are composed from the measured platforms. The
    consensus side is PBFT-class (two all-to-all vote phases priced
    like Hyperledger's control messages); the execution side is
    EVM-class (ErisDB runs Solidity bytecode, so per-gas and
    verification costs follow Ethereum's profile). The expectation the
    extension benchmark checks is therefore structural: ErisDB lands
    between Hyperledger (native execution) and Ethereum (PoW).
    """
    defaults = dict(
        name="erisdb",
        execution=ExecutionCosts(
            seconds_per_gas=2.0e-8,  # EVM, as on Ethereum
            verify_cost_s=0.0001,
            tx_ingress_cost_s=0.0002,
            tx_gossip_cost_s=0.0001,
            tx_broadcast_send_cost_s=0.0001,
            consensus_msg_cost_s=0.0002,
        ),
        # Tendermint's Go channels are bounded but generous; the PBFT
        # collapse ablation is where channel pressure is studied.
        inbox_capacity=4096,
        mempool_capacity=None,
        block_gas_limit=None,
        tendermint=TendermintConfig(
            max_txs_per_block=500,
            commit_interval=0.25,
        ),
    )
    defaults.update(overrides)
    return ErisDBConfig(**defaults)


PLATFORM_PRESETS = {
    "ethereum": ethereum_config,
    "parity": parity_config,
    "hyperledger": hyperledger_config,
    "erisdb": erisdb_config,
}


def apply_overrides(config, overrides: dict):
    """Apply a JSON-shaped override dict to a platform config dataclass.

    Scenario files tune platform knobs without Python code:
    ``{"pbft": {"batch_size": 250}}`` replaces one field of the nested
    consensus config, ``{"inbox_capacity": 1300}`` a top-level one. A
    dict value whose target field is itself a dataclass recurses, so
    any depth of the preset tree is addressable; everything else is
    assigned verbatim. The input config is never mutated — presets are
    frozen dataclasses, so each override produces a fresh object via
    :func:`dataclasses.replace`.

    Unknown field names are an error listing the fields that exist:
    a silently ignored knob would make a sweep measure the default.
    """
    if not overrides:
        return config
    if not is_dataclass(config) or isinstance(config, type):
        raise BenchmarkError(
            f"cannot apply overrides to {type(config).__name__!r}: "
            "platform config must be a dataclass instance"
        )
    known = {f.name for f in fields(config)}
    changes = {}
    for key, value in overrides.items():
        if key not in known:
            raise BenchmarkError(
                f"unknown config field {key!r} for "
                f"{type(config).__name__}; available: {sorted(known)}"
            )
        current = getattr(config, key)
        if isinstance(value, dict) and is_dataclass(current) \
                and not isinstance(current, type):
            value = apply_overrides(current, value)
        changes[key] = value
    return replace(config, **changes)
