"""Plugin registries for platforms, workloads, and consensus protocols.

BLOCKBENCH's framing is that platforms and workloads *plug into* a
common driver (Figure 4): "any private blockchain can be integrated to
Blockbench via simple APIs". The seed hard-coded the four platforms in
``build_cluster`` and the six workloads in ``make_workload``; this
module replaces those if/elif ladders with decorator-based registries
so a third-party backend registers itself without touching core:

>>> from repro.registry import register_platform
>>> @register_platform("instantchain")
... def build_instantchain(node_id, scheduler, network, rng, config,
...                        all_ids, storage_dir):
...     return InstantChainNode(node_id, scheduler, network, rng)
...                                                   # doctest: +SKIP

After that, ``build_cluster("instantchain", ...)``, ``blockbench run
--platform instantchain`` and scenario files all resolve the new name
through the same lookup path as the built-ins.

This module is a leaf: it imports nothing but the error hierarchy, so
any layer (platforms, workloads, consensus, CLI, scenario engine) can
depend on it without cycles. Registration happens at class/function
definition time, i.e. importing ``repro.platforms`` or
``repro.workloads`` populates the corresponding registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from .errors import BenchmarkError

__all__ = [
    "Registry",
    "PlatformSpec",
    "WorkloadSpec",
    "PLATFORMS",
    "WORKLOADS",
    "CONSENSUS",
    "register_platform",
    "register_workload",
    "register_consensus",
]


class Registry:
    """A named collection of plugins with explicit failure modes.

    ``kind`` names what is being registered ("platform", "workload",
    ...) so error messages read naturally. Duplicate registration is an
    error unless ``replace=True`` — silently shadowing a built-in is
    exactly the kind of spooky action a plugin system must not allow.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}

    def register(self, name: str, entry: Any, *, replace: bool = False) -> Any:
        if not name or not isinstance(name, str):
            raise BenchmarkError(f"{self.kind} name must be a non-empty string")
        if name in self._entries and not replace:
            raise BenchmarkError(
                f"{self.kind} {name!r} is already registered; "
                "pass replace=True to override it"
            )
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove an entry (primarily for tests and REPL experiments)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> Any:
        try:
            return self._entries[name]
        except KeyError:
            raise BenchmarkError(
                f"unknown {self.kind} {name!r}; available: {self.names()}"
            ) from None

    def names(self) -> list[str]:
        """Registered names, sorted for stable CLI/help output."""
        return sorted(self._entries)

    def items(self) -> list[tuple[str, Any]]:
        return sorted(self._entries.items())

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# Platforms
# ---------------------------------------------------------------------------
#: Builds one node of a platform's testnet. Called once per node id
#: with the shared simulation plumbing; ``all_ids`` is the full replica
#: list (for protocols that need the membership up front) and
#: ``storage_dir`` is a per-node directory when the run persists state
#: to the LSM engine (None for in-memory runs).
NodeFactory = Callable[..., Any]


@dataclass(frozen=True)
class PlatformSpec:
    """One registered platform backend."""

    name: str
    factory: NodeFactory
    #: Zero-argument callable producing the platform's default config;
    #: ``build_cluster(config=...)`` overrides it per run.
    default_config: Callable[[], Any] | None = None
    description: str = ""

    def make_config(
        self, config: Any = None, overrides: dict | None = None
    ) -> Any:
        """Resolve the config one run of this platform should use.

        ``config`` (a Python config object) wins over the registered
        default; ``overrides`` is the scenario-JSON knob dict applied
        on top of whichever base was picked — the path that lets a
        scenario file retune a platform without touching its code.
        """
        if config is None and self.default_config is not None:
            config = self.default_config()
        if overrides:
            # Imported lazily: repro.config pulls in the consensus
            # modules, which register themselves through this module —
            # a module-level import would be circular.
            from .config import apply_overrides

            if config is None:
                raise BenchmarkError(
                    f"platform {self.name!r} has no config to override; "
                    "it was registered without a default_config"
                )
            config = apply_overrides(config, overrides)
        return config


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered benchmark workload."""

    name: str
    workload_type: type
    #: Config dataclass accepted by the workload's constructor; when
    #: set, ``create(**kwargs)`` wraps the kwargs in it.
    config_type: type | None = None
    description: str = ""

    def create(self, **kwargs: Any) -> Any:
        """Instantiate the workload, routing kwargs through its config."""
        if not kwargs:
            return self.workload_type()
        if self.config_type is None:
            raise BenchmarkError(
                f"workload {self.name!r} takes no parameters; "
                f"got {sorted(kwargs)}"
            )
        try:
            config = self.config_type(**kwargs)
        except TypeError as exc:
            raise BenchmarkError(
                f"bad parameters for workload {self.name!r}: {exc}"
            ) from None
        return self.workload_type(config)


PLATFORMS = Registry("platform")
WORKLOADS = Registry("workload")
CONSENSUS = Registry("consensus protocol")


def register_platform(
    name: str,
    *,
    default_config: Callable[[], Any] | None = None,
    description: str = "",
    replace: bool = False,
) -> Callable[[NodeFactory], NodeFactory]:
    """Class/function decorator adding a platform node factory."""

    def decorator(factory: NodeFactory) -> NodeFactory:
        PLATFORMS.register(
            name,
            PlatformSpec(
                name=name,
                factory=factory,
                default_config=default_config,
                description=description or (factory.__doc__ or "").strip(),
            ),
            replace=replace,
        )
        return factory

    return decorator


def register_workload(
    name: str,
    *,
    config_type: type | None = None,
    description: str = "",
    replace: bool = False,
) -> Callable[[type], type]:
    """Class decorator adding a driver workload."""

    def decorator(workload_type: type) -> type:
        WORKLOADS.register(
            name,
            WorkloadSpec(
                name=name,
                workload_type=workload_type,
                config_type=config_type,
                description=description or (workload_type.__doc__ or "").strip(),
            ),
            replace=replace,
        )
        return workload_type

    return decorator


def register_consensus(
    name: str, *, replace: bool = False
) -> Callable[[type], type]:
    """Class decorator adding a consensus protocol implementation."""

    def decorator(protocol_type: type) -> type:
        CONSENSUS.register(name, protocol_type, replace=replace)
        return protocol_type

    return decorator
