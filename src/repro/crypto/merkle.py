"""Classic binary Merkle tree.

Used for block transaction lists ("the hash tree for transaction list
is a classic Merkle tree, as the list is not large", Section 3.1.2).
Odd levels duplicate the trailing node, Bitcoin-style. Supports audit
proofs so light clients can verify inclusion against a block header.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ChainError
from .hashing import EMPTY_HASH, Hash, hash_items, sha256


@dataclass(frozen=True)
class ProofStep:
    """One level of an audit path: sibling digest and its side."""

    sibling: Hash
    sibling_on_left: bool


class MerkleTree:
    """Binary hash tree over a list of leaf payloads.

    >>> tree = MerkleTree([b"a", b"b", b"c"])
    >>> proof = tree.prove(1)
    >>> MerkleTree.verify_proof(b"b", proof, tree.root)
    True
    """

    def __init__(self, leaves: list[bytes]) -> None:
        self.leaf_count = len(leaves)
        self._levels: list[list[Hash]] = []
        if not leaves:
            self.root = EMPTY_HASH
            return
        level = [sha256(b"leaf:" + leaf) for leaf in leaves]
        self._levels.append(level)
        while len(level) > 1:
            if len(level) % 2 == 1:
                level = level + [level[-1]]
                self._levels[-1] = level
            level = [
                hash_items(b"node", level[i], level[i + 1])
                for i in range(0, len(level), 2)
            ]
            self._levels.append(level)
        self.root = level[0]

    def prove(self, index: int) -> list[ProofStep]:
        """Audit path for the leaf at ``index``."""
        if not 0 <= index < self.leaf_count:
            raise ChainError(f"leaf index {index} out of range")
        path: list[ProofStep] = []
        for level in self._levels[:-1]:
            sibling_index = index ^ 1
            sibling = level[min(sibling_index, len(level) - 1)]
            path.append(ProofStep(sibling=sibling, sibling_on_left=index % 2 == 1))
            index //= 2
        return path

    @staticmethod
    def verify_proof(leaf: bytes, proof: list[ProofStep], root: Hash) -> bool:
        """Check an audit path against an expected root."""
        digest = sha256(b"leaf:" + leaf)
        for step in proof:
            if step.sibling_on_left:
                digest = hash_items(b"node", step.sibling, digest)
            else:
                digest = hash_items(b"node", digest, step.sibling)
        return digest == root


def merkle_root(leaves: list[bytes]) -> Hash:
    """Root digest without retaining the tree."""
    return MerkleTree(leaves).root
