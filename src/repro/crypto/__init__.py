"""Cryptographic substrate: hashing, signatures, and Merkle structures."""

from .bucket_tree import BucketTree
from .hashing import (
    EMPTY_HASH,
    Hash,
    hash_items,
    hash_text,
    hex_digest,
    sha256,
    short_hex,
)
from .merkle import MerkleTree, ProofStep, merkle_root
from .signatures import (
    SIGN_COST_S,
    VERIFY_COST_S,
    KeyPair,
    KeyRegistry,
    PublicKey,
    Signature,
    transaction_digest,
)
from .trie import DictNodeStore, PatriciaTrie, StateTrie, from_nibbles, to_nibbles

__all__ = [
    "BucketTree",
    "EMPTY_HASH",
    "Hash",
    "hash_items",
    "hash_text",
    "hex_digest",
    "sha256",
    "short_hex",
    "MerkleTree",
    "ProofStep",
    "merkle_root",
    "SIGN_COST_S",
    "VERIFY_COST_S",
    "KeyPair",
    "KeyRegistry",
    "PublicKey",
    "Signature",
    "transaction_digest",
    "DictNodeStore",
    "PatriciaTrie",
    "StateTrie",
    "from_nibbles",
    "to_nibbles",
]
