"""Hashing primitives shared by every chain data structure.

All block, transaction, and state-tree identities in this codebase are
SHA-256 digests of canonical, length-prefixed encodings. Length
prefixes matter: without them ``hash_items(b"ab", b"c")`` and
``hash_items(b"a", b"bc")`` would collide.
"""

from __future__ import annotations

import hashlib

Hash = bytes

#: Digest of the empty encoding; used as the "null" child pointer.
EMPTY_HASH: Hash = hashlib.sha256(b"").digest()


def sha256(data: bytes) -> Hash:
    """Plain SHA-256 digest."""
    return hashlib.sha256(data).digest()


def hash_items(*parts: bytes) -> Hash:
    """Hash a sequence of byte strings under a canonical encoding.

    Each part is prefixed with its 4-byte big-endian length, so the
    overall encoding is injective.
    """
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(len(part).to_bytes(4, "big"))
        hasher.update(part)
    return hasher.digest()


def hash_text(text: str) -> Hash:
    """Hash a unicode string (UTF-8 encoded)."""
    return sha256(text.encode("utf-8"))


def hex_digest(digest: Hash) -> str:
    """Full lowercase hex rendering of a digest."""
    return digest.hex()


def short_hex(digest: Hash, length: int = 8) -> str:
    """Abbreviated hex rendering for logs and reprs."""
    return digest.hex()[:length]
