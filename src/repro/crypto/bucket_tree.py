"""Bucket-Merkle tree, the Hyperledger Fabric v0.6 state tree.

Section 3.1.2: "Hyperledger implements Bucket-Merkle tree which uses a
hash function to group states into a list of buckets from which a
Merkle tree is built." Compared to the Patricia trie this is a flat
structure — one hash bucket per state group and a fixed-shape binary
tree above — so a write updates exactly one bucket digest plus
``log2(n_buckets)`` interior digests, and storage stays close to the
raw key-value payload. That is why Hyperledger's disk usage in
Figure 12c is an order of magnitude below Ethereum/Parity's.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import StorageError
from .hashing import EMPTY_HASH, Hash, hash_items, sha256


class BucketTree:
    """Fixed-bucket Merkle accumulator over a key-value state.

    >>> tree = BucketTree(n_buckets=16)
    >>> r0 = tree.root_hash()
    >>> tree.put(b"k", b"v")
    >>> tree.root_hash() != r0
    True
    >>> tree.delete(b"k")
    >>> tree.root_hash() == r0
    True
    """

    def __init__(self, n_buckets: int = 1024) -> None:
        if n_buckets < 1:
            raise StorageError("bucket tree needs at least one bucket")
        self.n_buckets = n_buckets
        self._buckets: list[dict[bytes, bytes]] = [{} for _ in range(n_buckets)]
        # Leaf level padded to a power of two so the tree shape is static.
        leaf_count = 1
        while leaf_count < n_buckets:
            leaf_count *= 2
        self._leaf_count = leaf_count
        self._levels: list[list[Hash]] = []
        level = [EMPTY_HASH] * leaf_count
        self._levels.append(level)
        while len(level) > 1:
            level = [
                hash_items(b"bnode", level[i], level[i + 1])
                for i in range(0, len(level), 2)
            ]
            self._levels.append(level)
        self._dirty: set[int] = set()
        self.key_count = 0

    # ------------------------------------------------------------------
    # Key-value operations
    # ------------------------------------------------------------------
    def _bucket_index(self, key: bytes) -> int:
        return int.from_bytes(sha256(b"bucket:" + key)[:8], "big") % self.n_buckets

    def get(self, key: bytes) -> bytes | None:
        return self._buckets[self._bucket_index(key)].get(key)

    def put(self, key: bytes, value: bytes) -> None:
        index = self._bucket_index(key)
        bucket = self._buckets[index]
        if key not in bucket:
            self.key_count += 1
        bucket[key] = value
        self._dirty.add(index)

    def delete(self, key: bytes) -> None:
        index = self._bucket_index(key)
        bucket = self._buckets[index]
        if key in bucket:
            del bucket[key]
            self.key_count -= 1
            self._dirty.add(index)

    def update(self, items: Iterable[tuple[bytes, bytes | None]]) -> None:
        """Apply a net write-set in one pass (``value=None`` deletes).

        Buckets are only marked dirty here; the Merkle work happens at
        the next :meth:`root_hash`, which recomputes each dirty leaf
        and every shared interior node exactly once for the whole batch
        — the bucket-tree analogue of the trie's batched update.
        """
        for key, value in items:
            if value is None:
                self.delete(key)
            else:
                self.put(key, value)

    def items(self) -> list[tuple[bytes, bytes]]:
        """All (key, value) pairs, bucket order then key order."""
        out: list[tuple[bytes, bytes]] = []
        for bucket in self._buckets:
            out.extend(sorted(bucket.items()))
        return out

    # ------------------------------------------------------------------
    # Merkle maintenance
    # ------------------------------------------------------------------
    def _bucket_digest(self, index: int) -> Hash:
        bucket = self._buckets[index]
        if not bucket:
            return EMPTY_HASH
        hasher_parts: list[bytes] = []
        for key in sorted(bucket):
            hasher_parts.append(key)
            hasher_parts.append(bucket[key])
        return hash_items(b"bucket", *hasher_parts)

    def root_hash(self) -> Hash:
        """Flush dirty buckets and return the current root digest.

        Propagates level by level: every dirty leaf digest is computed
        once, then each *distinct* dirty parent at each interior level
        is hashed once — K dirty buckets under a shared ancestor cost
        one ancestor rehash for the whole batch instead of K (the
        digests themselves are unchanged, so the root stays
        byte-identical to per-bucket recomputation).
        """
        if self._dirty:
            for index in self._dirty:
                self._levels[0][index] = self._bucket_digest(index)
            dirty = {index // 2 for index in self._dirty}
            for depth in range(1, len(self._levels)):
                level = self._levels[depth]
                below = self._levels[depth - 1]
                for index in dirty:
                    level[index] = hash_items(
                        b"bnode", below[index * 2], below[index * 2 + 1]
                    )
                dirty = {index // 2 for index in dirty}
            self._dirty.clear()
        return self._levels[-1][0]
