"""Simulated digital signatures with a CPU cost model.

Real platforms spend meaningful CPU on ECDSA: the paper pins Parity's
throughput ceiling on *server-side transaction signing* (Section 4.1.1,
4.2.3). We do not need cryptographic hardness inside a closed
simulation — we need (a) unforgeable-within-the-model integrity so
corrupted messages are detected, and (b) a realistic cost hook so the
signing stage can become a bottleneck. A signature here is an HMAC-like
digest bound to the signer's key material; verification recomputes it.

``SIGN_COST_S`` / ``VERIFY_COST_S`` are the defaults used by platforms
that do not override them; Parity's config raises the signing cost to
reproduce its ~80 tx/s intake cap.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass

from ..errors import ChainError
from .hashing import Hash, hash_items, sha256

#: Default modeled CPU costs (seconds) for one sign / verify operation,
#: in the ballpark of secp256k1 on 2016-era server CPUs.
SIGN_COST_S = 0.0004
VERIFY_COST_S = 0.0006


@dataclass(frozen=True)
class Signature:
    """A signature over a message digest by one keypair."""

    signer: str
    digest: Hash

    def size_bytes(self) -> int:
        return 65  # matches an encoded secp256k1 signature


class KeyPair:
    """Deterministic keypair derived from a seed string.

    >>> alice = KeyPair.from_seed("alice")
    >>> sig = alice.sign(b"hello")
    >>> alice.public.verify(b"hello", sig)
    True
    >>> alice.public.verify(b"tampered", sig)
    False
    """

    def __init__(self, private_key: bytes) -> None:
        if len(private_key) != 32:
            raise ChainError("private key must be 32 bytes")
        self._private_key = private_key
        self.address = sha256(b"addr:" + private_key)[:20].hex()
        self.public = PublicKey(self.address, sha256(b"pub:" + private_key))

    @classmethod
    def from_seed(cls, seed: str) -> "KeyPair":
        return cls(sha256(b"seed:" + seed.encode()))

    def sign(self, message: bytes) -> Signature:
        mac = hmac.new(self._private_key, message, "sha256").digest()
        return Signature(signer=self.address, digest=mac)


class PublicKey:
    """Verification half of a keypair.

    Within the simulation the verifier is granted access to the key
    registry (see :class:`KeyRegistry`), mirroring how permissioned
    chains distribute member certificates out of band.
    """

    def __init__(self, address: str, key_id: Hash) -> None:
        self.address = address
        self.key_id = key_id

    def verify(self, message: bytes, signature: Signature) -> bool:
        keypair = KeyRegistry.lookup(self.address)
        if keypair is None or signature.signer != self.address:
            return False
        expected = keypair.sign(message)
        return hmac.compare_digest(expected.digest, signature.digest)


class KeyRegistry:
    """Process-wide registry of keypairs (the simulation's PKI).

    Permissioned blockchains assume authenticated members whose
    certificates are distributed by a membership service; the registry
    plays that role for the simulator.
    """

    _keys: dict[str, KeyPair] = {}

    @classmethod
    def create(cls, seed: str) -> KeyPair:
        keypair = KeyPair.from_seed(seed)
        cls._keys[keypair.address] = keypair
        return keypair

    @classmethod
    def lookup(cls, address: str) -> KeyPair | None:
        return cls._keys.get(address)

    @classmethod
    def clear(cls) -> None:
        cls._keys.clear()


def transaction_digest(sender: str, payload: bytes, nonce: int) -> Hash:
    """Canonical signing digest for a transaction."""
    return hash_items(sender.encode(), payload, nonce.to_bytes(8, "big"))
