"""Patricia-Merkle trie, the Ethereum/Parity state tree.

The paper (Section 3.1.2): "Ethereum and Parity employ Patricia-Merkle
tree that supports efficient update and search operations." States live
in a disk-based key-value store; the trie's nodes are content-addressed
(keyed by their hash), so every logical write rewrites the path from
leaf to root. That node-expansion write amplification is exactly what
produces the order-of-magnitude disk-usage gap against Hyperledger in
the IOHeavy experiment (Figure 12c) — so we implement it for real, with
nodes persisted through an abstract node store.

Writes are copy-on-write: ``put`` returns a *new* root hash and leaves
old nodes in place, which is also how the real MPT retains historical
state roots (used by ``getBalance(account, block)`` in the analytics
workload).

Two fast paths (PR 2) keep the write amplification honest without
paying it twice:

* a decoded-node LRU sits in front of the store, so the hot upper
  levels of the tree skip both the store read and the blob decode —
  content addressing makes the cache trivially coherent;
* the put path short-circuits when a subtree is unchanged (same value
  written twice), returning the existing hash instead of re-encoding
  and re-hashing the whole leaf-to-root path — exactly what a real MPT
  does, since identical content hashes to the identical node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol

from hashlib import sha256 as _sha256

from ..errors import CorruptionError
from ..util.lru import LRUCache
from .hashing import Hash, sha256

#: Decoded-node LRU sizing: roughly the working set of a few hundred
#: thousand accounts' upper tree levels, while leaves churn through.
NODE_CACHE_ENTRIES = 16_384

Nibbles = tuple[int, ...]

_LEAF = 0
_EXTENSION = 1
_BRANCH = 2


class NodeStore(Protocol):
    """Minimal persistence interface the trie needs."""

    def get(self, key: bytes) -> bytes | None: ...

    def put(self, key: bytes, value: bytes) -> None: ...


class DictNodeStore:
    """In-memory node store; also usable as a write-through cache."""

    def __init__(self) -> None:
        self._data: dict[bytes, bytes] = {}

    def get(self, key: bytes) -> bytes | None:
        return self._data.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)


#: Per-byte nibble pairs, precomputed once (to_nibbles runs per get/put).
_BYTE_NIBBLES: tuple[tuple[int, int], ...] = tuple(
    (b >> 4, b & 0x0F) for b in range(256)
)


def to_nibbles(key: bytes) -> Nibbles:
    """Split a byte key into 4-bit nibbles (two per byte, high first)."""
    out: list[int] = []
    extend = out.extend
    pairs = _BYTE_NIBBLES
    for byte in key:
        extend(pairs[byte])
    return tuple(out)


def from_nibbles(nibbles: Nibbles) -> bytes:
    """Inverse of :func:`to_nibbles` for even-length nibble runs."""
    if len(nibbles) % 2:
        raise CorruptionError("odd nibble run cannot map back to bytes")
    return bytes(
        (nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2)
    )


def _common_prefix_len(a: Nibbles, b: Nibbles) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


@dataclass(frozen=True)
class _Leaf:
    path: Nibbles
    value: bytes


@dataclass(frozen=True)
class _Extension:
    path: Nibbles
    child: Hash


@dataclass(frozen=True)
class _Branch:
    children: tuple[Hash | None, ...]  # exactly 16 entries
    value: bytes | None


_Node = _Leaf | _Extension | _Branch

_EMPTY_CHILD = b"\x00" * 32


_BRANCH_PREFIX = bytes([_BRANCH])


def _encode_node(node: _Node) -> bytes:
    if isinstance(node, _Leaf):
        return bytes((_LEAF, len(node.path))) + bytes(node.path) + node.value
    if isinstance(node, _Extension):
        return (
            bytes((_EXTENSION, len(node.path))) + bytes(node.path) + node.child
        )
    body = b"".join(
        [c if c is not None else _EMPTY_CHILD for c in node.children]
    )
    if node.value is not None:
        return _BRANCH_PREFIX + body + b"\x01" + node.value
    return _BRANCH_PREFIX + body + b"\x00"


def _decode_node(blob: bytes) -> _Node:
    if not blob:
        raise CorruptionError("empty trie node blob")
    tag = blob[0]
    if tag == _LEAF:
        path_len = blob[1]
        path = tuple(blob[2 : 2 + path_len])
        return _Leaf(path=path, value=blob[2 + path_len :])
    if tag == _EXTENSION:
        path_len = blob[1]
        path = tuple(blob[2 : 2 + path_len])
        child = blob[2 + path_len :]
        if len(child) != 32:
            raise CorruptionError("extension child must be a 32-byte hash")
        return _Extension(path=path, child=child)
    if tag == _BRANCH:
        offset = 1
        children: list[Hash | None] = []
        for _ in range(16):
            raw = blob[offset : offset + 32]
            children.append(None if raw == _EMPTY_CHILD else raw)
            offset += 32
        flag = blob[offset]
        value = blob[offset + 1 :] if flag == 1 else None
        return _Branch(children=tuple(children), value=value)
    raise CorruptionError(f"unknown trie node tag {tag}")


class PatriciaTrie:
    """Functional Merkle-Patricia trie over a node store.

    >>> trie = PatriciaTrie(DictNodeStore())
    >>> root1 = trie.put(None, b"dog", b"puppy")
    >>> root2 = trie.put(root1, b"doge", b"coin")
    >>> trie.get(root2, b"dog")
    b'puppy'
    >>> trie.get(root1, b"doge") is None   # old root unaffected
    True
    """

    def __init__(
        self, store: NodeStore, node_cache_entries: int = NODE_CACHE_ENTRIES
    ) -> None:
        self.store = store
        self.node_writes = 0
        self.node_reads = 0
        self.bytes_written = 0
        #: Decoded nodes keyed by digest. Content-addressed storage
        #: means an entry can never go stale — a digest always names
        #: the same node bytes. Pass ``node_cache_entries=0`` to
        #: disable, e.g. when the store's own read counters *model*
        #: a platform cache and must see every logical read.
        self._node_cache: LRUCache[bytes, _Node] | None = (
            LRUCache(node_cache_entries) if node_cache_entries > 0 else None
        )

    # ------------------------------------------------------------------
    # Node persistence
    # ------------------------------------------------------------------
    def _save(self, node: _Node) -> Hash:
        blob = _encode_node(node)
        # hashlib called directly: the wrapper costs a Python frame per
        # saved node, and every put saves the whole leaf-to-root path.
        digest = _sha256(blob).digest()
        self.store.put(digest, blob)
        self.node_writes += 1
        self.bytes_written += len(blob) + 32
        if self._node_cache is not None:
            self._node_cache.put(digest, node)
        return digest

    def _load(self, digest: Hash) -> _Node:
        self.node_reads += 1
        cache = self._node_cache
        if cache is not None:
            node = cache.get(digest)
            if node is not None:
                return node
        blob = self.store.get(digest)
        if blob is None:
            raise CorruptionError(f"missing trie node {digest.hex()[:12]}")
        node = _decode_node(blob)
        if cache is not None:
            cache.put(digest, node)
        return node

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, root: Hash | None, key: bytes) -> bytes | None:
        """Value for ``key`` under ``root``, or None when absent."""
        if root is None:
            return None
        return self._get(root, to_nibbles(key))

    def _get(self, node_hash: Hash, path: Nibbles) -> bytes | None:
        node = self._load(node_hash)
        if isinstance(node, _Leaf):
            return node.value if node.path == path else None
        if isinstance(node, _Extension):
            prefix_len = len(node.path)
            if path[:prefix_len] != node.path:
                return None
            return self._get(node.child, path[prefix_len:])
        if not path:
            return node.value
        child = node.children[path[0]]
        if child is None:
            return None
        return self._get(child, path[1:])

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, root: Hash | None, key: bytes, value: bytes) -> Hash:
        """Insert/overwrite ``key``; returns the new root hash."""
        if root is None:
            return self._save(_Leaf(path=to_nibbles(key), value=value))
        return self._put(root, to_nibbles(key), value)

    def _put(self, node_hash: Hash, path: Nibbles, value: bytes) -> Hash:
        node = self._load(node_hash)
        if isinstance(node, _Leaf):
            return self._put_into_leaf(node, node_hash, path, value)
        if isinstance(node, _Extension):
            return self._put_into_extension(node, node_hash, path, value)
        return self._put_into_branch(node, node_hash, path, value)

    def _put_into_leaf(
        self, node: _Leaf, node_hash: Hash, path: Nibbles, value: bytes
    ) -> Hash:
        if node.path == path:
            if node.value == value:
                # Identical content hashes to the identical node: skip
                # the re-encode/re-hash and let the whole path above
                # reuse its existing nodes.
                return node_hash
            return self._save(_Leaf(path=path, value=value))
        common = _common_prefix_len(node.path, path)
        branch_children: list[Hash | None] = [None] * 16
        branch_value: bytes | None = None
        for leaf_path, leaf_value in ((node.path, node.value), (path, value)):
            rest = leaf_path[common:]
            if not rest:
                branch_value = leaf_value
            else:
                branch_children[rest[0]] = self._save(
                    _Leaf(path=rest[1:], value=leaf_value)
                )
        branch_hash = self._save(
            _Branch(children=tuple(branch_children), value=branch_value)
        )
        if common:
            return self._save(_Extension(path=path[:common], child=branch_hash))
        return branch_hash

    def _put_into_extension(
        self, node: _Extension, node_hash: Hash, path: Nibbles, value: bytes
    ) -> Hash:
        common = _common_prefix_len(node.path, path)
        if common == len(node.path):
            new_child = self._put(node.child, path[common:], value)
            if new_child == node.child:
                return node_hash  # unchanged subtree: no path rewrite
            return self._save(_Extension(path=node.path, child=new_child))
        # Split the extension at the divergence point.
        branch_children: list[Hash | None] = [None] * 16
        branch_value: bytes | None = None
        ext_rest = node.path[common:]
        if len(ext_rest) == 1:
            branch_children[ext_rest[0]] = node.child
        else:
            branch_children[ext_rest[0]] = self._save(
                _Extension(path=ext_rest[1:], child=node.child)
            )
        key_rest = path[common:]
        if not key_rest:
            branch_value = value
        else:
            branch_children[key_rest[0]] = self._save(
                _Leaf(path=key_rest[1:], value=value)
            )
        branch_hash = self._save(
            _Branch(children=tuple(branch_children), value=branch_value)
        )
        if common:
            return self._save(_Extension(path=path[:common], child=branch_hash))
        return branch_hash

    def _put_into_branch(
        self, node: _Branch, node_hash: Hash, path: Nibbles, value: bytes
    ) -> Hash:
        if not path:
            if node.value == value:
                return node_hash
            return self._save(_Branch(children=node.children, value=value))
        index = path[0]
        child = node.children[index]
        if child is None:
            new_child = self._save(_Leaf(path=path[1:], value=value))
        else:
            new_child = self._put(child, path[1:], value)
            if new_child == child:
                return node_hash  # unchanged subtree: no path rewrite
        children = list(node.children)
        children[index] = new_child
        return self._save(_Branch(children=tuple(children), value=node.value))

    # ------------------------------------------------------------------
    # Batched write path (PR 5)
    # ------------------------------------------------------------------
    def update(
        self, root: Hash | None, items: Iterable[tuple[bytes, bytes | None]]
    ) -> Hash | None:
        """Apply a whole write-set in one pass; returns the new root.

        ``items`` are ``(key, value)`` pairs applied last-write-wins
        (``value=None`` deletes the key). The root of a Patricia trie
        is canonical for the final key-to-value map, so this produces a
        hash byte-identical to applying the same net writes through
        :meth:`put`/:meth:`delete` one at a time — but each shared path
        segment is encoded and hashed **once** for the batch instead of
        once per write, which is where the block-commit fast path's
        speedup comes from (K writes under a common prefix collapse
        into a single path rewrite).
        """
        net: dict[bytes, bytes | None] = {}
        for key, value in items:
            net[key] = value
        for key in sorted(k for k, v in net.items() if v is None):
            if root is None:
                break
            root = self._delete(root, to_nibbles(key))
        puts = sorted(
            (to_nibbles(key), value)
            for key, value in net.items()
            if value is not None
        )
        if not puts:
            return root
        if root is None:
            return self._build(puts)
        return self._batch_put(root, puts)

    def _build(self, items: list[tuple[Nibbles, bytes]]) -> Hash:
        """Construct a subtree from scratch for sorted, distinct items."""
        if len(items) == 1:
            path, value = items[0]
            return self._save(_Leaf(path=path, value=value))
        # Sorted paths: the common prefix of all items is the common
        # prefix of the first and last.
        common = _common_prefix_len(items[0][0], items[-1][0])
        if common:
            prefix = items[0][0][:common]
            stripped = [(path[common:], value) for path, value in items]
            branch_hash = self._build_branch(stripped)
            return self._save(_Extension(path=prefix, child=branch_hash))
        return self._build_branch(items)

    def _build_branch(self, items: list[tuple[Nibbles, bytes]]) -> Hash:
        """Branch node over items whose common prefix is already consumed."""
        branch_value: bytes | None = None
        groups: dict[int, list[tuple[Nibbles, bytes]]] = {}
        for path, value in items:
            if not path:
                branch_value = value
            else:
                groups.setdefault(path[0], []).append((path[1:], value))
        children: list[Hash | None] = [None] * 16
        for nibble, group in groups.items():
            children[nibble] = self._build(group)
        return self._save(
            _Branch(children=tuple(children), value=branch_value)
        )

    def _batch_put(
        self, node_hash: Hash, items: list[tuple[Nibbles, bytes]]
    ) -> Hash:
        """Merge sorted, distinct put items into an existing subtree."""
        node = self._load(node_hash)
        if isinstance(node, _Leaf):
            if len(items) == 1 and items[0][0] == node.path:
                path, value = items[0]
                if value == node.value:
                    return node_hash  # unchanged subtree: no rewrite
                return self._save(_Leaf(path=path, value=value))
            if not any(path == node.path for path, _ in items):
                items = sorted(items + [(node.path, node.value)])
            return self._build(items)
        if isinstance(node, _Extension):
            return self._batch_into_extension(
                node.path, node.child, items, node_hash=node_hash
            )
        # Branch node.
        branch_value = node.value
        groups: dict[int, list[tuple[Nibbles, bytes]]] = {}
        for path, value in items:
            if not path:
                branch_value = value
            else:
                groups.setdefault(path[0], []).append((path[1:], value))
        children = list(node.children)
        changed = branch_value != node.value
        for nibble, group in groups.items():
            child = children[nibble]
            new_child = (
                self._batch_put(child, group)
                if child is not None
                else self._build(group)
            )
            if new_child != child:
                children[nibble] = new_child
                changed = True
        if not changed:
            return node_hash  # every write was a same-value overwrite
        return self._save(
            _Branch(children=tuple(children), value=branch_value)
        )

    def _batch_into_extension(
        self,
        ext_path: Nibbles,
        ext_child: Hash,
        items: list[tuple[Nibbles, bytes]],
        node_hash: Hash | None = None,
    ) -> Hash:
        """Merge items into an extension segment over ``ext_child``.

        ``node_hash`` is the stored hash of ``Extension(ext_path,
        ext_child)`` when that node exists (enables the unchanged
        short-circuit); None when the segment is the virtual remainder
        of a longer extension that is being split.
        """
        prefix_len = len(ext_path)
        divergence = min(
            _common_prefix_len(ext_path, path) for path, _ in items
        )
        if divergence == prefix_len:
            # Every item lives under the extension: one recursive merge.
            new_child = self._batch_put(
                ext_child, [(path[prefix_len:], v) for path, v in items]
            )
            if new_child == ext_child and node_hash is not None:
                return node_hash  # unchanged subtree: no path rewrite
            return self._save(_Extension(path=ext_path, child=new_child))
        # Split at the first nibble where some item leaves the segment.
        branch_value: bytes | None = None
        groups: dict[int, list[tuple[Nibbles, bytes]]] = {}
        for path, value in items:
            rest = path[divergence:]
            if not rest:
                branch_value = value
            else:
                groups.setdefault(rest[0], []).append((rest[1:], value))
        children: list[Hash | None] = [None] * 16
        ext_nibble = ext_path[divergence]
        ext_rest = ext_path[divergence + 1 :]
        under_ext = groups.pop(ext_nibble, None)
        if under_ext is not None:
            if ext_rest:
                children[ext_nibble] = self._batch_into_extension(
                    ext_rest, ext_child, sorted(under_ext)
                )
            else:
                children[ext_nibble] = self._batch_put(
                    ext_child, sorted(under_ext)
                )
        elif ext_rest:
            children[ext_nibble] = self._save(
                _Extension(path=ext_rest, child=ext_child)
            )
        else:
            children[ext_nibble] = ext_child
        for nibble, group in groups.items():
            children[nibble] = self._build(sorted(group))
        branch_hash = self._save(
            _Branch(children=tuple(children), value=branch_value)
        )
        if divergence:
            return self._save(
                _Extension(path=ext_path[:divergence], child=branch_hash)
            )
        return branch_hash

    # ------------------------------------------------------------------
    # Delete path
    # ------------------------------------------------------------------
    def delete(self, root: Hash | None, key: bytes) -> Hash | None:
        """Remove ``key``; returns the new root (None for an empty trie)."""
        if root is None:
            return None
        return self._delete(root, to_nibbles(key))

    def _delete(self, node_hash: Hash, path: Nibbles) -> Hash | None:
        node = self._load(node_hash)
        if isinstance(node, _Leaf):
            return None if node.path == path else node_hash
        if isinstance(node, _Extension):
            prefix_len = len(node.path)
            if path[:prefix_len] != node.path:
                return node_hash
            new_child = self._delete(node.child, path[prefix_len:])
            if new_child is None:
                return None
            if new_child == node.child:
                return node_hash
            return self._merge_extension(node.path, new_child)
        return self._delete_from_branch(node, node_hash, path)

    def _delete_from_branch(
        self, node: _Branch, node_hash: Hash, path: Nibbles
    ) -> Hash | None:
        children = list(node.children)
        value = node.value
        if not path:
            if value is None:
                return node_hash  # key absent
            value = None
        else:
            child = children[path[0]]
            if child is None:
                return node_hash  # key absent
            new_child = self._delete(child, path[1:])
            if new_child == child:
                return node_hash
            children[path[0]] = new_child
        live = [(i, c) for i, c in enumerate(children) if c is not None]
        if value is None and not live:
            return None
        if value is not None and not live:
            return self._save(_Leaf(path=(), value=value))
        if value is None and len(live) == 1:
            index, child_hash = live[0]
            return self._collapse_single_child(index, child_hash)
        return self._save(_Branch(children=tuple(children), value=value))

    def _collapse_single_child(self, index: int, child_hash: Hash) -> Hash:
        child = self._load(child_hash)
        if isinstance(child, _Leaf):
            return self._save(_Leaf(path=(index,) + child.path, value=child.value))
        if isinstance(child, _Extension):
            return self._save(
                _Extension(path=(index,) + child.path, child=child.child)
            )
        return self._save(_Extension(path=(index,), child=child_hash))

    def _merge_extension(self, prefix: Nibbles, child_hash: Hash) -> Hash:
        child = self._load(child_hash)
        if isinstance(child, _Leaf):
            return self._save(_Leaf(path=prefix + child.path, value=child.value))
        if isinstance(child, _Extension):
            return self._save(
                _Extension(path=prefix + child.path, child=child.child)
            )
        return self._save(_Extension(path=prefix, child=child_hash))

    # ------------------------------------------------------------------
    # Iteration (used by analytics and tests)
    # ------------------------------------------------------------------
    def items(self, root: Hash | None) -> Iterator[tuple[bytes, bytes]]:
        """Yield (key, value) pairs under ``root`` in nibble order."""
        if root is None:
            return
        yield from self._walk(root, ())

    def _walk(self, node_hash: Hash, prefix: Nibbles) -> Iterator[tuple[bytes, bytes]]:
        node = self._load(node_hash)
        if isinstance(node, _Leaf):
            yield from_nibbles(prefix + node.path), node.value
            return
        if isinstance(node, _Extension):
            yield from self._walk(node.child, prefix + node.path)
            return
        if node.value is not None:
            yield from_nibbles(prefix), node.value
        for index, child in enumerate(node.children):
            if child is not None:
                yield from self._walk(child, prefix + (index,))


class StateTrie:
    """Mutable facade tracking the current root and per-block history.

    Platforms commit one root per block; ``snapshot()`` records it so
    historical queries (``getBalance(account, block)``) can re-read any
    past state — the mechanism behind the analytics workload.
    """

    def __init__(
        self,
        store: NodeStore | None = None,
        node_cache_entries: int = NODE_CACHE_ENTRIES,
    ) -> None:
        self.trie = PatriciaTrie(
            store if store is not None else DictNodeStore(),
            node_cache_entries=node_cache_entries,
        )
        self.root: Hash | None = None
        self.history: list[Hash | None] = []

    def get(self, key: bytes) -> bytes | None:
        return self.trie.get(self.root, key)

    def get_at(self, snapshot_index: int, key: bytes) -> bytes | None:
        """Read ``key`` as of snapshot ``snapshot_index`` (block height)."""
        return self.trie.get(self.history[snapshot_index], key)

    def put(self, key: bytes, value: bytes) -> None:
        self.root = self.trie.put(self.root, key, value)

    def delete(self, key: bytes) -> None:
        self.root = self.trie.delete(self.root, key)

    def update(self, items: Iterable[tuple[bytes, bytes | None]]) -> None:
        """Apply a net write-set in one batched pass (None = delete)."""
        self.root = self.trie.update(self.root, items)

    def snapshot(self) -> int:
        """Record the current root; returns its snapshot index."""
        self.history.append(self.root)
        return len(self.history) - 1

    def root_hash(self) -> Hash:
        return self.root if self.root is not None else sha256(b"empty-trie")

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        return self.trie.items(self.root)
