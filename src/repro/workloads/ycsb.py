"""YCSB workload (macro benchmark, Section 3.4.1).

"We implement a simple smart contract which functions as a key-value
storage. The WorkloadClient is based on the YCSB driver: it preloads
each store with a number of records, and supports requests with
different ratios of read and write operations."

Includes the standard YCSB request-distribution generators (uniform,
zipfian, latest).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from ..chain import Transaction
from ..errors import BenchmarkError
from ..core.workload import Workload, preload_state
from ..registry import register_workload

ZIPFIAN_CONSTANT = 0.99


class ZipfianGenerator:
    """Standard YCSB zipfian generator over [0, n)."""

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT) -> None:
        if n < 1:
            raise BenchmarkError("zipfian needs at least one item")
        self.n = n
        self.theta = theta
        self.zeta_n = sum(1.0 / (i ** theta) for i in range(1, n + 1))
        self.alpha = 1.0 / (1.0 - theta)
        zeta2 = sum(1.0 / (i ** theta) for i in range(1, 3))
        self.eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - zeta2 / self.zeta_n)

    def next(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self.zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * (self.eta * u - self.eta + 1) ** self.alpha)


def _record_value(index: int, size: int) -> str:
    seed = hashlib.sha256(f"ycsb-{index}".encode()).hexdigest()
    return (seed * (size // len(seed) + 1))[:size]


@dataclass
class YCSBConfig:
    """Operation mix and data sizing (defaults: YCSB workload A)."""

    record_count: int = 1000
    value_size: int = 100
    read_proportion: float = 0.5
    update_proportion: float = 0.5
    insert_proportion: float = 0.0
    rmw_proportion: float = 0.0
    distribution: str = "zipfian"  # zipfian | uniform | latest

    def validate(self) -> None:
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.rmw_proportion
        )
        if abs(total - 1.0) > 1e-9:
            raise BenchmarkError(f"YCSB proportions sum to {total}, expected 1.0")
        if self.distribution not in ("zipfian", "uniform", "latest"):
            raise BenchmarkError(f"unknown distribution {self.distribution!r}")


@register_workload("ycsb", config_type=YCSBConfig)
class YCSBWorkload(Workload):
    """Key-value operations against the kvstore contract."""

    name = "ycsb"
    required_contracts = ("kvstore",)

    def __init__(self, config: YCSBConfig | None = None) -> None:
        self.config = config or YCSBConfig()
        self.config.validate()
        self._zipf = ZipfianGenerator(self.config.record_count)
        self._insert_counter = self.config.record_count

    @classmethod
    def read_ratio_params(cls, ratio: float) -> dict:
        """``read_ratio`` maps onto the YCSB read/update proportions
        (the paper's "different ratios of read and write operations")."""
        return {"read_proportion": ratio, "update_proportion": 1.0 - ratio}

    def preload(self, cluster) -> None:
        items = (
            (
                f"user{i}".encode(),
                _record_value(i, self.config.value_size).encode(),
            )
            for i in range(self.config.record_count)
        )
        preload_state(cluster, "kvstore", items)

    def _choose_key(self, rng: random.Random) -> str:
        cfg = self.config
        if cfg.distribution == "uniform":
            index = rng.randrange(cfg.record_count)
        elif cfg.distribution == "latest":
            index = max(0, self._insert_counter - 1 - self._zipf.next(rng))
        else:
            index = self._zipf.next(rng)
        return f"user{min(index, cfg.record_count - 1)}"

    def next_transaction(
        self, client_id: str, rng: random.Random, now: float
    ) -> Transaction:
        cfg = self.config
        roll = rng.random()
        if roll < cfg.read_proportion:
            function, args = "read", (self._choose_key(rng),)
        elif roll < cfg.read_proportion + cfg.update_proportion:
            function, args = "write", (
                self._choose_key(rng),
                _record_value(rng.randrange(1 << 30), cfg.value_size),
            )
        elif roll < (
            cfg.read_proportion + cfg.update_proportion + cfg.insert_proportion
        ):
            key = f"user{self._insert_counter}"
            self._insert_counter += 1
            function, args = "write", (
                key,
                _record_value(self._insert_counter, cfg.value_size),
            )
        else:
            function, args = "read_modify_write", (
                self._choose_key(rng),
                _record_value(rng.randrange(1 << 30), cfg.value_size),
            )
        return Transaction.create(
            sender=client_id,
            contract="kvstore",
            function=function,
            args=args,
            submitted_at=now,
        )
