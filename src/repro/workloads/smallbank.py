"""Smallbank OLTP workload (macro benchmark, Section 3.4.1).

Preloads a population of customer accounts and issues the Smallbank
procedures with the standard mix. Transfers carry their amount in the
transaction's ``value`` field so the analytics queries can read money
flows off the chain.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..chain import Transaction
from ..contracts.base import encode_int
from ..errors import BenchmarkError
from ..core.workload import Workload, preload_state
from ..registry import register_workload

#: Standard Smallbank operation mix.
_OPERATIONS = (
    ("transact_savings", 0.15),
    ("deposit_checking", 0.15),
    ("send_payment", 0.25),
    ("write_check", 0.15),
    ("amalgamate", 0.15),
    ("balance", 0.15),
)


@dataclass
class SmallbankConfig:
    n_accounts: int = 1000
    initial_savings: int = 10_000
    initial_checking: int = 10_000
    #: Hotspot: fraction of ops hitting the first `hot_accounts`.
    hot_fraction: float = 0.25
    hot_accounts: int = 100
    #: Weight of the balance query (the mix's only read). None keeps
    #: the standard mix verbatim; when set, the five write procedures
    #: share the remaining weight in their standard ratios. Driven by
    #: the ``read_ratio`` spec field / scenario axis.
    read_fraction: float | None = None


@register_workload("smallbank", config_type=SmallbankConfig)
class SmallbankWorkload(Workload):
    """Banking transactions over account pairs (OLTP, Section 3.4.1)."""

    name = "smallbank"
    required_contracts = ("smallbank",)

    def __init__(self, config: SmallbankConfig | None = None) -> None:
        self.config = config or SmallbankConfig()
        read_fraction = self.config.read_fraction
        if read_fraction is None:
            # Standard mix, untouched: rescaling 0.15 through floats
            # would perturb the cumulative thresholds and change every
            # pinned transaction stream.
            self._operations = _OPERATIONS
        else:
            if not 0.0 <= read_fraction <= 1.0:
                raise BenchmarkError(
                    f"read_fraction must be in [0, 1], got {read_fraction}"
                )
            write_weight = sum(
                weight for name, weight in _OPERATIONS if name != "balance"
            )
            scale = (1.0 - read_fraction) / write_weight
            self._operations = tuple(
                (name, read_fraction if name == "balance" else weight * scale)
                for name, weight in _OPERATIONS
            )

    @classmethod
    def read_ratio_params(cls, ratio: float) -> dict:
        """``read_ratio`` maps onto the balance-query weight."""
        return {"read_fraction": ratio}

    def preload(self, cluster) -> None:
        cfg = self.config
        items = []
        for i in range(cfg.n_accounts):
            customer = f"acct{i}"
            items.append(
                (b"sav:" + customer.encode(), encode_int(cfg.initial_savings))
            )
            items.append(
                (b"chk:" + customer.encode(), encode_int(cfg.initial_checking))
            )
        preload_state(cluster, "smallbank", items)

    def _account(self, rng: random.Random) -> str:
        cfg = self.config
        if rng.random() < cfg.hot_fraction:
            return f"acct{rng.randrange(min(cfg.hot_accounts, cfg.n_accounts))}"
        return f"acct{rng.randrange(cfg.n_accounts)}"

    def next_transaction(
        self, client_id: str, rng: random.Random, now: float
    ) -> Transaction:
        roll = rng.random()
        cumulative = 0.0
        operation = self._operations[-1][0]
        for name, weight in self._operations:
            cumulative += weight
            if roll < cumulative:
                operation = name
                break
        account = self._account(rng)
        amount = rng.randrange(1, 100)
        if operation == "send_payment":
            other = self._account(rng)
            while other == account:
                other = self._account(rng)
            args = (account, other, amount)
            value = amount
        elif operation == "amalgamate":
            other = self._account(rng)
            while other == account:
                other = self._account(rng)
            args = (account, other)
            value = 0
        elif operation == "balance":
            args = (account,)
            value = 0
        elif operation == "transact_savings":
            args = (account, amount)  # always a deposit: keeps runs revert-free
            value = amount
        else:  # deposit_checking / write_check
            args = (account, amount)
            value = amount
        return Transaction.create(
            sender=client_id,
            contract="smallbank",
            function=operation,
            args=args,
            value=value,
            submitted_at=now,
        )
