"""Real Ethereum contract workloads: EtherId, Doubler, WavesPresale.

The three "real workloads found in the Ethereum blockchain" of
Section 3.4.1, driven with realistic operation mixes.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from ..chain import Transaction
from ..contracts.base import encode_int
from ..core.workload import Workload, preload_state
from ..registry import register_workload


@dataclass
class EtherIdConfig:
    n_users: int = 100
    n_seed_domains: int = 200
    initial_balance: int = 1_000_000


@register_workload("etherid", config_type=EtherIdConfig)
class EtherIdWorkload(Workload):
    """Domain registrations, updates, and paid transfers."""

    name = "etherid"
    required_contracts = ("etherid",)

    def __init__(self, config: EtherIdConfig | None = None) -> None:
        self.config = config or EtherIdConfig()
        self._domain_counter = self.config.n_seed_domains

    def preload(self, cluster) -> None:
        cfg = self.config
        items = []
        for i in range(cfg.n_users):
            items.append(
                (f"balance:user{i}".encode(), encode_int(cfg.initial_balance))
            )
        for i in range(cfg.n_seed_domains):
            record = {"owner": f"user{i % cfg.n_users}", "value": "", "price": 50}
            items.append(
                (f"domain:seed{i}.eth".encode(), json.dumps(record).encode())
            )
        preload_state(cluster, "etherid", items)

    def next_transaction(
        self, client_id: str, rng: random.Random, now: float
    ) -> Transaction:
        cfg = self.config
        user = f"user{rng.randrange(cfg.n_users)}"
        roll = rng.random()
        if roll < 0.40:  # register a fresh domain
            domain = f"new{self._domain_counter}.eth"
            self._domain_counter += 1
            function, args = "register", (domain, "", 50)
        elif roll < 0.65:  # modify a seed domain we own
            index = rng.randrange(cfg.n_seed_domains)
            user = f"user{index % cfg.n_users}"  # the preloaded owner
            function, args = "set_value", (f"seed{index}.eth", f"v{now:.0f}")
        elif roll < 0.90:  # buy a seed domain
            index = rng.randrange(cfg.n_seed_domains)
            function, args = "buy", (f"seed{index}.eth",)
        else:  # lookup
            index = rng.randrange(cfg.n_seed_domains)
            function, args = "lookup", (f"seed{index}.eth",)
        return Transaction.create(
            sender=user,
            contract="etherid",
            function=function,
            args=args,
            submitted_at=now,
        )


@register_workload("doubler")
class DoublerWorkload(Workload):
    """Pyramid-scheme entries (Figure 2's contract under load)."""

    name = "doubler"
    required_contracts = ("doubler",)

    def next_transaction(
        self, client_id: str, rng: random.Random, now: float
    ) -> Transaction:
        return Transaction.create(
            sender=f"{client_id}-p{rng.randrange(10_000)}",
            contract="doubler",
            function="enter",
            args=(),
            value=rng.randrange(10, 1000),
            submitted_at=now,
        )


@register_workload("wavespresale")
class WavesPresaleWorkload(Workload):
    """Token sales with occasional transfers and lookups."""

    name = "wavespresale"
    required_contracts = ("wavespresale",)

    def __init__(self) -> None:
        self._sales: list[tuple[int, str]] = []  # (sale_id, owner)
        self._next_sale_id = 0

    def next_transaction(
        self, client_id: str, rng: random.Random, now: float
    ) -> Transaction:
        roll = rng.random()
        if roll < 0.6 or not self._sales:
            sale_id = self._next_sale_id
            self._next_sale_id += 1
            owner = f"{client_id}-buyer{sale_id}"
            self._sales.append((sale_id, owner))
            return Transaction.create(
                sender=owner,
                contract="wavespresale",
                function="new_sale",
                args=(rng.randrange(1, 10_000),),
                submitted_at=now,
            )
        if roll < 0.8:
            index = rng.randrange(len(self._sales))
            sale_id, owner = self._sales[index]
            new_owner = f"{client_id}-buyer{self._next_sale_id}x"
            self._sales[index] = (sale_id, new_owner)
            return Transaction.create(
                sender=owner,
                contract="wavespresale",
                function="transfer_sale",
                args=(sale_id, new_owner),
                submitted_at=now,
            )
        sale_id, _ = self._sales[rng.randrange(len(self._sales))]
        return Transaction.create(
            sender=client_id,
            contract="wavespresale",
            function="get_sale",
            args=(sale_id,),
            submitted_at=now,
        )


@register_workload("donothing")
class DoNothingWorkload(Workload):
    """Consensus-layer microbenchmark: empty transactions (Section 3.4.2)."""

    name = "donothing"
    required_contracts = ("donothing",)

    def next_transaction(
        self, client_id: str, rng: random.Random, now: float
    ) -> Transaction:
        return Transaction.create(
            sender=client_id,
            contract="donothing",
            function="nop",
            args=(),
            submitted_at=now,
        )
