"""Analytics workload: Q1 and Q2 over historical chain data (§3.4.2).

Q1: total transaction value committed between block i and block j.
Q2: largest transaction value involving a given account in (i, j].

Reproduces the paper's client architecture faithfully: the client
fetches data over the simulated network, so "the main bottleneck for
both Q1 and Q2 is the number of network (RPC) requests sent by the
client" (Section 4.2.2). On Ethereum/Parity, Q2 issues one
``getBalance(account, block)`` per block; on Hyperledger it issues a
single VersionKVStore chaincode query (Figure 20), which is the 10x
difference of Figure 13b.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

from ..chain import Block, Transaction
from ..contracts.base import decode_int
from ..crypto.hashing import EMPTY_HASH
from ..errors import BenchmarkError
from ..sim import SimCoroutine, SimFuture, spawn
from ..core.connector import RPCClient, SimChainConnector


@dataclass
class AnalyticsPreload:
    """Description of the preloaded history, with ground truth.

    ``transfers`` records every (height, src, dst, amount) installed,
    so tests can compute reference answers for Q1/Q2 exactly.
    """

    n_blocks: int
    txs_per_block: int
    n_accounts: int
    account_names: list[str]
    transfers: list[tuple[int, str, str, int]]

    def q1_reference(self, start_block: int, end_block: int) -> int:
        """Ground truth for Q1: total value in blocks (start, end]."""
        return sum(
            amount
            for height, _src, _dst, amount in self.transfers
            if start_block < height <= end_block
        )

    def q2_reference_hyperledger(
        self, account: str, start_block: int, end_block: int
    ) -> int:
        """Ground truth for Q2 via per-version deltas (VersionKVStore)."""
        best = 0
        for height, src, dst, amount in self.transfers:
            if start_block <= height <= end_block and account in (src, dst):
                best = max(best, amount)
        return best

    def q2_reference_ethereum(
        self, account: str, start_block: int, end_block: int
    ) -> int:
        """Ground truth for Q2 via per-block balance deltas (JSON-RPC)."""
        per_block: dict[int, int] = {}
        for height, src, dst, amount in self.transfers:
            if src == account:
                per_block[height] = per_block.get(height, 0) - amount
            if dst == account:
                per_block[height] = per_block.get(height, 0) + amount
        best = 0
        for height in range(start_block + 1, end_block + 1):
            best = max(best, abs(per_block.get(height, 0)))
        return best


def preload_history(
    cluster,
    n_blocks: int = 1000,
    txs_per_block: int = 3,
    n_accounts: int = 1000,
    seed: int = 7,
) -> AnalyticsPreload:
    """Install a synthetic transfer history on every node.

    Blocks are appended and executed directly (preloading is not the
    measured part of the experiment). Ethereum/Parity record transfers
    through the Smallbank contract (native account balances queryable
    at historical blocks via their state snapshots); Hyperledger
    records them through the VersionKVStore chaincode, since it "does
    not have APIs to query historical states".
    """
    rng = random.Random(seed)
    accounts = [f"acct{i}" for i in range(n_accounts)]
    use_versionkv = cluster.platform == "hyperledger"
    contract = "versionkv" if use_versionkv else "smallbank"
    for node in cluster.nodes:
        node.deploy(contract)
    if not use_versionkv:
        from ..contracts.base import encode_int
        from ..core.workload import preload_state

        items = []
        for account in accounts:
            items.append((b"chk:" + account.encode(), encode_int(10_000_000)))
            items.append((b"sav:" + account.encode(), encode_int(0)))
        preload_state(cluster, "smallbank", items)

    transfers: list[list[Transaction]] = []
    transfer_log: list[tuple[int, str, str, int]] = []
    for height in range(1, n_blocks + 1):
        txs = []
        for t in range(txs_per_block):
            src = rng.choice(accounts)
            dst = rng.choice(accounts)
            while dst == src:
                dst = rng.choice(accounts)
            amount = rng.randrange(1, 1000)
            transfer_log.append((height, src, dst, amount))
            if use_versionkv:
                tx = Transaction.create(
                    "preloader", "versionkv", "send_value",
                    (src, dst, amount), value=amount,
                    nonce=height * 1_000 + t,
                )
            else:
                tx = Transaction.create(
                    "preloader", "smallbank", "send_payment",
                    (src, dst, amount), value=amount,
                    nonce=height * 1_000 + t,
                )
            txs.append(tx)
        transfers.append(txs)

    for node in cluster.nodes:
        parent = node.chain().tip
        for height, txs in enumerate(transfers, start=1):
            block = Block.build(
                height=height,
                parent_hash=parent.hash,
                transactions=txs,
                state_root=EMPTY_HASH,
                proposer="preloader",
                timestamp=float(height),
            )
            node.chain().add_block(block)
            node._execute_block(block)  # noqa: SLF001 - preload fast path
            node.executed_height = height
            parent = block
    return AnalyticsPreload(
        n_blocks=n_blocks,
        txs_per_block=txs_per_block,
        n_accounts=n_accounts,
        account_names=accounts,
        transfers=transfer_log,
    )


@dataclass
class QueryResult:
    """Outcome of one analytics query run."""

    latency_s: float
    rpc_count: int
    answer: int


class AnalyticsQuery:
    """A straight-line coroutine client driving one analytics query.

    Subclasses implement :meth:`_query` as a generator-coroutine over
    the awaitable connector API and return the answer. ``window`` is
    the client-side pipelining depth: how many RPCs may be in flight at
    once. The default of 1 reproduces the paper's sequential client
    ("one RPC at a time"); larger windows overlap round trips without
    changing the answer or the RPC count.
    """

    def __init__(self, cluster, client_name: str, window: int = 1) -> None:
        if window < 1:
            raise BenchmarkError(f"window must be >= 1, got {window}")
        self.cluster = cluster
        self.scheduler = cluster.scheduler
        self.client = RPCClient(client_name, cluster.scheduler, cluster.network)
        server = cluster.node_ids()[0]
        self.connector = SimChainConnector(cluster, self.client, server)
        self.window = window
        self.rpc_count = 0

    def run(self) -> QueryResult:
        """Drive the query to completion; returns latency/RPC count."""
        started_at = self.scheduler.now
        future = spawn(self._query())
        # Drive the simulation until the query completes.
        while not future.done:
            if not self.scheduler.step():
                raise BenchmarkError("query never completed (no events left)")
        return QueryResult(
            latency_s=self.scheduler.now - started_at,
            rpc_count=self.rpc_count,
            answer=future.result(),
        )

    def _query(self) -> SimCoroutine:  # pragma: no cover - overridden
        raise NotImplementedError

    def _issue(self, future: SimFuture) -> SimFuture:
        """Count one RPC as it goes on the wire."""
        self.rpc_count += 1
        return future

    def _windowed(self, request, items, fold) -> SimCoroutine:
        """Pipeline ``request(item)`` RPCs with a bounded window.

        Issues at most ``self.window`` requests at a time (pulling the
        next one as each reply lands) and feeds replies to ``fold`` in
        item order — so order-sensitive folds like Q2's balance deltas
        see the same sequence a one-at-a-time client would.
        """
        pending: deque[SimFuture] = deque()
        issued = 0
        while issued < len(items) or pending:
            while issued < len(items) and len(pending) < self.window:
                pending.append(self._issue(request(items[issued])))
                issued += 1
            fold((yield pending.popleft()))


class Q1TotalValue(AnalyticsQuery):
    """Q1: sum of transaction values in blocks (start, end]."""

    def __init__(
        self, cluster, start_block: int, end_block: int, tag: str = "",
        window: int = 1,
    ) -> None:
        super().__init__(cluster, f"q1-client{tag}", window)
        self.heights = list(range(start_block + 1, end_block + 1))

    def _query(self) -> SimCoroutine:
        total = 0

        def fold(reply: dict) -> None:
            nonlocal total
            total += sum(tx["value"] for tx in reply.get("txs", []))

        yield self._windowed(
            self.connector.get_block_transactions, self.heights, fold
        )
        return total


class Q2LargestTxEthereum(AnalyticsQuery):
    """Q2 on Ethereum/Parity: one getBalance RPC per block.

    The largest balance delta of the account across consecutive blocks
    bounds the largest transaction involving it, which is how the
    JSON-RPC-only client must compute it (Section 4.2.2). Under the
    callback API this was a pyramid of nested ``on_reply`` closures;
    awaitables collapse it to a ``for`` loop over heights with a
    bounded in-flight window.
    """

    def __init__(
        self, cluster, account: str, start_block: int, end_block: int, tag: str = "",
        window: int = 1,
    ) -> None:
        super().__init__(cluster, f"q2-client{tag}", window)
        self.account = account
        self.heights = list(range(start_block, end_block + 1))

    def _get_balance(self, height: int) -> SimFuture:
        return self.connector.get_balance(
            "smallbank", b"chk:" + self.account.encode(), height
        )

    def _query(self) -> SimCoroutine:
        previous: int | None = None
        largest = 0

        def fold(reply: dict) -> None:
            nonlocal previous, largest
            balance = decode_int(reply.get("value"))
            if previous is not None:
                largest = max(largest, abs(balance - previous))
            previous = balance

        yield self._windowed(self._get_balance, self.heights, fold)
        return largest


class Q2LargestTxHyperledger(AnalyticsQuery):
    """Q2 on Hyperledger: a single VersionKVStore chaincode query."""

    def __init__(
        self, cluster, account: str, start_block: int, end_block: int, tag: str = "",
        window: int = 1,
    ) -> None:
        super().__init__(cluster, f"q2-client{tag}", window)
        self.account = account
        self.start_block = start_block
        self.end_block = end_block

    def _query(self) -> SimCoroutine:
        reply = yield self._issue(
            self.connector.query(
                "versionkv",
                "account_block_range",
                (self.account, self.start_block, self.end_block + 1),
            )
        )
        versions = reply.get("output") or []
        largest = 0
        previous: int | None = None
        for record in reversed(versions):  # oldest first
            if previous is not None:
                largest = max(largest, abs(record["balance"] - previous))
            previous = record["balance"]
        return largest


def run_q1(
    cluster, start_block: int, end_block: int, tag: str = "", window: int = 1
) -> QueryResult:
    """Q1: total transaction value in blocks (start, end]."""
    return Q1TotalValue(cluster, start_block, end_block, tag, window).run()


def run_q2(
    cluster, account: str, start_block: int, end_block: int, tag: str = "",
    window: int = 1,
) -> QueryResult:
    """Q2: largest transfer involving ``account`` in (start, end] —
    per-block RPCs on Ethereum/Parity, one chaincode query on
    Hyperledger."""
    if cluster.platform == "hyperledger":
        return Q2LargestTxHyperledger(
            cluster, account, start_block, end_block, tag, window
        ).run()
    return Q2LargestTxEthereum(
        cluster, account, start_block, end_block, tag, window
    ).run()
