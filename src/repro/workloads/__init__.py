"""Benchmark workloads: macro (YCSB, Smallbank, real contracts) and
micro (DoNothing, IOHeavy, CPUHeavy, Analytics).

Workload classes register themselves with
:data:`repro.registry.WORKLOADS` via :func:`~repro.registry.
register_workload`; ``make_workload`` resolves names through that
registry, so plugin workloads become available to the driver, CLI, and
scenario files the moment their module is imported.
"""

from __future__ import annotations

from ..registry import WORKLOADS
from .analytics import (
    AnalyticsPreload,
    QueryResult,
    preload_history,
    run_q1,
    run_q2,
)
from .contracts import (
    DoNothingWorkload,
    DoublerWorkload,
    EtherIdConfig,
    EtherIdWorkload,
    WavesPresaleWorkload,
)
from .smallbank import SmallbankConfig, SmallbankWorkload
from .ycsb import YCSBConfig, YCSBWorkload, ZipfianGenerator


def make_workload(name: str, **kwargs):
    """Instantiate a driver workload by registry name.

    Keyword arguments are routed through the workload's config
    dataclass (e.g. ``make_workload("ycsb", record_count=1000)``).
    """
    return WORKLOADS.get(name).create(**kwargs)


def available_workloads() -> list[str]:
    """Names of every registered workload."""
    return WORKLOADS.names()


__all__ = [
    "AnalyticsPreload",
    "QueryResult",
    "preload_history",
    "run_q1",
    "run_q2",
    "DoNothingWorkload",
    "DoublerWorkload",
    "EtherIdConfig",
    "EtherIdWorkload",
    "WavesPresaleWorkload",
    "SmallbankConfig",
    "SmallbankWorkload",
    "YCSBConfig",
    "YCSBWorkload",
    "ZipfianGenerator",
    "available_workloads",
    "make_workload",
]
