"""Benchmark workloads: macro (YCSB, Smallbank, real contracts) and
micro (DoNothing, IOHeavy, CPUHeavy, Analytics)."""

from __future__ import annotations

from ..errors import BenchmarkError
from .analytics import (
    AnalyticsPreload,
    QueryResult,
    preload_history,
    run_q1,
    run_q2,
)
from .contracts import (
    DoNothingWorkload,
    DoublerWorkload,
    EtherIdConfig,
    EtherIdWorkload,
    WavesPresaleWorkload,
)
from .smallbank import SmallbankConfig, SmallbankWorkload
from .ycsb import YCSBConfig, YCSBWorkload, ZipfianGenerator

_WORKLOADS = {
    "ycsb": YCSBWorkload,
    "smallbank": SmallbankWorkload,
    "etherid": EtherIdWorkload,
    "doubler": DoublerWorkload,
    "wavespresale": WavesPresaleWorkload,
    "donothing": DoNothingWorkload,
}


def make_workload(name: str, **kwargs):
    """Instantiate a driver workload by name."""
    workload_type = _WORKLOADS.get(name)
    if workload_type is None:
        raise BenchmarkError(
            f"unknown workload {name!r}; available: {sorted(_WORKLOADS)}"
        )
    if name == "ycsb" and kwargs:
        return YCSBWorkload(YCSBConfig(**kwargs))
    if name == "smallbank" and kwargs:
        return SmallbankWorkload(SmallbankConfig(**kwargs))
    if name == "etherid" and kwargs:
        return EtherIdWorkload(EtherIdConfig(**kwargs))
    return workload_type()


__all__ = [
    "AnalyticsPreload",
    "QueryResult",
    "preload_history",
    "run_q1",
    "run_q2",
    "DoNothingWorkload",
    "DoublerWorkload",
    "EtherIdConfig",
    "EtherIdWorkload",
    "WavesPresaleWorkload",
    "SmallbankConfig",
    "SmallbankWorkload",
    "YCSBConfig",
    "YCSBWorkload",
    "ZipfianGenerator",
    "make_workload",
]
