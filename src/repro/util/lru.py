"""Least-recently-used cache.

Ethereum "caches the states in memory (using LRU for eviction policy)"
(Section 4.2.2); this is that cache, used between the Patricia trie and
the LevelDB-preset LSM store in the IOHeavy configuration.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Bounded mapping evicting the least-recently-used entry.

    >>> cache = LRUCache(capacity=2)
    >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
    >>> cache.get("a") is None   # evicted
    True
    >>> cache.get("c")
    3
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("LRU capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: K) -> V | None:
        if key not in self._data:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key: K, value: V) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
