"""Pending-transaction pool.

FIFO with id-deduplication. Proposers draw batches bounded either by a
transaction count (Hyperledger's ``batchSize``) or by a gas budget
(Ethereum's ``gasLimit``), both of which the paper tunes to control
block size (Figure 15).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterable

from .transaction import Transaction


class Mempool:
    """Ordered pool of not-yet-committed transactions."""

    def __init__(self, capacity: int | None = None) -> None:
        self._pool: "OrderedDict[str, Transaction]" = OrderedDict()
        self._arrivals: dict[str, float] = {}
        self.capacity = capacity
        self.rejected_full = 0
        #: Cluster-wide lifecycle tracer (attached by the platform node).
        #: Admission is stamped here rather than in ``_on_send_tx``
        #: because Parity's signing queue and every platform's gossip
        #: path admit transactions without going through the default
        #: ingress handler.
        self.tracer = None

    def add(self, tx: Transaction, now: float = 0.0) -> bool:
        """Queue ``tx``; returns False on duplicate or full pool."""
        if tx.tx_id in self._pool:
            return False
        if self.capacity is not None and len(self._pool) >= self.capacity:
            self.rejected_full += 1
            return False
        self._pool[tx.tx_id] = tx
        self._arrivals[tx.tx_id] = now
        if self.tracer is not None:
            self.tracer.record_admit(tx.tx_id, now)
        return True

    def add_many(self, txs: Iterable[Transaction], now: float = 0.0) -> int:
        return sum(self.add(tx, now) for tx in txs)

    def oldest_pending_age(self, now: float) -> float:
        """Age of the longest-waiting transaction (0 when empty).

        PBFT implementations (Fabric v0.6's included) watchdog each
        request: if the oldest request sits unordered past the request
        timeout, replicas suspect the primary and trigger a view
        change. Under sustained overload this is what melts the
        protocol down (Section 4.1.2).
        """
        if not self._pool:
            return 0.0
        first_tx_id = next(iter(self._pool))
        return now - self._arrivals.get(first_tx_id, now)

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._pool

    def peek_batch(
        self,
        max_count: int,
        gas_budget: int | None = None,
        gas_estimate: Callable[[Transaction], int] | None = None,
    ) -> list[Transaction]:
        """First transactions respecting count and optional gas budget."""
        batch: list[Transaction] = []
        remaining_gas = gas_budget
        for tx in self._pool.values():
            if len(batch) >= max_count:
                break
            if remaining_gas is not None and gas_estimate is not None:
                cost = gas_estimate(tx)
                if cost > remaining_gas and batch:
                    break
                remaining_gas -= cost
            batch.append(tx)
        return batch

    def remove(self, tx_ids: Iterable[str]) -> int:
        """Drop committed transactions; returns how many were present."""
        removed = 0
        for tx_id in tx_ids:
            if self._pool.pop(tx_id, None) is not None:
                self._arrivals.pop(tx_id, None)
                removed += 1
        return removed

    def clear(self) -> None:
        self._pool.clear()
        self._arrivals.clear()
