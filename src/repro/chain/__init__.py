"""Chain substrate: transactions, blocks, fork-aware chain, mempool."""

from .block import GENESIS_PARENT, Block, BlockHeader, genesis_block
from .blockchain import Blockchain
from .mempool import Mempool
from .transaction import Receipt, Transaction, TxStatus

__all__ = [
    "GENESIS_PARENT",
    "Block",
    "BlockHeader",
    "genesis_block",
    "Blockchain",
    "Mempool",
    "Receipt",
    "Transaction",
    "TxStatus",
]
