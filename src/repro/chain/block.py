"""Blocks and block headers.

The header carries the two Merkle commitments described in the paper's
data-model layer (Figure 1): the transaction root (classic Merkle tree)
and the state root (Patricia-Merkle or Bucket-Merkle depending on the
platform), plus consensus metadata — PoW difficulty/nonce, PoA slot, or
PBFT view — in a protocol-agnostic ``consensus_meta`` mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..crypto.hashing import EMPTY_HASH, Hash, hash_items, short_hex
from ..crypto.merkle import merkle_root
from .transaction import Transaction

GENESIS_PARENT = b"\x00" * 32


@dataclass(frozen=True)
class BlockHeader:
    """Immutable block header; identity is the hash of its fields."""

    height: int
    parent_hash: Hash
    tx_root: Hash
    state_root: Hash
    proposer: str
    timestamp: float
    consensus_meta: tuple[tuple[str, str], ...] = ()

    def block_hash(self) -> Hash:
        """Cryptographic identity: the hash over every header field."""
        return hash_items(
            self.height.to_bytes(8, "big"),
            self.parent_hash,
            self.tx_root,
            self.state_root,
            self.proposer.encode(),
            repr(self.timestamp).encode(),
            repr(self.consensus_meta).encode(),
        )

    def meta(self, key: str, default: str = "") -> str:
        """Read one consensus_meta entry (PoW nonce, PBFT view, ...)."""
        for k, v in self.consensus_meta:
            if k == key:
                return v
        return default


@dataclass
class Block:
    """A header plus its transaction body."""

    header: BlockHeader
    transactions: list[Transaction] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        height: int,
        parent_hash: Hash,
        transactions: list[Transaction],
        state_root: Hash,
        proposer: str,
        timestamp: float,
        consensus_meta: dict[str, Any] | None = None,
    ) -> "Block":
        """Assemble a block: computes the transaction Merkle root and
        freezes the consensus metadata into the header."""
        meta = tuple(sorted((k, str(v)) for k, v in (consensus_meta or {}).items()))
        header = BlockHeader(
            height=height,
            parent_hash=parent_hash,
            tx_root=merkle_root([tx.encode() for tx in transactions]),
            state_root=state_root,
            proposer=proposer,
            timestamp=timestamp,
            consensus_meta=meta,
        )
        return cls(header=header, transactions=list(transactions))

    @property
    def hash(self) -> Hash:
        """The header hash (block identity)."""
        return self.header.block_hash()

    @property
    def height(self) -> int:
        """Convenience accessor for the header height."""
        return self.header.height

    def size_bytes(self) -> int:
        """Wire size estimate: fixed header cost plus transaction bodies."""
        return 320 + sum(tx.size_bytes() for tx in self.transactions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Block h={self.height} {short_hex(self.hash)} "
            f"txs={len(self.transactions)} by={self.header.proposer}>"
        )


def genesis_block(chain_id: str = "repro") -> Block:
    """Deterministic genesis for a named chain."""
    header = BlockHeader(
        height=0,
        parent_hash=GENESIS_PARENT,
        tx_root=EMPTY_HASH,
        state_root=EMPTY_HASH,
        proposer=f"genesis:{chain_id}",
        timestamp=0.0,
    )
    return Block(header=header, transactions=[])
