"""Fork-aware chain store.

Keeps *every* block ever received — including blocks on abandoned
branches — because the paper's security metric is exactly the gap
between total blocks produced and blocks that end up on the main branch
(Section 3.3: "we quantify security as the number of blocks in the
forks"). The main branch is selected by the longest-chain rule with
first-seen tie-breaking, which is what Ethereum's testnet effectively
does at the paper's scales; PBFT/PoA chains simply never fork.
"""

from __future__ import annotations

from typing import Iterator

from ..crypto.hashing import Hash
from ..errors import InvalidBlock
from .block import Block, genesis_block
from .transaction import Transaction


class Blockchain:
    """Block DAG with main-branch tracking."""

    def __init__(self, chain_id: str = "repro") -> None:
        self.genesis = genesis_block(chain_id)
        genesis_hash = self.genesis.hash
        self._blocks: dict[Hash, Block] = {genesis_hash: self.genesis}
        self._children: dict[Hash, list[Hash]] = {genesis_hash: []}
        self._main: list[Hash] = [genesis_hash]
        self._main_set: set[Hash] = {genesis_hash}
        self._orphans: dict[Hash, list[Block]] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def tip(self) -> Block:
        """Head of the main branch."""
        return self._blocks[self._main[-1]]

    @property
    def height(self) -> int:
        """Main-branch height (genesis = 0)."""
        return len(self._main) - 1

    def block_by_hash(self, block_hash: Hash) -> Block | None:
        """Any stored block (main branch or fork), or None."""
        return self._blocks.get(block_hash)

    def block_by_height(self, height: int) -> Block | None:
        """Main-branch block at ``height``."""
        if 0 <= height < len(self._main):
            return self._blocks[self._main[height]]
        return None

    def contains(self, block_hash: Hash) -> bool:
        """Whether the block is stored (on any branch)."""
        return block_hash in self._blocks

    def on_main_branch(self, block_hash: Hash) -> bool:
        """Whether the block is currently on the main branch."""
        return block_hash in self._main_set

    def blocks_in_range(self, start: int, end: int) -> list[Block]:
        """Main-branch blocks with start < height <= end (paper's (h, t])."""
        out = []
        for height in range(start + 1, end + 1):
            block = self.block_by_height(height)
            if block is not None:
                out.append(block)
        return out

    def main_branch(self) -> Iterator[Block]:
        """Genesis-to-tip iteration over the current main branch."""
        for block_hash in self._main:
            yield self._blocks[block_hash]

    def transactions_in_range(self, start: int, end: int) -> Iterator[Transaction]:
        """Transactions in main-branch blocks with start < height <= end."""
        for block in self.blocks_in_range(start, end):
            yield from block.transactions

    # ------------------------------------------------------------------
    # Fork / security metrics (Figure 10)
    # ------------------------------------------------------------------
    @property
    def total_blocks(self) -> int:
        """All non-genesis blocks ever stored, forks included."""
        return len(self._blocks) - 1

    @property
    def main_branch_blocks(self) -> int:
        """Non-genesis blocks on the main branch."""
        return len(self._main) - 1

    @property
    def fork_blocks(self) -> int:
        """Blocks produced but not (currently) on the main branch."""
        return self.total_blocks - self.main_branch_blocks

    def fork_ratio(self) -> float:
        """main-branch blocks / total blocks — the paper's security ratio.

        Lower means more exposure to double spending / selfish mining.
        """
        if self.total_blocks == 0:
            return 1.0
        return self.main_branch_blocks / self.total_blocks

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_block(self, block: Block) -> bool:
        """Store ``block``; returns True if the main branch changed.

        Blocks whose parent is unknown are parked as orphans and
        connected automatically when the parent arrives (standard
        behaviour for gossip-based block propagation).
        """
        block_hash = block.hash
        if block_hash in self._blocks:
            return False
        parent_hash = block.header.parent_hash
        if parent_hash not in self._blocks:
            self._orphans.setdefault(parent_hash, []).append(block)
            return False
        parent = self._blocks[parent_hash]
        if block.height != parent.height + 1:
            raise InvalidBlock(
                f"block height {block.height} does not extend parent "
                f"height {parent.height}"
            )
        self._blocks[block_hash] = block
        self._children[block_hash] = []
        self._children[parent_hash].append(block_hash)
        reorganized = self._maybe_reorg(block)
        # Connect any orphans waiting on this block.
        for orphan in self._orphans.pop(block_hash, []):
            reorganized = self.add_block(orphan) or reorganized
        return reorganized

    def _maybe_reorg(self, block: Block) -> bool:
        """Adopt ``block``'s branch if it is strictly longer (first-seen ties)."""
        if block.height <= self.height:
            return False
        # Walk back to the fork point collecting the new suffix.
        suffix: list[Hash] = []
        cursor: Block | None = block
        while cursor is not None and not self.on_main_branch(cursor.hash):
            suffix.append(cursor.hash)
            cursor = self._blocks.get(cursor.header.parent_hash)
        if cursor is None:
            raise InvalidBlock("branch does not connect to the main chain")
        fork_height = cursor.height
        del self._main[fork_height + 1 :]
        self._main.extend(reversed(suffix))
        self._main_set = set(self._main)
        return True

    def orphan_count(self) -> int:
        """Blocks parked while waiting for their parent to arrive."""
        return sum(len(blocks) for blocks in self._orphans.values())
