"""Transactions and receipts.

A blockchain transaction here matches the paper's definition — "a
sequence of operations applied on some states" — encoded as a contract
invocation: target contract, function name, arguments, and an optional
money transfer. Every transaction is signed by its sender; platforms
charge CPU for signature work where their real counterparts do.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from ..crypto.hashing import hash_items
from ..crypto.signatures import Signature

_tx_counter = itertools.count()


def _encode_args(args: tuple[Any, ...]) -> bytes:
    return repr(args).encode()


@dataclass
class Transaction:
    """One signed state transition request."""

    tx_id: str
    sender: str
    contract: str
    function: str
    args: tuple[Any, ...]
    value: int = 0
    nonce: int = 0
    signature: Signature | None = None
    submitted_at: float = 0.0

    @classmethod
    def create(
        cls,
        sender: str,
        contract: str,
        function: str,
        args: tuple[Any, ...] = (),
        value: int = 0,
        nonce: int | None = None,
        submitted_at: float = 0.0,
    ) -> "Transaction":
        """Build a transaction with a content-derived id."""
        if nonce is None:
            nonce = next(_tx_counter)
        digest = hash_items(
            sender.encode(),
            contract.encode(),
            function.encode(),
            _encode_args(args),
            value.to_bytes(16, "big", signed=True),
            nonce.to_bytes(16, "big"),
        )
        return cls(
            tx_id=digest.hex(),
            sender=sender,
            contract=contract,
            function=function,
            args=args,
            value=value,
            nonce=nonce,
            submitted_at=submitted_at,
        )

    def signing_payload(self) -> bytes:
        """Bytes covered by the sender's signature."""
        return self.tx_id.encode()

    def encode(self) -> bytes:
        """Canonical encoding used for Merkle leaves."""
        return self.tx_id.encode()

    def size_bytes(self) -> int:
        """Approximate wire size (fields + signature)."""
        return (
            110  # fixed header: ids, nonce, value, framing
            + len(self.sender)
            + len(self.contract)
            + len(self.function)
            + len(_encode_args(self.args))
            + (self.signature.size_bytes() if self.signature else 0)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tx {self.tx_id[:8]} {self.contract}.{self.function}>"


@dataclass
class Receipt:
    """Outcome of executing one transaction inside a committed block."""

    tx_id: str
    block_height: int
    success: bool
    gas_used: int = 0
    output: Any = None
    error: str = ""
    committed_at: float = 0.0


@dataclass
class TxStatus:
    """Client-side view of a submitted transaction's lifecycle."""

    tx: Transaction
    submitted_at: float
    confirmed_at: float | None = None
    receipt: Receipt | None = None

    @property
    def latency(self) -> float | None:
        if self.confirmed_at is None:
            return None
        return self.confirmed_at - self.submitted_at
