"""EVM assembly programs for the execution-layer microbenchmarks.

These are the Solidity-analogue contract bodies the paper deploys on
Ethereum and Parity: CPUHeavy (quicksort over a descending array),
DoNothing (accept and return), and a key-value store body used to
validate gas parity with the native contract runtime.

Stack notation in the comments is bottom-to-top: ``[a, b, c]`` means
``c`` is on top. Operand conventions (see ``vm.py``):

* ``LT``/``GT``/``SUB`` pop top as the *right* operand: ``[a, b] SUB``
  leaves ``a - b``.
* ``MSTORE`` pops the address from the top, then the value:
  ``[value, addr] MSTORE`` performs ``mem[addr] = value``.
* ``JUMPI`` pops the target from the top, then the condition.
"""

from __future__ import annotations

from .assembler import assemble

# ---------------------------------------------------------------------------
# DoNothing: "accepts a transaction and returns immediately" (Section 3.4.2)
# ---------------------------------------------------------------------------
DONOTHING_ASM = """
    PUSH 1
    RETURN
"""

# ---------------------------------------------------------------------------
# KVStore: write args[1] under key args[0].
# ---------------------------------------------------------------------------
KVSTORE_WRITE_ASM = """
    PUSH 1
    CALLDATALOAD      ; [value]
    PUSH 0
    CALLDATALOAD      ; [value, key]
    SSTORE            ; storage[key] = value
    PUSH 1
    RETURN
"""

KVSTORE_READ_ASM = """
    PUSH 0
    CALLDATALOAD
    SLOAD
    RETURN
"""

# ---------------------------------------------------------------------------
# CPUHeavy: mem[0..n-1] initialized descending (mem[i] = n - i), then
# quicksorted in place with an explicit segment stack; returns mem[0],
# which equals 1 after a correct sort. args[0] = n, requires n >= 1.
#
# Memory layout: [0..n-1] the array; [n+1..] the segment stack of
# (lo, hi) pairs. The stack-pointer ``sp`` names the next free slot and
# lives on the data stack as the main loop's single invariant entry.
# ---------------------------------------------------------------------------
CPUHEAVY_ASM = """
    ; ---- init: for i in 0..n-1: mem[i] = n - i ----
    PUSH 0            ; [i=0]
init_loop:
    DUP1              ; [i, i]
    PUSH 0
    CALLDATALOAD      ; [i, i, n]
    LT                ; [i, i<n]
    ISZERO
    PUSH @init_done
    JUMPI             ; [i]
    PUSH 0
    CALLDATALOAD      ; [i, n]
    DUP2              ; [i, n, i]
    SUB               ; [i, n-i]
    DUP2              ; [i, n-i, i]
    MSTORE            ; mem[i] = n-i -> [i]
    PUSH 1
    ADD               ; [i+1]
    PUSH @init_loop
    JUMP
init_done:
    POP               ; []

    ; ---- push initial segment (0, n-1); sp starts at n+3 ----
    PUSH 0            ; [0]
    PUSH 0
    CALLDATALOAD
    PUSH 1
    ADD               ; [0, n+1]
    MSTORE            ; mem[n+1] = 0
    PUSH 0
    CALLDATALOAD
    PUSH 1
    SUB               ; [n-1]
    PUSH 0
    CALLDATALOAD
    PUSH 2
    ADD               ; [n-1, n+2]
    MSTORE            ; mem[n+2] = n-1
    PUSH 0
    CALLDATALOAD
    PUSH 3
    ADD               ; [sp = n+3]

main_loop:
    ; invariant stack: [sp]
    DUP1              ; [sp, sp]
    PUSH 0
    CALLDATALOAD
    PUSH 1
    ADD               ; [sp, sp, n+1]
    EQ                ; [sp, sp==n+1]
    PUSH @done
    JUMPI             ; [sp]
    ; pop pair: hi = mem[sp-1], lo = mem[sp-2]
    PUSH 1
    SUB               ; [sp-1]
    DUP1
    MLOAD             ; [sp-1, hi]
    SWAP1             ; [hi, sp-1]
    PUSH 1
    SUB               ; [hi, sp-2]
    DUP1
    MLOAD             ; [hi, sp-2, lo]
    SWAP1             ; [hi, lo, sp']
    SWAP2             ; [sp', lo, hi]
    ; if not (lo < hi): segment of size <= 1, skip
    DUP2              ; [sp', lo, hi, lo]
    DUP2              ; [sp', lo, hi, lo, hi]
    LT                ; [sp', lo, hi, lo<hi]
    ISZERO
    PUSH @skip_segment
    JUMPI             ; [sp', lo, hi]

    ; ---- pivot selection: move the middle element to hi so the
    ;      descending input does not trigger quadratic behaviour ----
    DUP2              ; [sp', lo, hi, lo]
    DUP2              ; [sp', lo, hi, lo, hi]
    ADD               ; [sp', lo, hi, lo+hi]
    PUSH 2
    DIV               ; [sp', lo, hi, mid]
    DUP1
    MLOAD             ; [.., mid, mem_mid]
    DUP3              ; [.., mid, mem_mid, hi]
    MLOAD             ; [.., mid, mem_mid, mem_hi]
    DUP3              ; [.., mid, mem_mid, mem_hi, mid]
    MSTORE            ; mem[mid] = mem_hi -> [sp', lo, hi, mid, mem_mid]
    DUP3              ; [.., mid, mem_mid, hi]
    MSTORE            ; mem[hi] = mem_mid -> [sp', lo, hi, mid]
    POP               ; [sp', lo, hi]

    ; ---- partition (Lomuto): pivot = mem[hi]; i = lo-1; j = lo ----
    DUP1              ; [sp', lo, hi, hi]
    MLOAD             ; [sp', lo, hi, pivot]
    DUP3              ; [sp', lo, hi, pivot, lo]
    PUSH 1
    SUB               ; [sp', lo, hi, pivot, i]   (i = lo-1, may wrap; only
                      ; ever used after +1, which unwraps)
    DUP4              ; [sp', lo, hi, pivot, i, j=lo]
part_loop:
    DUP1              ; [.., i, j, j]
    DUP5              ; [.., i, j, j, hi]
    LT                ; [.., i, j, j<hi]
    ISZERO
    PUSH @part_done
    JUMPI             ; [sp', lo, hi, pivot, i, j]
    DUP1
    MLOAD             ; [.., i, j, mem_j]
    DUP4              ; [.., i, j, mem_j, pivot]
    GT                ; [.., i, j, mem_j>pivot]
    PUSH @part_next
    JUMPI             ; [sp', lo, hi, pivot, i, j]
    ; mem[j] <= pivot: i += 1, swap mem[i] <-> mem[j]
    SWAP1             ; [.., pivot, j, i]
    PUSH 1
    ADD               ; [.., pivot, j, i+1]
    SWAP1             ; [.., pivot, i, j]   (i renamed)
    DUP2              ; [.., i, j, i]
    MLOAD             ; [.., i, j, mem_i]
    DUP2              ; [.., i, j, mem_i, j]
    MLOAD             ; [.., i, j, mem_i, mem_j]
    DUP4              ; [.., i, j, mem_i, mem_j, i]
    MSTORE            ; mem[i] = mem_j -> [.., i, j, mem_i]
    DUP2              ; [.., i, j, mem_i, j]
    MSTORE            ; mem[j] = mem_i -> [sp', lo, hi, pivot, i, j]
part_next:
    PUSH 1
    ADD               ; [.., i, j+1]
    PUSH @part_loop
    JUMP
part_done:
    ; stack: [sp', lo, hi, pivot, i, j]
    POP               ; [sp', lo, hi, pivot, i]
    PUSH 1
    ADD               ; [sp', lo, hi, pivot, p]
    SWAP1
    POP               ; [sp', lo, hi, p]
    ; swap mem[p] <-> mem[hi]
    DUP1
    MLOAD             ; [.., p, mem_p]
    DUP3              ; [.., p, mem_p, hi]
    MLOAD             ; [.., p, mem_p, mem_hi]
    DUP3              ; [.., p, mem_p, mem_hi, p]
    MSTORE            ; mem[p] = mem_hi -> [sp', lo, hi, p, mem_p]
    DUP3              ; [.., p, mem_p, hi]
    MSTORE            ; mem[hi] = mem_p -> [sp', lo, hi, p]

    ; ---- push left segment (lo, p-1) only when lo < p (avoids wrap) ----
    DUP1              ; [sp', lo, hi, p, p]
    DUP4              ; [sp', lo, hi, p, p, lo]
    SWAP1             ; [sp', lo, hi, p, lo, p]
    LT                ; [sp', lo, hi, p, lo<p]
    ISZERO
    PUSH @no_left
    JUMPI             ; [sp', lo, hi, p]
    DUP3              ; [.., p, lo]
    DUP5              ; [.., p, lo, sp']
    MSTORE            ; mem[sp'] = lo -> [sp', lo, hi, p]
    DUP1
    PUSH 1
    SUB               ; [.., p, p-1]
    DUP5              ; [.., p, p-1, sp']
    PUSH 1
    ADD               ; [.., p, p-1, sp'+1]
    MSTORE            ; mem[sp'+1] = p-1 -> [sp', lo, hi, p]
    SWAP3             ; [p, lo, hi, sp']
    PUSH 2
    ADD               ; [p, lo, hi, sp'+2]
    SWAP3             ; [sp'+2, lo, hi, p]
no_left:
    ; ---- push right segment (p+1, hi); degenerate pairs are skipped
    ;      by the lo<hi check when popped ----
    DUP1
    PUSH 1
    ADD               ; [SP, lo, hi, p, p+1]
    DUP5              ; [.., p+1, SP]
    MSTORE            ; mem[SP] = p+1 -> [SP, lo, hi, p]
    DUP2              ; [SP, lo, hi, p, hi]
    DUP5              ; [.., hi, SP]
    PUSH 1
    ADD               ; [.., hi, SP+1]
    MSTORE            ; mem[SP+1] = hi -> [SP, lo, hi, p]
    POP
    POP
    POP               ; [SP]
    PUSH 2
    ADD               ; [SP+2]
    PUSH @main_loop
    JUMP
skip_segment:
    ; stack: [sp', lo, hi]
    POP
    POP               ; [sp']
    PUSH @main_loop
    JUMP
done:
    POP               ; []
    PUSH 0
    MLOAD             ; [mem[0]]
    RETURN
"""


def donothing_code() -> bytes:
    return assemble(DONOTHING_ASM)


def kvstore_write_code() -> bytes:
    return assemble(KVSTORE_WRITE_ASM)


def kvstore_read_code() -> bytes:
    return assemble(KVSTORE_READ_ASM)


def cpuheavy_code() -> bytes:
    return assemble(CPUHEAVY_ASM)
