"""Two-pass assembler for the miniature EVM.

Source format, one instruction per line::

    ; comments start with a semicolon
    start:              ; labels end with a colon
        PUSH 5
        PUSH @start     ; @label pushes the label's bytecode offset
        JUMP

Labels assemble to a ``JUMPDEST`` at their position, so jumping to a
label is always valid. ``PUSH`` takes a decimal or ``0x``-hex
immediate, or a ``@label`` reference.
"""

from __future__ import annotations

from ..errors import AssemblerError
from . import opcodes as op


def assemble(source: str) -> bytes:
    """Assemble ``source`` text into bytecode."""
    instructions = _parse(source)
    labels = _collect_labels(instructions)
    code = bytearray()
    for kind, payload, line_no in instructions:
        if kind == "label":
            code.append(op.JUMPDEST)
        elif kind == "op":
            code.append(payload)
        elif kind == "push":
            code.append(op.PUSH)
            value, is_label = payload
            if is_label:
                if value not in labels:
                    raise AssemblerError(f"line {line_no}: unknown label @{value}")
                immediate = labels[value]
            else:
                immediate = value
            if not 0 <= immediate < (1 << (8 * op.PUSH_IMMEDIATE_BYTES)):
                raise AssemblerError(
                    f"line {line_no}: immediate {immediate} out of range"
                )
            code += immediate.to_bytes(op.PUSH_IMMEDIATE_BYTES, "big")
    return bytes(code)


def _parse(source: str) -> list[tuple[str, object, int]]:
    instructions: list[tuple[str, object, int]] = []
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            label = line[:-1].strip()
            if not label.isidentifier():
                raise AssemblerError(f"line {line_no}: bad label {label!r}")
            instructions.append(("label", label, line_no))
            continue
        parts = line.split()
        mnemonic = parts[0].upper()
        if mnemonic == "PUSH":
            if len(parts) != 2:
                raise AssemblerError(f"line {line_no}: PUSH needs one operand")
            operand = parts[1]
            if operand.startswith("@"):
                instructions.append(("push", (operand[1:], True), line_no))
            else:
                try:
                    value = int(operand, 0)
                except ValueError as exc:
                    raise AssemblerError(
                        f"line {line_no}: bad immediate {operand!r}"
                    ) from exc
                instructions.append(("push", (value, False), line_no))
            continue
        opcode = op.NAME_TO_OPCODE.get(mnemonic)
        if opcode is None:
            raise AssemblerError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
        if len(parts) != 1:
            raise AssemblerError(f"line {line_no}: {mnemonic} takes no operand")
        instructions.append(("op", opcode, line_no))
    return instructions


def _collect_labels(instructions: list[tuple[str, object, int]]) -> dict[str, int]:
    labels: dict[str, int] = {}
    offset = 0
    for kind, payload, line_no in instructions:
        if kind == "label":
            name = str(payload)
            if name in labels:
                raise AssemblerError(f"line {line_no}: duplicate label {name!r}")
            labels[name] = offset
            offset += 1  # the JUMPDEST byte
        elif kind == "op":
            offset += 1
        elif kind == "push":
            offset += 1 + op.PUSH_IMMEDIATE_BYTES
    return labels
