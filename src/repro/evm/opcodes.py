"""Instruction set for the miniature EVM.

A word-oriented stack machine closely modeled on the Ethereum Virtual
Machine: 256-bit words, a data stack, word-addressed scratch memory,
and persistent contract storage behind ``SLOAD``/``SSTORE``. Opcode
numbering follows the real EVM where an equivalent exists so the
bytecode reads familiarly in dumps.
"""

from __future__ import annotations

from dataclasses import dataclass

WORD_BITS = 256
WORD_MASK = (1 << WORD_BITS) - 1

# Control
STOP = 0x00
# Arithmetic
ADD = 0x01
MUL = 0x02
SUB = 0x03
DIV = 0x04
MOD = 0x06
# Comparison / bitwise
LT = 0x10
GT = 0x11
EQ = 0x14
ISZERO = 0x15
AND = 0x16
OR = 0x17
XOR = 0x18
NOT = 0x19
# Hashing
SHA3 = 0x20
# Environment
CALLER = 0x30
CALLVALUE = 0x34
CALLDATALOAD = 0x35
# Stack / memory / storage / flow
POP = 0x50
MLOAD = 0x51
MSTORE = 0x52
SLOAD = 0x54
SSTORE = 0x55
JUMP = 0x56
JUMPI = 0x57
PC = 0x58
GAS = 0x5A
JUMPDEST = 0x5B
# Push (single width: 8-byte big-endian immediate)
PUSH = 0x60
# DUP1..DUP16 / SWAP1..SWAP16
DUP1 = 0x80
SWAP1 = 0x90
# Termination
RETURN = 0xF3
REVERT = 0xFD

#: Immediate width for PUSH, in bytes.
PUSH_IMMEDIATE_BYTES = 8


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    name: str
    pops: int
    pushes: int


_BASE_OPS: dict[int, OpInfo] = {
    STOP: OpInfo("STOP", 0, 0),
    ADD: OpInfo("ADD", 2, 1),
    MUL: OpInfo("MUL", 2, 1),
    SUB: OpInfo("SUB", 2, 1),
    DIV: OpInfo("DIV", 2, 1),
    MOD: OpInfo("MOD", 2, 1),
    LT: OpInfo("LT", 2, 1),
    GT: OpInfo("GT", 2, 1),
    EQ: OpInfo("EQ", 2, 1),
    ISZERO: OpInfo("ISZERO", 1, 1),
    AND: OpInfo("AND", 2, 1),
    OR: OpInfo("OR", 2, 1),
    XOR: OpInfo("XOR", 2, 1),
    NOT: OpInfo("NOT", 1, 1),
    SHA3: OpInfo("SHA3", 1, 1),
    CALLER: OpInfo("CALLER", 0, 1),
    CALLVALUE: OpInfo("CALLVALUE", 0, 1),
    CALLDATALOAD: OpInfo("CALLDATALOAD", 1, 1),
    POP: OpInfo("POP", 1, 0),
    MLOAD: OpInfo("MLOAD", 1, 1),
    MSTORE: OpInfo("MSTORE", 2, 0),
    SLOAD: OpInfo("SLOAD", 1, 1),
    SSTORE: OpInfo("SSTORE", 2, 0),
    JUMP: OpInfo("JUMP", 1, 0),
    JUMPI: OpInfo("JUMPI", 2, 0),
    PC: OpInfo("PC", 0, 1),
    GAS: OpInfo("GAS", 0, 1),
    JUMPDEST: OpInfo("JUMPDEST", 0, 0),
    PUSH: OpInfo("PUSH", 0, 1),
    RETURN: OpInfo("RETURN", 1, 0),
    REVERT: OpInfo("REVERT", 0, 0),
}

OPCODES: dict[int, OpInfo] = dict(_BASE_OPS)
for _i in range(16):
    OPCODES[DUP1 + _i] = OpInfo(f"DUP{_i + 1}", _i + 1, _i + 2)
    OPCODES[SWAP1 + _i] = OpInfo(f"SWAP{_i + 1}", _i + 2, _i + 2)

#: Reverse lookup used by the assembler.
NAME_TO_OPCODE: dict[str, int] = {info.name: op for op, info in OPCODES.items()}
