"""Gas schedule for the miniature EVM.

Costs follow the spirit of Ethereum's yellow-paper schedule: storage
writes dominate, storage reads are expensive, arithmetic is cheap, and
every transaction pays a flat intrinsic cost. The absolute values match
the 2016-era (pre-EIP-150) schedule where an equivalent operation
exists, because that is the codebase generation the paper benchmarked.
"""

from __future__ import annotations

from . import opcodes as op

#: Flat cost charged to every transaction before execution.
INTRINSIC_TX_GAS = 21_000

#: Storage costs (pre-EIP-150 values).
SSTORE_SET = 20_000  # zero -> non-zero
SSTORE_RESET = 5_000  # non-zero -> non-zero (or -> zero)
SLOAD_COST = 50
SHA3_COST = 30
MEMORY_WORD_COST = 3  # charged on first touch of each memory word

_VERY_LOW = 3
_LOW = 5
_MID = 8

#: Per-opcode base costs. SLOAD/SSTORE/SHA3/memory are charged by the
#: VM with the context-dependent values above; their entries here are
#: the base dispatch cost only.
OPCODE_GAS: dict[int, int] = {
    op.STOP: 0,
    op.ADD: _VERY_LOW,
    op.MUL: _LOW,
    op.SUB: _VERY_LOW,
    op.DIV: _LOW,
    op.MOD: _LOW,
    op.LT: _VERY_LOW,
    op.GT: _VERY_LOW,
    op.EQ: _VERY_LOW,
    op.ISZERO: _VERY_LOW,
    op.AND: _VERY_LOW,
    op.OR: _VERY_LOW,
    op.XOR: _VERY_LOW,
    op.NOT: _VERY_LOW,
    op.SHA3: SHA3_COST,
    op.CALLER: 2,
    op.CALLVALUE: 2,
    op.CALLDATALOAD: _VERY_LOW,
    op.POP: 2,
    op.MLOAD: _VERY_LOW,
    op.MSTORE: _VERY_LOW,
    op.SLOAD: SLOAD_COST,
    op.SSTORE: 0,  # charged contextually
    op.JUMP: _MID,
    op.JUMPI: 10,
    op.PC: 2,
    op.GAS: 2,
    op.JUMPDEST: 1,
    op.PUSH: _VERY_LOW,
    op.RETURN: 0,
    op.REVERT: 0,
}
for _i in range(16):
    OPCODE_GAS[op.DUP1 + _i] = _VERY_LOW
    OPCODE_GAS[op.SWAP1 + _i] = _VERY_LOW


def sstore_cost(old_value: int | None, new_value: int) -> int:
    """Contextual SSTORE cost: creating a slot costs 4x an update."""
    if (old_value is None or old_value == 0) and new_value != 0:
        return SSTORE_SET
    return SSTORE_RESET
