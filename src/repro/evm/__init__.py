"""Execution layer: the miniature EVM, gas schedule, and assembler."""

from .assembler import assemble
from .gas import INTRINSIC_TX_GAS, OPCODE_GAS, SLOAD_COST, SSTORE_RESET, SSTORE_SET, sstore_cost
from .programs import (
    CPUHEAVY_ASM,
    DONOTHING_ASM,
    cpuheavy_code,
    donothing_code,
    kvstore_read_code,
    kvstore_write_code,
)
from .program import (
    Program,
    clear_program_cache,
    decode_program,
    program_cache_stats,
)
from .vm import (
    EVM,
    CallContext,
    DictStorage,
    StateStorage,
    ExecutionResult,
    Profile,
    StorageBackend,
)

__all__ = [
    "assemble",
    "INTRINSIC_TX_GAS",
    "OPCODE_GAS",
    "SLOAD_COST",
    "SSTORE_RESET",
    "SSTORE_SET",
    "sstore_cost",
    "CPUHEAVY_ASM",
    "DONOTHING_ASM",
    "cpuheavy_code",
    "donothing_code",
    "kvstore_read_code",
    "kvstore_write_code",
    "Program",
    "clear_program_cache",
    "decode_program",
    "program_cache_stats",
    "EVM",
    "CallContext",
    "DictStorage",
    "StateStorage",
    "ExecutionResult",
    "Profile",
    "StorageBackend",
]
