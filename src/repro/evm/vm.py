"""The miniature EVM interpreter.

Two execution profiles reproduce the paper's geth-vs-Parity gap
(Figure 11: "Although Ethereum and Parity use the same execution
engine, i.e. EVM, Parity's implementation is more optimized, therefore
it is more computation and memory efficient"):

* ``GETH`` — mirrors go-ethereum v1.4: a state journal records every
  operation (for tracing and revert bookkeeping), and each step builds
  a structured log entry. That is real extra Python work per opcode, so
  the measured slowdown is genuine, not a sleep().
* ``PARITY`` — lean dispatch loop, no journaling.

Memory is word-addressed. Peak memory is *modeled* through per-profile
overhead constants (bytes per live word plus a fixed interpreter
baseline), because a 32 GB process is neither possible nor desirable in
a test suite; the model constants are calibrated in EXPERIMENTS.md
against Figure 11's measured footprints. Exceeding ``memory_limit``
raises :class:`OutOfMemory` — the paper's 'X' cells.

Storage writes are buffered and applied only on successful completion,
so out-of-gas and REVERT leave contract state untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import OutOfGas, OutOfMemory, VMError
from . import opcodes as op
from .gas import MEMORY_WORD_COST, OPCODE_GAS, sstore_cost

_DEFAULT_MEMORY_LIMIT = 32 * 1024**3  # the paper's 32 GB servers


class Profile(Enum):
    """Execution-engine flavour."""

    GETH = "geth"
    PARITY = "parity"


@dataclass(frozen=True)
class ProfileCosts:
    """Modeled memory constants for one profile (see EXPERIMENTS.md)."""

    word_overhead_bytes: int
    base_overhead_bytes: int
    journal: bool


PROFILE_COSTS: dict[Profile, ProfileCosts] = {
    # geth v1.4: big.Int boxing + state journal entries.
    Profile.GETH: ProfileCosts(
        word_overhead_bytes=2200, base_overhead_bytes=2 * 1024**3, journal=True
    ),
    # parity 1.6: packed U256 arithmetic, no per-op journal.
    Profile.PARITY: ProfileCosts(
        word_overhead_bytes=140, base_overhead_bytes=580 * 1024**2, journal=False
    ),
}


class StorageBackend:
    """Minimal persistent-storage interface the VM writes through."""

    def get_word(self, key: int) -> int:
        raise NotImplementedError

    def set_word(self, key: int, value: int) -> None:
        raise NotImplementedError


class DictStorage(StorageBackend):
    """In-memory storage for tests and standalone execution."""

    def __init__(self) -> None:
        self.data: dict[int, int] = {}

    def get_word(self, key: int) -> int:
        return self.data.get(key, 0)

    def set_word(self, key: int, value: int) -> None:
        if value == 0:
            self.data.pop(key, None)
        else:
            self.data[key] = value


@dataclass
class ExecutionResult:
    """Outcome of one VM run."""

    success: bool
    return_value: int | None
    gas_used: int
    steps: int
    peak_memory_words: int
    modeled_peak_memory_bytes: int
    journal_entries: int
    error: str = ""
    #: Final VM memory; populated only when executing with
    #: ``capture_memory=True`` (tests and debugging).
    memory: dict[int, int] | None = None


@dataclass
class CallContext:
    """Environment visible to the executing code."""

    caller: int = 0
    call_value: int = 0
    args: tuple[int, ...] = ()


class EVM:
    """One interpreter instance (stateless across runs except storage)."""

    def __init__(
        self,
        profile: Profile = Profile.PARITY,
        memory_limit_bytes: int = _DEFAULT_MEMORY_LIMIT,
    ) -> None:
        self.profile = profile
        self.costs = PROFILE_COSTS[profile]
        self.memory_limit_bytes = memory_limit_bytes

    # ------------------------------------------------------------------
    def execute(
        self,
        code: bytes,
        storage: StorageBackend | None = None,
        context: CallContext | None = None,
        gas_limit: int | None = None,
        capture_memory: bool = False,
    ) -> ExecutionResult:
        """Run ``code`` to completion; storage commits only on success."""
        storage = storage if storage is not None else DictStorage()
        context = context or CallContext()
        stack: list[int] = []
        memory: dict[int, int] = {}
        write_buffer: dict[int, int] = {}
        journal: list[tuple[int, int, int]] = []
        journaling = self.costs.journal
        gas_used = 0
        steps = 0
        peak_words = 0
        pc = 0
        code_len = len(code)
        valid_jumpdests = _scan_jumpdests(code)
        word_overhead = self.costs.word_overhead_bytes
        memory_budget_words = (
            max(0, self.memory_limit_bytes - self.costs.base_overhead_bytes)
            // max(1, word_overhead)
        )
        return_value: int | None = None

        def fail(kind: type[Exception], message: str) -> ExecutionResult:
            if kind is OutOfMemory:
                raise OutOfMemory(message)
            return ExecutionResult(
                success=False,
                return_value=None,
                gas_used=gas_used,
                steps=steps,
                peak_memory_words=peak_words,
                modeled_peak_memory_bytes=self._modeled_bytes(peak_words, journal),
                journal_entries=len(journal),
                error=message,
            )

        try:
            while pc < code_len:
                opcode = code[pc]
                info = op.OPCODES.get(opcode)
                if info is None:
                    return fail(VMError, f"bad opcode 0x{opcode:02x} at pc={pc}")
                steps += 1
                gas_used += OPCODE_GAS[opcode]
                if gas_limit is not None and gas_used > gas_limit:
                    raise OutOfGas(f"out of gas at pc={pc} (step {steps})")
                if len(stack) < info.pops:
                    return fail(VMError, f"stack underflow at pc={pc} ({info.name})")
                if journaling:
                    journal.append((pc, opcode, gas_used))

                if opcode == op.STOP:
                    break
                elif opcode == op.PUSH:
                    immediate = code[pc + 1 : pc + 1 + op.PUSH_IMMEDIATE_BYTES]
                    if len(immediate) < op.PUSH_IMMEDIATE_BYTES:
                        return fail(VMError, "truncated PUSH immediate")
                    stack.append(int.from_bytes(immediate, "big"))
                    pc += 1 + op.PUSH_IMMEDIATE_BYTES
                    continue
                elif opcode == op.ADD:
                    b, a = stack.pop(), stack.pop()
                    stack.append((a + b) & op.WORD_MASK)
                elif opcode == op.MUL:
                    b, a = stack.pop(), stack.pop()
                    stack.append((a * b) & op.WORD_MASK)
                elif opcode == op.SUB:
                    b, a = stack.pop(), stack.pop()
                    stack.append((a - b) & op.WORD_MASK)
                elif opcode == op.DIV:
                    b, a = stack.pop(), stack.pop()
                    stack.append(0 if b == 0 else a // b)
                elif opcode == op.MOD:
                    b, a = stack.pop(), stack.pop()
                    stack.append(0 if b == 0 else a % b)
                elif opcode == op.LT:
                    b, a = stack.pop(), stack.pop()
                    stack.append(1 if a < b else 0)
                elif opcode == op.GT:
                    b, a = stack.pop(), stack.pop()
                    stack.append(1 if a > b else 0)
                elif opcode == op.EQ:
                    b, a = stack.pop(), stack.pop()
                    stack.append(1 if a == b else 0)
                elif opcode == op.ISZERO:
                    stack.append(1 if stack.pop() == 0 else 0)
                elif opcode == op.AND:
                    b, a = stack.pop(), stack.pop()
                    stack.append(a & b)
                elif opcode == op.OR:
                    b, a = stack.pop(), stack.pop()
                    stack.append(a | b)
                elif opcode == op.XOR:
                    b, a = stack.pop(), stack.pop()
                    stack.append(a ^ b)
                elif opcode == op.NOT:
                    stack.append(stack.pop() ^ op.WORD_MASK)
                elif opcode == op.SHA3:
                    import hashlib

                    value = stack.pop()
                    digest = hashlib.sha256(value.to_bytes(32, "big")).digest()
                    stack.append(int.from_bytes(digest, "big") & op.WORD_MASK)
                elif opcode == op.CALLER:
                    stack.append(context.caller)
                elif opcode == op.CALLVALUE:
                    stack.append(context.call_value)
                elif opcode == op.CALLDATALOAD:
                    index = stack.pop()
                    args = context.args
                    stack.append(args[index] if index < len(args) else 0)
                elif opcode == op.POP:
                    stack.pop()
                elif opcode == op.MLOAD:
                    stack.append(memory.get(stack.pop(), 0))
                elif opcode == op.MSTORE:
                    addr = stack.pop()
                    value = stack.pop()
                    if addr not in memory:
                        gas_used += MEMORY_WORD_COST
                        if len(memory) + 1 > memory_budget_words:
                            return fail(
                                OutOfMemory,
                                f"modeled memory exceeded "
                                f"{self.memory_limit_bytes} bytes "
                                f"({len(memory) + 1} words, {self.profile.value})",
                            )
                    memory[addr] = value
                    if len(memory) > peak_words:
                        peak_words = len(memory)
                elif opcode == op.SLOAD:
                    key = stack.pop()
                    if key in write_buffer:
                        stack.append(write_buffer[key])
                    else:
                        stack.append(storage.get_word(key))
                elif opcode == op.SSTORE:
                    key = stack.pop()
                    value = stack.pop()
                    old = (
                        write_buffer[key]
                        if key in write_buffer
                        else storage.get_word(key)
                    )
                    gas_used += sstore_cost(old, value)
                    if gas_limit is not None and gas_used > gas_limit:
                        raise OutOfGas(f"out of gas in SSTORE at pc={pc}")
                    write_buffer[key] = value
                elif opcode == op.JUMP:
                    target = stack.pop()
                    if target not in valid_jumpdests:
                        return fail(VMError, f"bad jump target {target}")
                    pc = target
                    continue
                elif opcode == op.JUMPI:
                    target = stack.pop()
                    condition = stack.pop()
                    if condition:
                        if target not in valid_jumpdests:
                            return fail(VMError, f"bad jump target {target}")
                        pc = target
                        continue
                elif opcode == op.PC:
                    stack.append(pc)
                elif opcode == op.GAS:
                    remaining = (
                        (gas_limit - gas_used) if gas_limit is not None else op.WORD_MASK
                    )
                    stack.append(max(0, remaining))
                elif opcode == op.JUMPDEST:
                    pass
                elif op.DUP1 <= opcode < op.DUP1 + 16:
                    stack.append(stack[-(opcode - op.DUP1 + 1)])
                elif op.SWAP1 <= opcode < op.SWAP1 + 16:
                    depth = opcode - op.SWAP1 + 1
                    stack[-1], stack[-depth - 1] = stack[-depth - 1], stack[-1]
                elif opcode == op.RETURN:
                    return_value = stack.pop()
                    break
                elif opcode == op.REVERT:
                    return fail(VMError, "explicit revert")
                pc += 1
        except OutOfGas as exc:
            return ExecutionResult(
                success=False,
                return_value=None,
                gas_used=gas_used,
                steps=steps,
                peak_memory_words=peak_words,
                modeled_peak_memory_bytes=self._modeled_bytes(peak_words, journal),
                journal_entries=len(journal),
                error=str(exc),
            )

        # Success: commit buffered storage writes.
        for key, value in write_buffer.items():
            storage.set_word(key, value)
        return ExecutionResult(
            success=True,
            return_value=return_value,
            gas_used=gas_used,
            steps=steps,
            peak_memory_words=peak_words,
            modeled_peak_memory_bytes=self._modeled_bytes(peak_words, journal),
            journal_entries=len(journal),
            memory=dict(memory) if capture_memory else None,
        )

    def _modeled_bytes(self, peak_words: int, journal: list) -> int:
        return (
            self.costs.base_overhead_bytes
            + peak_words * self.costs.word_overhead_bytes
            + len(journal) * 48
        )


def _scan_jumpdests(code: bytes) -> set[int]:
    """Valid JUMPDEST offsets (skipping PUSH immediates)."""
    dests: set[int] = set()
    pc = 0
    while pc < len(code):
        opcode = code[pc]
        if opcode == op.JUMPDEST:
            dests.add(pc)
        if opcode == op.PUSH:
            pc += 1 + op.PUSH_IMMEDIATE_BYTES
        else:
            pc += 1
    return dests
