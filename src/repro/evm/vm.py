"""The miniature EVM interpreter.

Two execution profiles reproduce the paper's geth-vs-Parity gap
(Figure 11: "Although Ethereum and Parity use the same execution
engine, i.e. EVM, Parity's implementation is more optimized, therefore
it is more computation and memory efficient"):

* ``GETH`` — mirrors go-ethereum v1.4: a state journal records every
  operation (for tracing and revert bookkeeping), and each step builds
  a structured log entry. That is real extra Python work per opcode, so
  the measured slowdown is genuine, not a sleep().
* ``PARITY`` — lean dispatch loop, no journaling.

Memory is word-addressed. Peak memory is *modeled* through per-profile
overhead constants (bytes per live word plus a fixed interpreter
baseline), because a 32 GB process is neither possible nor desirable in
a test suite; the model constants are calibrated in EXPERIMENTS.md
against Figure 11's measured footprints. Exceeding ``memory_limit``
raises :class:`OutOfMemory` — the paper's 'X' cells.

Storage writes are buffered and applied only on successful completion,
so out-of-gas and REVERT leave contract state untouched.

Dispatch (PR 2): bytecode is pre-decoded once per code blob into a
cached :class:`~repro.evm.program.Program` — precomputed gas, stack
depths, PUSH immediates, DUP/SWAP offsets, and the JUMPDEST set — and
the step loop indexes a handler table instead of walking an if/elif
chain. The handlers are closures over the run's stack/memory/gas cells,
so the per-step state stays in fast local/cell variables. Observable
semantics (gas_used, steps, journal entries, modeled memory, storage
commit behavior, error strings) are bit-identical to the pre-decoded
interpreter; ``tests/evm/test_program_cache.py`` pins that equivalence.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum

from ..errors import OutOfGas, OutOfMemory
from . import opcodes as op
from .gas import MEMORY_WORD_COST, sstore_cost
from .program import (
    HANDLER_COUNT,
    HID_DUP,
    HID_INVALID,
    HID_PUSH,
    HID_SWAP,
    decode_program,
)

_DEFAULT_MEMORY_LIMIT = 32 * 1024**3  # the paper's 32 GB servers

_sha256 = hashlib.sha256


class Profile(Enum):
    """Execution-engine flavour."""

    GETH = "geth"
    PARITY = "parity"


@dataclass(frozen=True)
class ProfileCosts:
    """Modeled memory constants for one profile (see EXPERIMENTS.md)."""

    word_overhead_bytes: int
    base_overhead_bytes: int
    journal: bool


PROFILE_COSTS: dict[Profile, ProfileCosts] = {
    # geth v1.4: big.Int boxing + state journal entries.
    Profile.GETH: ProfileCosts(
        word_overhead_bytes=2200, base_overhead_bytes=2 * 1024**3, journal=True
    ),
    # parity 1.6: packed U256 arithmetic, no per-op journal.
    Profile.PARITY: ProfileCosts(
        word_overhead_bytes=140, base_overhead_bytes=580 * 1024**2, journal=False
    ),
}


class StorageBackend:
    """Minimal persistent-storage interface the VM writes through."""

    def get_word(self, key: int) -> int:
        raise NotImplementedError

    def set_word(self, key: int, value: int) -> None:
        raise NotImplementedError


class DictStorage(StorageBackend):
    """In-memory storage for tests and standalone execution."""

    def __init__(self) -> None:
        self.data: dict[int, int] = {}

    def get_word(self, key: int) -> int:
        return self.data.get(key, 0)

    def set_word(self, key: int, value: int) -> None:
        if value == 0:
            self.data.pop(key, None)
        else:
            self.data[key] = value


class StateStorage(StorageBackend):
    """Storage backend over a platform ``StateAccess`` facade.

    Bridges the EVM's word-addressed storage to the byte-keyed
    contract-state interface the platforms expose
    (:class:`repro.contracts.base.StateAccess`), so Solidity-style
    bytecode runs against the same journaled state overlay native
    contracts use: SSTOREs buffered by the VM flush (on success, in
    sorted slot order) into the overlay, and the platform's
    ``commit_block`` folds them into the once-per-block batched tree
    update. Zero-valued words delete the slot, matching both EVM
    storage-clear semantics and :class:`DictStorage`.

    Because every SLOAD/SSTORE funnels through the facade, parallel
    execution's per-transaction read/write-set capture
    (:class:`repro.core.txsched.TxView` behind the facade) sees EVM
    storage traffic with no VM-level changes: captured slot keys are
    the namespaced 32-byte addresses, so EVM transactions participate
    in dependency scheduling exactly like native contracts.
    """

    __slots__ = ("_state",)

    #: 32-byte big-endian slot addresses, like real EVM storage keys.
    _KEY_BYTES = 32

    def __init__(self, state) -> None:
        self._state = state

    def _slot(self, key: int) -> bytes:
        return key.to_bytes(self._KEY_BYTES, "big")

    def get_word(self, key: int) -> int:
        blob = self._state.get_state(self._slot(key))
        return int.from_bytes(blob, "big") if blob is not None else 0

    def set_word(self, key: int, value: int) -> None:
        if value == 0:
            self._state.delete_state(self._slot(key))
        else:
            self._state.put_state(self._slot(key), value.to_bytes(32, "big"))


@dataclass
class ExecutionResult:
    """Outcome of one VM run."""

    success: bool
    return_value: int | None
    gas_used: int
    steps: int
    peak_memory_words: int
    modeled_peak_memory_bytes: int
    journal_entries: int
    error: str = ""
    #: Final VM memory; populated only when executing with
    #: ``capture_memory=True`` (tests and debugging).
    memory: dict[int, int] | None = None


@dataclass
class CallContext:
    """Environment visible to the executing code."""

    caller: int = 0
    call_value: int = 0
    args: tuple[int, ...] = ()


class _Fail(Exception):
    """Internal: abort the run with a VM-level error message."""


class EVM:
    """One interpreter instance (stateless across runs except storage)."""

    def __init__(
        self,
        profile: Profile = Profile.PARITY,
        memory_limit_bytes: int = _DEFAULT_MEMORY_LIMIT,
        use_program_cache: bool = True,
    ) -> None:
        self.profile = profile
        self.costs = PROFILE_COSTS[profile]
        self.memory_limit_bytes = memory_limit_bytes
        #: Decode bytecode through the shared program LRU. Disabled only
        #: by tests that pin cached-vs-uncached equivalence.
        self.use_program_cache = use_program_cache

    # ------------------------------------------------------------------
    def execute(
        self,
        code: bytes,
        storage: StorageBackend | None = None,
        context: CallContext | None = None,
        gas_limit: int | None = None,
        capture_memory: bool = False,
    ) -> ExecutionResult:
        """Run ``code`` to completion; storage commits only on success."""
        program = decode_program(code, use_cache=self.use_program_cache)
        storage = storage if storage is not None else DictStorage()
        context = context or CallContext()
        stack: list[int] = []
        memory: dict[int, int] = {}
        write_buffer: dict[int, int] = {}
        journal: list[tuple[int, int, int]] = []
        journaling = self.costs.journal
        gas_used = 0
        steps = 0
        peak_words = 0
        pc = 0
        word_mask = op.WORD_MASK
        memory_budget_words = (
            max(0, self.memory_limit_bytes - self.costs.base_overhead_bytes)
            // max(1, self.costs.word_overhead_bytes)
        )
        return_value: int | None = None
        jumpdests = program.jumpdests
        args = context.args
        n_args = len(args)
        caller = context.caller
        call_value = context.call_value
        storage_get = storage.get_word
        stack_append = stack.append
        stack_pop = stack.pop

        # -- handler table -------------------------------------------------
        # One closure per handler id, sharing this run's stack/memory/
        # gas cells. Handlers return the next pc (for jumps), -1 to
        # halt, or None to fall through to the instruction's static
        # successor. The defs cost ~2 microseconds per run and are paid
        # back within the first dozen steps.
        def h_stop(operand, pc):
            return -1

        def h_push(operand, pc):
            stack_append(operand)

        def h_trunc_push(operand, pc):
            raise _Fail("truncated PUSH immediate")

        def h_add(operand, pc):
            b = stack_pop()
            a = stack_pop()
            stack_append((a + b) & word_mask)

        def h_mul(operand, pc):
            b = stack_pop()
            a = stack_pop()
            stack_append((a * b) & word_mask)

        def h_sub(operand, pc):
            b = stack_pop()
            a = stack_pop()
            stack_append((a - b) & word_mask)

        def h_div(operand, pc):
            b = stack_pop()
            a = stack_pop()
            stack_append(0 if b == 0 else a // b)

        def h_mod(operand, pc):
            b = stack_pop()
            a = stack_pop()
            stack_append(0 if b == 0 else a % b)

        def h_lt(operand, pc):
            b = stack_pop()
            a = stack_pop()
            stack_append(1 if a < b else 0)

        def h_gt(operand, pc):
            b = stack_pop()
            a = stack_pop()
            stack_append(1 if a > b else 0)

        def h_eq(operand, pc):
            b = stack_pop()
            a = stack_pop()
            stack_append(1 if a == b else 0)

        def h_iszero(operand, pc):
            stack_append(1 if stack_pop() == 0 else 0)

        def h_and(operand, pc):
            b = stack_pop()
            a = stack_pop()
            stack_append(a & b)

        def h_or(operand, pc):
            b = stack_pop()
            a = stack_pop()
            stack_append(a | b)

        def h_xor(operand, pc):
            b = stack_pop()
            a = stack_pop()
            stack_append(a ^ b)

        def h_not(operand, pc):
            stack_append(stack_pop() ^ word_mask)

        def h_sha3(operand, pc):
            value = stack_pop()
            digest = _sha256(value.to_bytes(32, "big")).digest()
            stack_append(int.from_bytes(digest, "big") & word_mask)

        def h_caller(operand, pc):
            stack_append(caller)

        def h_callvalue(operand, pc):
            stack_append(call_value)

        def h_calldataload(operand, pc):
            index = stack_pop()
            stack_append(args[index] if index < n_args else 0)

        def h_pop(operand, pc):
            stack_pop()

        def h_mload(operand, pc):
            stack_append(memory.get(stack_pop(), 0))

        def h_mstore(operand, pc):
            nonlocal gas_used, peak_words
            addr = stack_pop()
            value = stack_pop()
            if addr not in memory:
                gas_used += MEMORY_WORD_COST
                if len(memory) + 1 > memory_budget_words:
                    raise OutOfMemory(
                        f"modeled memory exceeded "
                        f"{self.memory_limit_bytes} bytes "
                        f"({len(memory) + 1} words, {self.profile.value})"
                    )
            memory[addr] = value
            if len(memory) > peak_words:
                peak_words = len(memory)

        def h_sload(operand, pc):
            key = stack_pop()
            if key in write_buffer:
                stack_append(write_buffer[key])
            else:
                stack_append(storage_get(key))

        def h_sstore(operand, pc):
            nonlocal gas_used
            key = stack_pop()
            value = stack_pop()
            old = (
                write_buffer[key] if key in write_buffer else storage_get(key)
            )
            gas_used += sstore_cost(old, value)
            if gas_limit is not None and gas_used > gas_limit:
                raise OutOfGas(f"out of gas in SSTORE at pc={pc}")
            write_buffer[key] = value

        def h_jump(operand, pc):
            target = stack_pop()
            if target not in jumpdests:
                raise _Fail(f"bad jump target {target}")
            return target

        def h_jumpi(operand, pc):
            target = stack_pop()
            condition = stack_pop()
            if condition:
                if target not in jumpdests:
                    raise _Fail(f"bad jump target {target}")
                return target

        def h_pc(operand, pc):
            stack_append(pc)

        def h_gas(operand, pc):
            remaining = (
                (gas_limit - gas_used) if gas_limit is not None else word_mask
            )
            stack_append(remaining if remaining > 0 else 0)

        def h_jumpdest(operand, pc):
            pass

        def h_dup(operand, pc):
            stack_append(stack[-operand])

        def h_swap(operand, pc):
            stack[-1], stack[-operand] = stack[-operand], stack[-1]

        def h_return(operand, pc):
            nonlocal return_value
            return_value = stack_pop()
            return -1

        def h_revert(operand, pc):
            raise _Fail("explicit revert")

        # Index order must match the HID_* constants in program.py.
        table = (
            None,  # HID_INVALID is intercepted before dispatch
            h_stop,
            h_push,
            h_trunc_push,
            h_add,
            h_mul,
            h_sub,
            h_div,
            h_mod,
            h_lt,
            h_gt,
            h_eq,
            h_iszero,
            h_and,
            h_or,
            h_xor,
            h_not,
            h_sha3,
            h_caller,
            h_callvalue,
            h_calldataload,
            h_pop,
            h_mload,
            h_mstore,
            h_sload,
            h_sstore,
            h_jump,
            h_jumpi,
            h_pc,
            h_gas,
            h_jumpdest,
            h_dup,
            h_swap,
            h_return,
            h_revert,
        )
        if len(table) != HANDLER_COUNT:  # pragma: no cover - build-time sanity
            raise AssertionError("dispatch table out of sync with HID_* ids")

        def fail_result(message: str) -> ExecutionResult:
            return ExecutionResult(
                success=False,
                return_value=None,
                gas_used=gas_used,
                steps=steps,
                peak_memory_words=peak_words,
                modeled_peak_memory_bytes=self._modeled_bytes(peak_words, journal),
                journal_entries=len(journal),
                error=message,
            )

        # -- dispatch loop -------------------------------------------------
        insts = program.insts
        code_len = program.length
        journal_append = journal.append
        # Sentinel cap keeps the per-step gas check to one same-type int
        # comparison (int-vs-float is measurably slower); 2**63 gas is
        # ~10**17 steps, unreachable by construction.
        gas_cap = gas_limit if gas_limit is not None else 1 << 63
        try:
            while pc < code_len:
                hid, gas, pops, opcode, operand, fallthrough, name = insts[pc]
                # Inline fast paths for the three opcode kinds that
                # dominate dynamic frequency (a majority of CPUHeavy's
                # steps are PUSH/DUP/SWAP): same bookkeeping, minus the
                # dispatch call. Everything else goes through the table.
                if hid == HID_PUSH:
                    steps += 1
                    gas_used += gas
                    if gas_used > gas_cap:
                        raise OutOfGas(f"out of gas at pc={pc} (step {steps})")
                    if journaling:
                        journal_append((pc, opcode, gas_used))
                    stack_append(operand)
                    pc = fallthrough
                    continue
                if hid == HID_DUP or hid == HID_SWAP:
                    steps += 1
                    gas_used += gas
                    if gas_used > gas_cap:
                        raise OutOfGas(f"out of gas at pc={pc} (step {steps})")
                    if len(stack) < pops:
                        return fail_result(
                            f"stack underflow at pc={pc} ({name})"
                        )
                    if journaling:
                        journal_append((pc, opcode, gas_used))
                    if hid == HID_DUP:
                        stack_append(stack[-operand])
                    else:
                        stack[-1], stack[-operand] = stack[-operand], stack[-1]
                    pc = fallthrough
                    continue
                if hid == HID_INVALID:
                    return fail_result(f"bad opcode 0x{opcode:02x} at pc={pc}")
                steps += 1
                gas_used += gas
                if gas_used > gas_cap:
                    raise OutOfGas(f"out of gas at pc={pc} (step {steps})")
                if len(stack) < pops:
                    return fail_result(f"stack underflow at pc={pc} ({name})")
                if journaling:
                    journal_append((pc, opcode, gas_used))
                next_pc = table[hid](operand, pc)
                if next_pc is None:
                    pc = fallthrough
                elif next_pc >= 0:
                    pc = next_pc
                else:
                    break
        except _Fail as exc:
            return fail_result(str(exc))
        except OutOfGas as exc:
            return ExecutionResult(
                success=False,
                return_value=None,
                gas_used=gas_used,
                steps=steps,
                peak_memory_words=peak_words,
                modeled_peak_memory_bytes=self._modeled_bytes(peak_words, journal),
                journal_entries=len(journal),
                error=str(exc),
            )

        # Success: commit buffered storage writes. Sorted slot order —
        # not dict insertion order — so the write-set reaching a
        # journaled platform overlay is deterministic for a given final
        # buffer regardless of the SSTORE sequence that produced it
        # (the same discipline commit_block applies to the overlay).
        for key in sorted(write_buffer):
            storage.set_word(key, write_buffer[key])
        return ExecutionResult(
            success=True,
            return_value=return_value,
            gas_used=gas_used,
            steps=steps,
            peak_memory_words=peak_words,
            modeled_peak_memory_bytes=self._modeled_bytes(peak_words, journal),
            journal_entries=len(journal),
            memory=dict(memory) if capture_memory else None,
        )

    def _modeled_bytes(self, peak_words: int, journal: list) -> int:
        return (
            self.costs.base_overhead_bytes
            + peak_words * self.costs.word_overhead_bytes
            + len(journal) * 48
        )
