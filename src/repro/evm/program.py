"""Bytecode pre-decoding for the miniature EVM (the PR-2 fast path).

The interpreter used to rediscover everything about the bytecode on
every run of every transaction: a fresh JUMPDEST scan per ``execute``,
an ``OPCODES.get`` + ``OPCODE_GAS`` dict lookup per step, a byte-slice
and ``int.from_bytes`` per PUSH, and a ~40-branch if/elif walk per
opcode. For the CPUHeavy workload that is tens of thousands of steps of
pure re-decoding per simulated transaction.

This module decodes a code blob **once** into a :class:`Program`:

* one instruction record per byte offset — ``(handler_id, gas, pops,
  opcode, operand, next_pc, name)`` — so the dispatch loop does a single
  list index per step instead of two dict lookups and a branch chain;
* PUSH immediates pre-extracted into ints (``operand``);
* DUP/SWAP depths pre-computed into ``operand``;
* the valid-JUMPDEST set pre-scanned once.

Programs are cached in a module-level LRU keyed by the code bytes, so
repeated executions of the same contract (every simulated transaction)
skip decoding entirely. Decoding is semantics-free: invalid opcodes and
truncated PUSH immediates decode into dedicated failure records that
reproduce the interpreter's lazy, execution-time errors bit-for-bit —
a bad byte after a RETURN still never fails, exactly as before.
"""

from __future__ import annotations

from ..util.lru import LRUCache
from . import opcodes as op
from .gas import OPCODE_GAS

# Handler ids: indices into the dispatch table the interpreter builds
# per run (see ``vm.EVM.execute``). Order here and there must match.
(
    HID_INVALID,
    HID_STOP,
    HID_PUSH,
    HID_TRUNC_PUSH,
    HID_ADD,
    HID_MUL,
    HID_SUB,
    HID_DIV,
    HID_MOD,
    HID_LT,
    HID_GT,
    HID_EQ,
    HID_ISZERO,
    HID_AND,
    HID_OR,
    HID_XOR,
    HID_NOT,
    HID_SHA3,
    HID_CALLER,
    HID_CALLVALUE,
    HID_CALLDATALOAD,
    HID_POP,
    HID_MLOAD,
    HID_MSTORE,
    HID_SLOAD,
    HID_SSTORE,
    HID_JUMP,
    HID_JUMPI,
    HID_PC,
    HID_GAS,
    HID_JUMPDEST,
    HID_DUP,
    HID_SWAP,
    HID_RETURN,
    HID_REVERT,
) = range(35)

#: Number of handler slots (dispatch-table length).
HANDLER_COUNT = 35

_SIMPLE_HIDS: dict[int, int] = {
    op.STOP: HID_STOP,
    op.ADD: HID_ADD,
    op.MUL: HID_MUL,
    op.SUB: HID_SUB,
    op.DIV: HID_DIV,
    op.MOD: HID_MOD,
    op.LT: HID_LT,
    op.GT: HID_GT,
    op.EQ: HID_EQ,
    op.ISZERO: HID_ISZERO,
    op.AND: HID_AND,
    op.OR: HID_OR,
    op.XOR: HID_XOR,
    op.NOT: HID_NOT,
    op.SHA3: HID_SHA3,
    op.CALLER: HID_CALLER,
    op.CALLVALUE: HID_CALLVALUE,
    op.CALLDATALOAD: HID_CALLDATALOAD,
    op.POP: HID_POP,
    op.MLOAD: HID_MLOAD,
    op.MSTORE: HID_MSTORE,
    op.SLOAD: HID_SLOAD,
    op.SSTORE: HID_SSTORE,
    op.JUMP: HID_JUMP,
    op.JUMPI: HID_JUMPI,
    op.PC: HID_PC,
    op.GAS: HID_GAS,
    op.JUMPDEST: HID_JUMPDEST,
    op.RETURN: HID_RETURN,
    op.REVERT: HID_REVERT,
}

#: One decoded instruction: (handler_id, gas, pops, opcode, operand,
#: next_pc, name). ``operand`` is the PUSH immediate or DUP/SWAP stack
#: index; ``next_pc`` is the fall-through successor.
Instr = tuple[int, int, int, int, int | None, int, str]


class Program:
    """One immutable decoded code blob, shareable across interpreters."""

    __slots__ = ("code", "length", "insts", "jumpdests")

    def __init__(
        self,
        code: bytes,
        insts: list[Instr],
        jumpdests: frozenset[int],
    ) -> None:
        self.code = code
        self.length = len(code)
        self.insts = insts
        self.jumpdests = jumpdests

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program(len={self.length}, jumpdests={len(self.jumpdests)})"
        )


def scan_jumpdests(code: bytes) -> frozenset[int]:
    """Valid JUMPDEST offsets (skipping PUSH immediates)."""
    dests: set[int] = set()
    pc = 0
    n = len(code)
    while pc < n:
        opcode = code[pc]
        if opcode == op.JUMPDEST:
            dests.add(pc)
        if opcode == op.PUSH:
            pc += 1 + op.PUSH_IMMEDIATE_BYTES
        else:
            pc += 1
    return frozenset(dests)


def _decode(code: bytes) -> Program:
    """Decode every byte offset; never raises on malformed code."""
    n = len(code)
    insts: list[Instr] = []
    append = insts.append
    opcodes = op.OPCODES
    push_width = op.PUSH_IMMEDIATE_BYTES
    for pc in range(n):
        opcode = code[pc]
        info = opcodes.get(opcode)
        if info is None:
            # Executed lazily: only fails if the interpreter reaches it.
            append((HID_INVALID, 0, 0, opcode, None, pc + 1, "INVALID"))
            continue
        gas = OPCODE_GAS[opcode]
        if opcode == op.PUSH:
            immediate = code[pc + 1 : pc + 1 + push_width]
            if len(immediate) < push_width:
                append(
                    (HID_TRUNC_PUSH, gas, info.pops, opcode, None, n, "PUSH")
                )
            else:
                append(
                    (
                        HID_PUSH,
                        gas,
                        info.pops,
                        opcode,
                        int.from_bytes(immediate, "big"),
                        pc + 1 + push_width,
                        "PUSH",
                    )
                )
        elif op.DUP1 <= opcode < op.DUP1 + 16:
            depth = opcode - op.DUP1 + 1
            append((HID_DUP, gas, info.pops, opcode, depth, pc + 1, info.name))
        elif op.SWAP1 <= opcode < op.SWAP1 + 16:
            # Pre-add the 1 so the handler indexes stack[-operand].
            depth = opcode - op.SWAP1 + 2
            append((HID_SWAP, gas, info.pops, opcode, depth, pc + 1, info.name))
        else:
            append(
                (
                    _SIMPLE_HIDS[opcode],
                    gas,
                    info.pops,
                    opcode,
                    None,
                    pc + 1,
                    info.name,
                )
            )
    return Program(code, insts, scan_jumpdests(code))


#: Decoded programs keyed by code bytes. 256 distinct contract bodies
#: is far beyond what any scenario deploys; sized for safety, not need.
PROGRAM_CACHE_CAPACITY = 256

_cache: LRUCache[bytes, Program] = LRUCache(PROGRAM_CACHE_CAPACITY)


def decode_program(code: bytes, use_cache: bool = True) -> Program:
    """Decoded :class:`Program` for ``code``, from the LRU when possible."""
    if not use_cache:
        return _decode(code)
    program = _cache.get(code)
    if program is None:
        program = _decode(code)
        _cache.put(code, program)
    return program


def program_cache_stats() -> dict[str, int | float]:
    """Hit/miss counters for tests and the perf harness."""
    return {
        "size": len(_cache),
        "capacity": _cache.capacity,
        "hits": _cache.hits,
        "misses": _cache.misses,
        "hit_rate": _cache.hit_rate(),
    }


def clear_program_cache() -> None:
    """Drop all cached programs (test isolation)."""
    global _cache
    _cache = LRUCache(PROGRAM_CACHE_CAPACITY)
