"""Storage substrate: KV interfaces, the LSM engine, and metrics."""

from .kv import KVStore, MemKVStore
from .lsm.bloom import BloomFilter
from .lsm.db import LSMConfig, LSMStore, leveldb_config, rocksdb_config
from .lsm.memtable import TOMBSTONE, MemTable
from .lsm.sstable import SSTableReader, write_sstable
from .lsm.wal import WriteAheadLog
from .metrics import StorageReport, report_for

__all__ = [
    "KVStore",
    "MemKVStore",
    "BloomFilter",
    "LSMConfig",
    "LSMStore",
    "leveldb_config",
    "rocksdb_config",
    "TOMBSTONE",
    "MemTable",
    "SSTableReader",
    "write_sstable",
    "WriteAheadLog",
    "StorageReport",
    "report_for",
]
