"""K-way merge used by flushes, compactions, and scans.

Sources are ordered newest-first; when several sources carry the same
key the newest wins, which is the shadowing rule that makes LSM deletes
and overwrites work.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from .memtable import TOMBSTONE


def merge_sorted_sources(
    sources: list[Iterator[tuple[bytes, bytes]]],
    drop_tombstones: bool,
) -> Iterator[tuple[bytes, bytes]]:
    """Merge key-ordered sources with newest-first precedence.

    ``sources[0]`` is the newest. With ``drop_tombstones`` the merged
    output omits deletion markers — only valid when merging into the
    bottom level (nothing older can resurrect the key).
    """
    heap: list[tuple[bytes, int, bytes, Iterator[tuple[bytes, bytes]]]] = []
    for priority, source in enumerate(sources):
        for key, value in source:
            heap.append((key, priority, value, source))
            break
    heapq.heapify(heap)
    previous_key: bytes | None = None
    while heap:
        key, priority, value, source = heapq.heappop(heap)
        for next_key, next_value in source:
            heapq.heappush(heap, (next_key, priority, next_value, source))
            break
        if key == previous_key:
            continue  # an older source's version of an emitted key
        previous_key = key
        if drop_tombstones and value == TOMBSTONE:
            continue
        yield key, value
