"""Write-ahead log with per-record checksums.

Every mutation is appended to the WAL before it reaches the memtable,
so an engine re-opened after a crash replays the log and loses nothing.
Records are length-prefixed and CRC-protected; a torn tail (partial
final record) is tolerated and truncated, matching LevelDB semantics.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator

from ...errors import CorruptionError

_HEADER = struct.Struct(">III")  # crc32, key_len, value_len


class WriteAheadLog:
    """Append-only, checksummed record log."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")

    def append(self, key: bytes, value: bytes) -> None:
        payload = key + value
        crc = zlib.crc32(payload)
        self._file.write(_HEADER.pack(crc, len(key), len(value)))
        self._file.write(payload)

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()

    def size_bytes(self) -> int:
        self._file.flush()
        return self.path.stat().st_size

    def reset(self) -> None:
        """Truncate after a successful memtable flush."""
        self._file.close()
        self._file = open(self.path, "wb")

    @classmethod
    def replay(cls, path: Path) -> Iterator[tuple[bytes, bytes]]:
        """Yield (key, value) records; stop cleanly at a torn tail."""
        path = Path(path)
        if not path.exists():
            return
        with open(path, "rb") as f:
            blob = f.read()
        offset = 0
        total = len(blob)
        while offset + _HEADER.size <= total:
            crc, key_len, value_len = _HEADER.unpack_from(blob, offset)
            start = offset + _HEADER.size
            end = start + key_len + value_len
            if end > total:
                return  # torn final record: ignore, like LevelDB
            payload = blob[start:end]
            if zlib.crc32(payload) != crc:
                raise CorruptionError(f"WAL checksum mismatch at offset {offset}")
            yield payload[:key_len], payload[key_len:]
            offset = end
