"""Bloom filter for SSTable point-lookup short-circuiting."""

from __future__ import annotations

import hashlib
import math

from ...errors import CorruptionError


class BloomFilter:
    """Fixed-size Bloom filter over byte keys.

    >>> bf = BloomFilter.for_capacity(100)
    >>> bf.add(b"present")
    >>> bf.may_contain(b"present")
    True
    """

    MAGIC = b"BLM1"

    def __init__(self, n_bits: int, n_hashes: int) -> None:
        if n_bits <= 0 or n_hashes <= 0:
            raise CorruptionError("bloom filter needs positive sizing")
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self._bits = bytearray((n_bits + 7) // 8)

    @classmethod
    def for_capacity(cls, n_keys: int, bits_per_key: int = 10) -> "BloomFilter":
        """Standard sizing: ~1% false positives at 10 bits/key."""
        n_bits = max(64, n_keys * bits_per_key)
        n_hashes = max(1, round(bits_per_key * math.log(2)))
        return cls(n_bits, n_hashes)

    def _positions(self, key: bytes) -> list[int]:
        digest = hashlib.sha256(key).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        return [(h1 + i * h2) % self.n_bits for i in range(self.n_hashes)]

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits[pos // 8] |= 1 << (pos % 8)

    def may_contain(self, key: bytes) -> bool:
        return all(
            self._bits[pos // 8] & (1 << (pos % 8)) for pos in self._positions(key)
        )

    # ------------------------------------------------------------------
    # Serialization (embedded in SSTable files)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        header = (
            self.MAGIC
            + self.n_bits.to_bytes(4, "big")
            + self.n_hashes.to_bytes(2, "big")
        )
        return header + bytes(self._bits)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "BloomFilter":
        if blob[:4] != cls.MAGIC:
            raise CorruptionError("bad bloom filter magic")
        n_bits = int.from_bytes(blob[4:8], "big")
        n_hashes = int.from_bytes(blob[8:10], "big")
        bloom = cls(n_bits, n_hashes)
        bits = blob[10:]
        if len(bits) != len(bloom._bits):
            raise CorruptionError("bloom filter payload length mismatch")
        bloom._bits = bytearray(bits)
        return bloom
