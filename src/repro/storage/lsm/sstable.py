"""Immutable sorted string tables (SSTables).

Each table holds a sorted run of records with an embedded Bloom filter
and a sparse index. Point lookups do: bloom check -> binary search of
the sparse index -> short forward scan; so a miss usually costs zero
disk reads and a hit costs one seek.

Layout::

    MAGIC "SST1"
    u32 bloom_len   | bloom blob
    u32 index_len   | index entries: (u16 key_len, key, u64 offset)*
    u64 record_count
    data records: (u32 key_len, u32 value_len, key, value)*
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from pathlib import Path
from typing import Iterator

from ...errors import CorruptionError
from .bloom import BloomFilter
from .memtable import TOMBSTONE

_MAGIC = b"SST1"
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_RECORD = struct.Struct(">II")

#: Every Nth record lands in the sparse index.
INDEX_INTERVAL = 16


def write_sstable(
    path: Path,
    records: Iterator[tuple[bytes, bytes]],
    bits_per_key: int = 10,
) -> "SSTableReader":
    """Materialize sorted ``records`` (tombstones included) at ``path``."""
    items = list(records)
    bloom = BloomFilter.for_capacity(max(1, len(items)), bits_per_key)
    index_entries: list[tuple[bytes, int]] = []
    data = bytearray()
    for position, (key, value) in enumerate(items):
        bloom.add(key)
        if position % INDEX_INTERVAL == 0:
            index_entries.append((key, len(data)))
        data += _RECORD.pack(len(key), len(value))
        data += key
        data += value
    bloom_blob = bloom.to_bytes()
    index_blob = bytearray()
    for key, offset in index_entries:
        index_blob += _U16.pack(len(key))
        index_blob += key
        index_blob += _U64.pack(offset)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as f:
        f.write(_MAGIC)
        f.write(_U32.pack(len(bloom_blob)))
        f.write(bloom_blob)
        f.write(_U32.pack(len(index_blob)))
        f.write(index_blob)
        f.write(_U64.pack(len(items)))
        f.write(data)
    return SSTableReader(path)


class SSTableReader:
    """Read handle over one SSTable file."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as f:
            if f.read(4) != _MAGIC:
                raise CorruptionError(f"{self.path.name}: bad SSTable magic")
            (bloom_len,) = _U32.unpack(f.read(4))
            self.bloom = BloomFilter.from_bytes(f.read(bloom_len))
            (index_len,) = _U32.unpack(f.read(4))
            index_blob = f.read(index_len)
            (self.record_count,) = _U64.unpack(f.read(8))
            self._data_start = f.tell()
        self._index_keys: list[bytes] = []
        self._index_offsets: list[int] = []
        offset = 0
        while offset < len(index_blob):
            (key_len,) = _U16.unpack_from(index_blob, offset)
            offset += 2
            self._index_keys.append(index_blob[offset : offset + key_len])
            offset += key_len
            (data_offset,) = _U64.unpack_from(index_blob, offset)
            offset += 8
            self._index_offsets.append(data_offset)
        self.file_size = self.path.stat().st_size
        self.min_key = self._index_keys[0] if self._index_keys else None
        self.max_key = self._last_key() if self._index_keys else None

    def _last_key(self) -> bytes:
        last = None
        for key, _ in self._iter_from(self._index_offsets[-1]):
            last = key
        assert last is not None
        return last

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> bytes | None:
        """Raw lookup; returns the tombstone sentinel for deletions."""
        if not self._index_keys or not self.bloom.may_contain(key):
            return None
        if self.min_key is not None and key < self.min_key:
            return None
        slot = bisect_right(self._index_keys, key) - 1
        if slot < 0:
            return None
        for candidate, value in self._iter_from(self._index_offsets[slot]):
            if candidate == key:
                return value
            if candidate > key:
                return None
        return None

    def may_contain_range(self, key: bytes) -> bool:
        """Key-range check used to skip tables during level lookups."""
        if self.min_key is None or self.max_key is None:
            return False
        return self.min_key <= key <= self.max_key

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def _iter_from(self, data_offset: int) -> Iterator[tuple[bytes, bytes]]:
        with open(self.path, "rb") as f:
            f.seek(self._data_start + data_offset)
            while True:
                header = f.read(_RECORD.size)
                if len(header) < _RECORD.size:
                    return
                key_len, value_len = _RECORD.unpack(header)
                key = f.read(key_len)
                value = f.read(value_len)
                if len(key) < key_len or len(value) < value_len:
                    raise CorruptionError(f"{self.path.name}: truncated record")
                yield key, value

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """All records in key order, tombstones included."""
        yield from self._iter_from(0)

    def live_items(self) -> Iterator[tuple[bytes, bytes]]:
        """All records except tombstones."""
        for key, value in self.items():
            if value != TOMBSTONE:
                yield key, value

    def delete_file(self) -> None:
        self.path.unlink(missing_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SSTable {self.path.name} n={self.record_count} "
            f"bytes={self.file_size}>"
        )
