"""The LSM storage engine: LevelDB / RocksDB stand-in.

A real log-structured merge engine: writes land in a WAL plus memtable,
memtables flush to L0 SSTables, and leveled compaction merges runs down
the tree. ``leveldb_config`` and ``rocksdb_config`` provide the presets
used by the Ethereum and Hyperledger platforms — RocksDB gets a larger
write buffer and larger level targets, the tuning the paper credits for
Hyperledger staying efficient at scale ("Hyperledger leverages RocksDB
to manage its states, which makes it more efficient at scale",
Section 4.2.2).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ...errors import CorruptionError, StorageError
from ..kv import KVStore
from .compaction import merge_sorted_sources
from .memtable import TOMBSTONE, MemTable
from .sstable import SSTableReader, write_sstable
from .wal import WriteAheadLog


@dataclass(frozen=True)
class LSMConfig:
    """Tuning knobs for one engine instance."""

    memtable_bytes: int = 2 * 1024 * 1024
    l0_compaction_trigger: int = 4
    base_level_bytes: int = 8 * 1024 * 1024
    level_size_multiplier: int = 8
    max_levels: int = 6
    bits_per_key: int = 10


def leveldb_config() -> LSMConfig:
    """Preset mirroring LevelDB defaults (Ethereum's store)."""
    return LSMConfig(
        memtable_bytes=2 * 1024 * 1024,
        l0_compaction_trigger=4,
        base_level_bytes=8 * 1024 * 1024,
        level_size_multiplier=8,
    )


def rocksdb_config() -> LSMConfig:
    """Preset mirroring RocksDB server defaults (Hyperledger's store)."""
    return LSMConfig(
        memtable_bytes=8 * 1024 * 1024,
        l0_compaction_trigger=4,
        base_level_bytes=32 * 1024 * 1024,
        level_size_multiplier=10,
    )


class LSMStore(KVStore):
    """Persistent ordered store with real on-disk SSTables.

    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as d:
    ...     db = LSMStore(d)
    ...     db.put(b"k", b"v")
    ...     db.get(b"k")
    ...     db.close()
    b'v'
    """

    def __init__(self, directory: str | Path, config: LSMConfig | None = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.config = config or LSMConfig()
        self.memtable = MemTable()
        self.levels: list[list[SSTableReader]] = [
            [] for _ in range(self.config.max_levels)
        ]
        self._next_table_id = 0
        self._closed = False
        # Stats for the IOHeavy experiment.
        self.write_ops = 0
        self.read_ops = 0
        self.flush_count = 0
        self.compaction_count = 0
        self.bytes_flushed = 0
        self.bytes_compacted = 0
        self._load_manifest()
        self.wal = WriteAheadLog(self.directory / "wal.log")
        self._replay_wal()

    # ------------------------------------------------------------------
    # Manifest (live-table registry; rewritten atomically on change)
    # ------------------------------------------------------------------
    @property
    def _manifest_path(self) -> Path:
        return self.directory / "MANIFEST.json"

    def _load_manifest(self) -> None:
        if not self._manifest_path.exists():
            return
        try:
            manifest = json.loads(self._manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise CorruptionError(f"unreadable manifest: {exc}") from exc
        self._next_table_id = manifest["next_table_id"]
        for level_index, names in enumerate(manifest["levels"]):
            for name in names:
                path = self.directory / name
                if not path.exists():
                    raise CorruptionError(f"manifest references missing {name}")
                self.levels[level_index].append(SSTableReader(path))

    def _save_manifest(self) -> None:
        manifest = {
            "next_table_id": self._next_table_id,
            "levels": [[t.path.name for t in level] for level in self.levels],
        }
        tmp = self._manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest))
        tmp.replace(self._manifest_path)

    def _replay_wal(self) -> None:
        for key, value in WriteAheadLog.replay(self.directory / "wal.log"):
            self.memtable.put(key, value)

    # ------------------------------------------------------------------
    # KVStore interface
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        self._check_open()
        if value == TOMBSTONE:
            raise StorageError("value collides with the tombstone sentinel")
        self.write_ops += 1
        self.wal.append(key, value)
        self.memtable.put(key, value)
        if self.memtable.approx_bytes >= self.config.memtable_bytes:
            self.flush()

    def delete(self, key: bytes) -> None:
        self._check_open()
        self.write_ops += 1
        self.wal.append(key, TOMBSTONE)
        self.memtable.delete(key)
        if self.memtable.approx_bytes >= self.config.memtable_bytes:
            self.flush()

    def get(self, key: bytes) -> bytes | None:
        self._check_open()
        self.read_ops += 1
        value = self.memtable.get(key)
        if value is not None:
            return None if value == TOMBSTONE else value
        for table in self.levels[0]:  # L0: newest first, ranges overlap
            value = table.get(key)
            if value is not None:
                return None if value == TOMBSTONE else value
        for level in self.levels[1:]:
            for table in level:  # deeper levels: disjoint ranges
                if table.may_contain_range(key):
                    value = table.get(key)
                    if value is not None:
                        return None if value == TOMBSTONE else value
                    break
        return None

    def scan(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        self._check_open()
        sources: list[Iterator[tuple[bytes, bytes]]] = [self.memtable.sorted_items()]
        for table in self.levels[0]:
            sources.append(table.items())
        for level in self.levels[1:]:
            for table in sorted(level, key=lambda t: t.min_key or b""):
                sources.append(table.items())
        for key, value in merge_sorted_sources(sources, drop_tombstones=True):
            if key.startswith(prefix):
                yield key, value
            elif prefix and key > prefix and not key.startswith(prefix):
                # Keys are ordered; once past the prefix range, stop.
                if key[: len(prefix)] > prefix:
                    return

    def approx_bytes(self) -> int:
        return self.disk_usage_bytes()

    def disk_usage_bytes(self) -> int:
        """Real on-disk footprint: SSTables plus WAL."""
        total = sum(t.file_size for level in self.levels for t in level)
        if not self._closed:
            total += self.wal.size_bytes()
        return total

    def close(self) -> None:
        if self._closed:
            return
        self.wal.sync()
        self.wal.close()
        self._closed = True

    # ------------------------------------------------------------------
    # Flush and compaction
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write the memtable out as a new L0 SSTable."""
        if not self.memtable:
            return
        table = write_sstable(
            self._new_table_path(),
            self.memtable.sorted_items(),
            bits_per_key=self.config.bits_per_key,
        )
        self.flush_count += 1
        self.bytes_flushed += table.file_size
        self.levels[0].insert(0, table)  # newest first
        self.memtable.clear()
        self.wal.reset()
        self._save_manifest()
        self._maybe_compact()

    def _new_table_path(self) -> Path:
        path = self.directory / f"sst-{self._next_table_id:08d}.sst"
        self._next_table_id += 1
        return path

    def _level_target_bytes(self, level_index: int) -> int:
        return self.config.base_level_bytes * (
            self.config.level_size_multiplier ** (level_index - 1)
        )

    def _maybe_compact(self) -> None:
        if len(self.levels[0]) >= self.config.l0_compaction_trigger:
            self._compact_into(0)
        for level_index in range(1, self.config.max_levels - 1):
            level_bytes = sum(t.file_size for t in self.levels[level_index])
            if level_bytes > self._level_target_bytes(level_index):
                self._compact_into(level_index)

    def _compact_into(self, source_level: int) -> None:
        """Merge all of ``source_level`` plus the next level down."""
        target_level = source_level + 1
        source_tables = self.levels[source_level]
        target_tables = self.levels[target_level]
        if not source_tables:
            return
        sources: list[Iterator[tuple[bytes, bytes]]] = [
            t.items() for t in source_tables
        ]
        sources.extend(
            t.items() for t in sorted(target_tables, key=lambda t: t.min_key or b"")
        )
        is_bottom = target_level == self.config.max_levels - 1 or not any(
            self.levels[i] for i in range(target_level + 1, self.config.max_levels)
        )
        merged = merge_sorted_sources(sources, drop_tombstones=is_bottom)
        new_table = write_sstable(
            self._new_table_path(), merged, bits_per_key=self.config.bits_per_key
        )
        self.compaction_count += 1
        self.bytes_compacted += new_table.file_size
        for table in source_tables + target_tables:
            table.delete_file()
        self.levels[source_level] = []
        if new_table.record_count:
            self.levels[target_level] = [new_table]
        else:
            new_table.delete_file()
            self.levels[target_level] = []
        self._save_manifest()

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")

    def __len__(self) -> int:
        return sum(1 for _ in self.scan())
