"""In-memory write buffer for the LSM engine."""

from __future__ import annotations

from typing import Iterator

#: Sentinel distinguishing "deleted" from "absent" inside the engine.
TOMBSTONE = b"\x00__tombstone__\x00"


class MemTable:
    """Unordered write buffer; sorted on flush.

    The engine only needs ordered iteration at flush time, so keeping a
    plain dict and sorting once is both simpler and faster in Python
    than maintaining a skip list per write.
    """

    def __init__(self) -> None:
        self._data: dict[bytes, bytes] = {}
        self.approx_bytes = 0

    def put(self, key: bytes, value: bytes) -> None:
        old = self._data.get(key)
        if old is not None:
            self.approx_bytes -= len(key) + len(old)
        self._data[key] = value
        self.approx_bytes += len(key) + len(value)

    def delete(self, key: bytes) -> None:
        self.put(key, TOMBSTONE)

    def get(self, key: bytes) -> bytes | None:
        """Raw lookup; may return the tombstone sentinel."""
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def sorted_items(self) -> Iterator[tuple[bytes, bytes]]:
        """Key-ordered iteration (tombstones included) for flushing."""
        for key in sorted(self._data):
            yield key, self._data[key]

    def clear(self) -> None:
        self._data.clear()
        self.approx_bytes = 0
