"""Key-value store interfaces.

Blockchain platforms in the paper persist state through an embedded
key-value store — LevelDB for Ethereum, RocksDB for Hyperledger, and
plain process memory for Parity (Section 3.1.2). This module defines
the store contract those platforms program against plus the in-memory
implementation Parity uses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from ..errors import StorageError


class KVStore(ABC):
    """Abstract ordered key-value store."""

    @abstractmethod
    def get(self, key: bytes) -> bytes | None:
        """Value for ``key`` or None when absent."""

    @abstractmethod
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""

    @abstractmethod
    def delete(self, key: bytes) -> None:
        """Remove ``key`` if present (no error when absent)."""

    @abstractmethod
    def scan(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        """All live pairs whose key starts with ``prefix``, key-ordered."""

    @abstractmethod
    def approx_bytes(self) -> int:
        """Approximate bytes of live data (memory or disk footprint)."""

    def close(self) -> None:
        """Release resources; further use is undefined."""

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None


class MemKVStore(KVStore):
    """Dict-backed store with byte accounting and an optional cap.

    The cap models process-memory exhaustion: Parity "holds all the
    state information in memory ... but fails to handle large data"
    (Section 4.2.2, Figure 12's OOM cells). Exceeding the cap raises
    :class:`StorageError` tagged as out-of-memory.
    """

    def __init__(self, memory_cap_bytes: int | None = None) -> None:
        self._data: dict[bytes, bytes] = {}
        self._bytes = 0
        self.memory_cap_bytes = memory_cap_bytes
        self.write_ops = 0
        self.read_ops = 0

    def get(self, key: bytes) -> bytes | None:
        self.read_ops += 1
        return self._data.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self.write_ops += 1
        old = self._data.get(key)
        if old is not None:
            self._bytes -= len(key) + len(old)
        self._data[key] = value
        self._bytes += len(key) + len(value)
        if self.memory_cap_bytes is not None and self._bytes > self.memory_cap_bytes:
            raise StorageError(
                f"out of memory: {self._bytes} bytes exceeds cap "
                f"{self.memory_cap_bytes} (Parity-style in-memory state)"
            )

    def delete(self, key: bytes) -> None:
        self.write_ops += 1
        old = self._data.pop(key, None)
        if old is not None:
            self._bytes -= len(key) + len(old)

    def scan(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        for key in sorted(self._data):
            if key.startswith(prefix):
                yield key, self._data[key]

    def approx_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._data)
