"""Storage metrics aggregation used by the IOHeavy experiment."""

from __future__ import annotations

from dataclasses import dataclass

from .kv import KVStore, MemKVStore
from .lsm.db import LSMStore


@dataclass
class StorageReport:
    """Point-in-time view of one store's footprint and IO counters."""

    backend: str
    live_bytes: int
    disk_bytes: int
    write_ops: int
    read_ops: int
    flushes: int
    compactions: int

    @property
    def write_amplification(self) -> float:
        """Physical bytes written per logical byte (LSM engines only)."""
        if self.live_bytes == 0:
            return 0.0
        return self.disk_bytes / self.live_bytes


def report_for(store: KVStore, backend: str = "") -> StorageReport:
    """Build a :class:`StorageReport` for any supported store."""
    if isinstance(store, LSMStore):
        return StorageReport(
            backend=backend or "lsm",
            live_bytes=store.memtable.approx_bytes,
            disk_bytes=store.disk_usage_bytes(),
            write_ops=store.write_ops,
            read_ops=store.read_ops,
            flushes=store.flush_count,
            compactions=store.compaction_count,
        )
    if isinstance(store, MemKVStore):
        return StorageReport(
            backend=backend or "memory",
            live_bytes=store.approx_bytes(),
            disk_bytes=0,
            write_ops=store.write_ops,
            read_ops=store.read_ops,
            flushes=0,
            compactions=0,
        )
    return StorageReport(
        backend=backend or type(store).__name__,
        live_bytes=store.approx_bytes(),
        disk_bytes=store.approx_bytes(),
        write_ops=0,
        read_ops=0,
        flushes=0,
        compactions=0,
    )
