"""One-call experiment orchestration.

Builds a cluster, attaches a workload and N clients, arms any fault
schedule, runs for the configured duration, and returns everything the
benchmark harnesses need — the whole Figure 4 pipeline in one function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..platforms.cluster import build_cluster
from .driver import Driver, DriverConfig, OpenLoopDriver
from .faults import FaultSchedule
from .stats import StatsCollector, StatsSummary
from .workload import ArrivalSpec


@dataclass
class ExperimentSpec:
    """Everything defining one benchmark run."""

    platform: str = "hyperledger"
    workload: str = "ycsb"
    workload_params: dict[str, Any] = field(default_factory=dict)
    #: Fraction of read operations in the workload's operation mix
    #: (0.0 = all writes, 1.0 = all reads). None keeps the workload's
    #: native mix. Translated per-workload via
    #: ``Workload.read_ratio_params`` — not every workload supports it.
    read_ratio: float | None = None
    n_servers: int = 8
    n_clients: int = 8
    request_rate_tx_s: float = 100.0
    duration_s: float = 60.0
    seed: int = 42
    blocking: bool = False
    #: Confirm via the backend's push feed instead of polling (ErisDB).
    subscribe: bool = False
    #: Driver knobs (DriverConfig pass-throughs), sweepable as scenario
    #: axes: the getLatestBlock poll period, worker threads per client,
    #: and the backoff before a rejected submission is retried.
    #: Defaults come from DriverConfig — the single source of truth.
    poll_interval_s: float = DriverConfig.poll_interval_s
    threads_per_client: int = DriverConfig.threads_per_client
    retry_interval_s: float = DriverConfig.retry_interval_s
    #: Client implementation: "coroutine" (awaitable API), "callback"
    #: (legacy adapter path), or "batch" (vectorized BatchClient).
    #: Timelines are bit-identical across all three; see driver.py.
    client_mode: str = "coroutine"
    #: Client-side crash tolerance: fail over to the next live server
    #: when an RPC times out, with exponential backoff capped at
    #: ``max_backoff_s``. See DriverConfig.
    failover: bool = False
    max_backoff_s: float = DriverConfig.max_backoff_s
    #: Open-loop arrival process (JSON shape, see ArrivalSpec): when
    #: set, the run uses the OpenLoopDriver instead of closed-loop
    #: clients and ignores n_clients / request_rate_tx_s /
    #: threads_per_client / blocking / subscribe / client_mode.
    arrival: dict[str, Any] | None = None
    #: Bound the latency sample set in memory (reservoir size; 0 keeps
    #: every sample). See StatsCollector for the accuracy tradeoff.
    stats_reservoir: int = 0
    #: Record per-transaction lifecycle stage timestamps
    #: (repro.core.trace) and attach a StageBreakdown to the summary.
    #: Off produces byte-identical output to a build without tracing.
    trace_stages: bool = True
    with_monitor: bool = False
    faults: FaultSchedule | None = None
    config: Any = None  # platform config override (Python object)
    #: JSON-shaped platform-knob overrides (scenario-file ``overrides``)
    #: applied on top of ``config`` or the platform default by
    #: ``build_cluster`` — e.g. ``{"pbft": {"batch_size": 250}}``.
    #: Unlike ``config``, this survives serialization, so it is part of
    #: the content-addressed spec hash resumable suites key on.
    config_overrides: dict[str, Any] = field(default_factory=dict)
    drain_s: float = 5.0
    #: Scenario bookkeeping, set by the scenario engine: which
    #: ScenarioSpec expanded into this run, and a human label for the
    #: grid point (e.g. a config-axis knob like ``batch=500``).
    scenario: str = ""
    label: str = ""


@dataclass
class ExperimentResult:
    """Run outputs: stats + cluster-level measurements."""

    spec: ExperimentSpec
    summary: StatsSummary
    stats: StatsCollector
    queue_series: list[tuple[float, int]]
    chain_height: int
    total_blocks: int
    main_branch_blocks: int
    mean_cpu_pct: float
    mean_net_mbps: float
    view_changes: int = 0
    #: Blocks executed at confirmation depth but later reorged away —
    #: the realized double-spend exposure (confirmation-depth ablation).
    stale_executions: int = 0
    #: Count of chain safety violations the auditor flagged (also in
    #: ``summary.safety_violations``; duplicated here so persisted run
    #: files carry it next to the other cluster-level measurements).
    safety_violations: int = 0
    #: Full auditor verdict (AuditReport.to_json()): per-violation
    #: height, replicas, and byzantine fault context.
    safety_report: dict[str, Any] | None = None

    @property
    def throughput(self) -> float:
        return self.summary.throughput_tx_s

    @property
    def latency(self) -> float:
        return self.summary.latency_avg_s


def _read_ratio_params(
    workload: str, ratio: float, params: dict[str, Any]
) -> dict[str, Any]:
    """Translate ``read_ratio`` into workload-native config kwargs.

    Each workload declares its own mapping via
    ``Workload.read_ratio_params`` (YCSB: read/update proportions;
    Smallbank: the balance-query fraction); workloads with a fixed
    operation mix raise. Explicit ``workload_params`` that would be
    overwritten are a spec error, not a silent override.
    """
    from ..errors import BenchmarkError
    from ..registry import WORKLOADS

    if not 0.0 <= ratio <= 1.0:
        raise BenchmarkError(f"read_ratio must be in [0, 1], got {ratio}")
    extra = WORKLOADS.get(workload).workload_type.read_ratio_params(ratio)
    overlap = sorted(set(extra) & set(params))
    if overlap:
        raise BenchmarkError(
            f"read_ratio conflicts with explicit workload_params "
            f"({', '.join(overlap)}); set one or the other"
        )
    return extra


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Execute one macro-benchmark run end to end."""
    # Imported here: repro.workloads imports repro.core for the
    # Workload/connector interfaces, so a module-level import would be
    # circular.
    from ..workloads import make_workload

    # Built first: DriverConfig validates the driver knobs, so a bad
    # spec fails before the (comparatively expensive) cluster build.
    config = DriverConfig(
        n_clients=spec.n_clients,
        request_rate_tx_s=spec.request_rate_tx_s,
        duration_s=spec.duration_s,
        poll_interval_s=spec.poll_interval_s,
        threads_per_client=spec.threads_per_client,
        retry_interval_s=spec.retry_interval_s,
        blocking=spec.blocking,
        subscribe=spec.subscribe,
        client_mode=spec.client_mode,
        failover=spec.failover,
        max_backoff_s=spec.max_backoff_s,
        arrival=(
            ArrivalSpec.from_dict(spec.arrival)
            if spec.arrival is not None
            else None
        ),
        stats_reservoir=spec.stats_reservoir,
    )
    cluster = build_cluster(
        spec.platform,
        spec.n_servers,
        seed=spec.seed,
        config=spec.config,
        config_overrides=spec.config_overrides or None,
        with_monitor=spec.with_monitor,
        trace_stages=spec.trace_stages,
    )
    workload_params = dict(spec.workload_params)
    if spec.read_ratio is not None:
        workload_params.update(
            _read_ratio_params(spec.workload, spec.read_ratio, workload_params)
        )
    workload = make_workload(spec.workload, **workload_params)
    if config.arrival is not None:
        driver = OpenLoopDriver(cluster, workload, config)
    else:
        driver = Driver(cluster, workload, config)
    driver.prepare()
    if spec.faults is not None:
        spec.faults.arm(cluster)
    stats = driver.run(extra_drain_s=spec.drain_s)
    total, main = cluster.global_block_stats()
    view_changes = 0
    for node in cluster.nodes:
        view_changes += getattr(node.protocol, "view_changes_started", 0)
    audit_report = (
        cluster.auditor.report() if cluster.auditor is not None else None
    )
    summary = stats.summary()
    if audit_report is not None:
        summary.safety_violations = len(audit_report.violations)
    if cluster.tracer is not None:
        summary.stage_breakdown = cluster.tracer.breakdown(
            stats.stage_queue_samples
        )
    summary.recovery_time_s = cluster.recovery_times()
    sync = cluster.sync_traffic()
    summary.sync_requests = sync["requests"]
    summary.sync_blocks = sync["blocks"]
    summary.sync_bytes = sync["bytes"]
    result = ExperimentResult(
        spec=spec,
        summary=summary,
        stats=stats,
        queue_series=driver.queue_series(),
        chain_height=cluster.chain_height(),
        total_blocks=total,
        main_branch_blocks=main,
        mean_cpu_pct=cluster.monitor.mean_cpu_pct() if cluster.monitor else 0.0,
        mean_net_mbps=cluster.monitor.mean_net_mbps() if cluster.monitor else 0.0,
        view_changes=view_changes,
        stale_executions=cluster.stale_executions(),
        safety_violations=summary.safety_violations,
        safety_report=audit_report.to_json() if audit_report else None,
    )
    cluster.close()
    return result
