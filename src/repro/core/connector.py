"""Blockchain connector interface (the paper's IBlockchainConnector).

"The interface contains operations for deploying application, invoking
it by sending a transaction, and for querying the blockchain's states"
(Section 3.2). The simulation connector speaks the platforms' RPC
message protocol from a client-side SimNode; a new backend integrates
by implementing this interface, exactly as in Figure 4.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, TYPE_CHECKING

from ..chain import Transaction
from ..errors import ConnectorError
from ..sim import Message, SimNode

if TYPE_CHECKING:  # pragma: no cover
    from ..platforms.cluster import Cluster


class IBlockchainConnector(ABC):
    """Backend-facing operations BLOCKBENCH needs."""

    @abstractmethod
    def deploy_application(self, contract_name: str) -> None:
        """Install a smart contract on the backend."""

    @abstractmethod
    def send_transaction(
        self, tx: Transaction, on_reply: Callable[[dict], None]
    ) -> None:
        """Submit asynchronously; ``on_reply`` gets {accepted, tx_id}."""

    @abstractmethod
    def get_latest_block(
        self, from_height: int, on_reply: Callable[[dict], None]
    ) -> None:
        """Confirmed blocks in (from_height, tip] — the polling call."""

    @abstractmethod
    def query(
        self, contract: str, function: str, args: tuple,
        on_reply: Callable[[dict], None],
    ) -> None:
        """Read-only contract query (no consensus round)."""

    def subscribe_new_blocks(
        self, from_height: int, on_block: Callable[[dict], None]
    ) -> None:
        """Push-based alternative to :meth:`get_latest_block`.

        Only backends with a publish/subscribe interface (ErisDB,
        Section 3.2) implement this; the default refuses.
        """
        raise ConnectorError(
            f"{type(self).__name__} backend does not support block subscriptions"
        )


class RPCClient(SimNode):
    """Client-side endpoint: correlates requests with async replies.

    This is the process the paper's WorkloadClient runs in; it lives on
    the simulated network so every interaction pays real round trips —
    the effect that decides the analytics Q2 result (one RPC per block
    vs one RPC total, Figure 13b).
    """

    def __init__(self, node_id, scheduler, network) -> None:
        super().__init__(node_id, scheduler, network)
        self._next_req = 0
        self._callbacks: dict[int, Callable[[dict], None]] = {}
        # Persistent callbacks for push-based subscriptions; unlike
        # request callbacks these survive across events.
        self._subscriptions: dict[int, Callable[[dict], None]] = {}

    def request(
        self,
        server: str,
        kind: str,
        payload: dict,
        on_reply: Callable[[dict], None],
        size_bytes: int = 192,
        timeout_s: float | None = None,
    ) -> int:
        """Send one RPC and register ``on_reply`` for its answer."""
        req_id = self._next_req
        self._next_req += 1
        self._callbacks[req_id] = on_reply
        payload = dict(payload)
        payload["req_id"] = req_id
        self.send(server, kind, payload, size_bytes)
        if timeout_s is not None:
            self.set_timer(timeout_s, self._expire, req_id)
        return req_id

    def _expire(self, req_id: int) -> None:
        """Fire a timeout reply if the server never answered (e.g. the
        request was dropped at a full inbox)."""
        callback = self._callbacks.pop(req_id, None)
        if callback is not None:
            callback({"accepted": False, "timeout": True, "req_id": req_id})

    def subscribe(
        self,
        server: str,
        kind: str,
        payload: dict,
        on_event: Callable[[dict], None],
        size_bytes: int = 128,
    ) -> int:
        """Open a push subscription; ``on_event`` fires per event."""
        sub_id = self._next_req
        self._next_req += 1
        self._subscriptions[sub_id] = on_event
        payload = dict(payload)
        payload["req_id"] = sub_id
        self.send(server, kind, payload, size_bytes)
        return sub_id

    def unsubscribe(self, sub_id: int) -> None:
        """Drop a push subscription registered with :meth:`subscribe`."""
        self._subscriptions.pop(sub_id, None)

    def handle_message(self, message: Message) -> None:
        """Dispatch replies to request callbacks and events to subs."""
        if message.corrupted:
            return
        if message.kind == "rpc/event":
            callback = self._subscriptions.get(message.payload.get("sub_id"))
            if callback is not None:
                callback(message.payload)
            return
        if message.kind != "rpc/reply":
            return
        req_id = message.payload.get("req_id")
        callback = self._callbacks.pop(req_id, None)
        if callback is not None:
            callback(message.payload)

    def outstanding_requests(self) -> int:
        """RPCs sent but not yet answered."""
        return len(self._callbacks)


class SimChainConnector(IBlockchainConnector):
    """Connector binding one RPCClient to one server of a cluster."""

    def __init__(self, cluster: "Cluster", client: RPCClient, server_id: str) -> None:
        if server_id not in cluster.node_ids():
            raise ConnectorError(f"unknown server {server_id!r}")
        self.cluster = cluster
        self.client = client
        self.server_id = server_id

    def deploy_application(self, contract_name: str) -> None:
        """Install the contract on every node of the testnet."""
        for node in self.cluster.nodes:
            node.deploy(contract_name)

    #: Client-side submission timeout: a request dropped at a saturated
    #: server is retried rather than blocking its worker thread forever.
    SUBMIT_TIMEOUT_S = 5.0

    def send_transaction(
        self, tx: Transaction, on_reply: Callable[[dict], None]
    ) -> None:
        """Submit one transaction to this connector's server."""
        self.client.request(
            self.server_id,
            "rpc/send_tx",
            {"tx": tx},
            on_reply,
            size_bytes=tx.size_bytes() + 48,
            timeout_s=self.SUBMIT_TIMEOUT_S,
        )

    def get_latest_block(
        self, from_height: int, on_reply: Callable[[dict], None]
    ) -> None:
        """The paper's getLatestBlock(h): confirmed blocks in (h, t]."""
        self.client.request(
            self.server_id,
            "rpc/get_blocks",
            {"from_height": from_height},
            on_reply,
            size_bytes=96,
        )

    def get_block_transactions(
        self, height: int, on_reply: Callable[[dict], None]
    ) -> None:
        """Fetch one block's transaction bodies (analytics Q1)."""
        self.client.request(
            self.server_id,
            "rpc/get_block_txs",
            {"height": height},
            on_reply,
            size_bytes=96,
        )

    def get_balance(
        self, contract: str, key: bytes, height: int,
        on_reply: Callable[[dict], None],
    ) -> None:
        """Historical state read at a block height (analytics Q2)."""
        self.client.request(
            self.server_id,
            "rpc/get_balance",
            {"contract": contract, "key": key, "height": height},
            on_reply,
            size_bytes=128,
        )

    def query(
        self, contract: str, function: str, args: tuple,
        on_reply: Callable[[dict], None],
    ) -> None:
        """Read-only contract invocation (no consensus round)."""
        self.client.request(
            self.server_id,
            "rpc/query",
            {"contract": contract, "function": function, "args": args},
            on_reply,
            size_bytes=192,
        )

    def subscribe_new_blocks(
        self, from_height: int, on_block: Callable[[dict], None]
    ) -> None:
        """ErisDB-style push feed: one event per executed block."""
        server = next(
            node for node in self.cluster.nodes if node.node_id == self.server_id
        )
        if not getattr(server, "supports_subscription", False):
            raise ConnectorError(
                f"platform {self.cluster.platform!r} has no "
                "publish/subscribe interface; use get_latest_block polling"
            )
        self.client.subscribe(
            self.server_id,
            "rpc/subscribe",
            {"from_height": from_height},
            lambda event: on_block(event["block"]),
        )
