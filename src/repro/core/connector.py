"""Blockchain connector interface (the paper's IBlockchainConnector).

"The interface contains operations for deploying application, invoking
it by sending a transaction, and for querying the blockchain's states"
(Section 3.2). The simulation connector speaks the platforms' RPC
message protocol from a client-side SimNode; a new backend integrates
by implementing this interface, exactly as in Figure 4.

**v2 — the awaitable surface.** Every RPC-shaped method returns a
:class:`~repro.sim.SimFuture`, so measurement clients are written as
straight-line generator-coroutines over the simulated scheduler::

    def client(connector):
        reply = yield connector.send_transaction(tx)
        if not reply["accepted"]:
            return None
        update = yield connector.get_latest_block(0)
        return update["blocks"]

    spawn(client(connector))

The old callback signatures still work: every method accepts an
optional trailing ``on_reply`` callable, which is chained onto the
returned future and fires inline at resolution — the same scheduler
event, the same event order, so callback-style and coroutine-style
clients replay bit-identical timelines (pinned by
``tests/core/test_client_modes.py``). The callback form is a compat
shim for existing integrations; new code should await the future.
"""

from __future__ import annotations

from collections import deque
from abc import ABC, abstractmethod
from typing import Callable, TYPE_CHECKING

from ..chain import Transaction
from ..errors import ConnectorError
from ..sim import Message, SimFuture, SimNode

if TYPE_CHECKING:  # pragma: no cover
    from ..platforms.cluster import Cluster

#: Optional compat callback: receives the reply payload dict.
ReplyCallback = Callable[[dict], None]


def _chain_callback(future: SimFuture, on_reply: ReplyCallback | None) -> SimFuture:
    """Attach a legacy ``on_reply`` callback to an RPC future.

    The callback sees exactly the payload dict it saw under the v1 API,
    at exactly the same point in the event order (resolution runs
    continuations inline).
    """
    if on_reply is not None:
        future.add_done_callback(lambda fut: on_reply(fut.result()))
    return future


class IBlockchainConnector(ABC):
    """Backend-facing operations BLOCKBENCH needs (awaitable, v2)."""

    @abstractmethod
    def deploy_application(self, contract_name: str) -> None:
        """Install a smart contract on the backend."""

    @abstractmethod
    def send_transaction(
        self, tx: Transaction, on_reply: ReplyCallback | None = None
    ) -> SimFuture:
        """Submit asynchronously; resolves to ``{accepted, tx_id}``."""

    @abstractmethod
    def get_latest_block(
        self, from_height: int, on_reply: ReplyCallback | None = None
    ) -> SimFuture:
        """Confirmed blocks in (from_height, tip] — the polling call."""

    @abstractmethod
    def query(
        self, contract: str, function: str, args: tuple,
        on_reply: ReplyCallback | None = None,
    ) -> SimFuture:
        """Read-only contract query (no consensus round)."""

    def subscribe_new_blocks(
        self, from_height: int, on_block: Callable[[dict], None] | None = None
    ) -> "BlockSubscription":
        """Push-based alternative to :meth:`get_latest_block`.

        Returns a :class:`BlockSubscription` whose ``next_block()``
        futures yield one block summary each; the legacy ``on_block``
        callback form delivers the same summaries inline instead. Only
        backends with a publish/subscribe interface (ErisDB, Section
        3.2) implement this; the default refuses.
        """
        raise ConnectorError(
            f"{type(self).__name__} backend does not support block subscriptions"
        )


class BlockSubscription:
    """Awaitable handle for a push-based block feed.

    Blocks that arrive while the consumer is not awaiting are buffered
    in arrival order, so a coroutine doing ``block = yield
    sub.next_block()`` in a loop sees every event exactly once. In
    legacy mode (an ``on_block`` callback was given) events bypass the
    buffer and fire the callback inline at arrival — the v1 behavior.
    """

    def __init__(
        self,
        client: "RPCClient",
        on_block: Callable[[dict], None] | None = None,
    ) -> None:
        self.client = client
        self.sub_id: int | None = None  # set by the connector
        self.active = True
        self._on_block = on_block
        self._buffer: deque[dict] = deque()
        self._waiter: SimFuture | None = None

    def _deliver(self, event: dict) -> None:
        """Fan one ``rpc/event`` payload into the buffer/waiter/callback."""
        block = event["block"]
        if self._on_block is not None:
            self._on_block(block)
            return
        if self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            waiter.set_result(block)
        else:
            self._buffer.append(block)

    def next_block(self) -> SimFuture:
        """A future for the next block summary (FIFO over the feed)."""
        if self._on_block is not None:
            raise ConnectorError(
                "subscription was opened with a legacy on_block callback; "
                "events are delivered there, not via next_block()"
            )
        future = SimFuture()
        if self._buffer:
            future.set_result(self._buffer.popleft())
            return future
        if not self.active:
            raise ConnectorError("subscription is cancelled")
        if self._waiter is not None:
            raise ConnectorError("a next_block() future is already pending")
        self._waiter = future
        return future

    def pending_blocks(self) -> int:
        """Events buffered but not yet consumed."""
        return len(self._buffer)

    def cancel(self) -> None:
        """Tear the subscription down on both ends (idempotent).

        A coroutine blocked on :meth:`next_block` is woken with a
        :class:`ConnectorError` — its future would otherwise stay
        pending forever, hanging the consumer silently.
        """
        if not self.active:
            return
        self.active = False
        if self.sub_id is not None:
            self.client.unsubscribe(self.sub_id)
        if self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            waiter.set_exception(ConnectorError("subscription cancelled"))


class RPCClient(SimNode):
    """Client-side endpoint: correlates requests with async replies.

    This is the process the paper's WorkloadClient runs in; it lives on
    the simulated network so every interaction pays real round trips —
    the effect that decides the analytics Q2 result (one RPC per block
    vs one RPC total, Figure 13b).
    """

    def __init__(self, node_id, scheduler, network) -> None:
        super().__init__(node_id, scheduler, network)
        self._next_req = 0
        self._callbacks: dict[int, Callable[[dict], None]] = {}
        # Persistent callbacks for push-based subscriptions; unlike
        # request callbacks these survive across events. The server a
        # subscription went to is kept so unsubscribe() can tear down
        # the server side too.
        self._subscriptions: dict[int, Callable[[dict], None]] = {}
        self._subscription_servers: dict[int, str] = {}

    def request(
        self,
        server: str,
        kind: str,
        payload: dict,
        on_reply: Callable[[dict], None],
        size_bytes: int = 192,
        timeout_s: float | None = None,
    ) -> int:
        """Send one RPC and register ``on_reply`` for its answer."""
        req_id = self._next_req
        self._next_req += 1
        self._callbacks[req_id] = on_reply
        payload = dict(payload)
        payload["req_id"] = req_id
        self.send(server, kind, payload, size_bytes)
        if timeout_s is not None:
            self.set_timer(timeout_s, self._expire, req_id)
        return req_id

    def call(
        self,
        server: str,
        kind: str,
        payload: dict,
        size_bytes: int = 192,
        timeout_s: float | None = None,
    ) -> SimFuture:
        """Awaitable :meth:`request`: resolves with the reply payload.

        A request dropped at a saturated server resolves (not raises)
        with ``{"accepted": False, "timeout": True}`` when the timeout
        fires, mirroring the v1 timeout callback.
        """
        future = SimFuture()
        self.request(
            server, kind, payload, future.set_result,
            size_bytes=size_bytes, timeout_s=timeout_s,
        )
        return future

    def _expire(self, req_id: int) -> None:
        """Fire a timeout reply if the server never answered (e.g. the
        request was dropped at a full inbox)."""
        callback = self._callbacks.pop(req_id, None)
        if callback is not None:
            callback({"accepted": False, "timeout": True, "req_id": req_id})

    def subscribe(
        self,
        server: str,
        kind: str,
        payload: dict,
        on_event: Callable[[dict], None],
        size_bytes: int = 128,
    ) -> int:
        """Open a push subscription; ``on_event`` fires per event."""
        sub_id = self._next_req
        self._next_req += 1
        self._subscriptions[sub_id] = on_event
        self._subscription_servers[sub_id] = server
        payload = dict(payload)
        payload["req_id"] = sub_id
        self.send(server, kind, payload, size_bytes)
        return sub_id

    def unsubscribe(self, sub_id: int) -> None:
        """Tear down a push subscription registered with :meth:`subscribe`.

        Drops the local callback *and* tells the server to stop
        publishing: without the ``rpc/unsubscribe`` message the server
        would keep pushing ``rpc/event`` traffic at a dead endpoint
        forever.
        """
        self._subscriptions.pop(sub_id, None)
        server = self._subscription_servers.pop(sub_id, None)
        if server is not None:
            self.send(server, "rpc/unsubscribe", {"sub_id": sub_id}, 64)

    def handle_message(self, message: Message) -> None:
        """Dispatch replies to request callbacks and events to subs."""
        if message.corrupted:
            return
        if message.kind == "rpc/event":
            callback = self._subscriptions.get(message.payload.get("sub_id"))
            if callback is not None:
                callback(message.payload)
            return
        if message.kind != "rpc/reply":
            return
        req_id = message.payload.get("req_id")
        callback = self._callbacks.pop(req_id, None)
        if callback is not None:
            callback(message.payload)

    def outstanding_requests(self) -> int:
        """RPCs sent but not yet answered."""
        return len(self._callbacks)


class SimChainConnector(IBlockchainConnector):
    """Connector binding one RPCClient to one server of a cluster."""

    def __init__(self, cluster: "Cluster", client: RPCClient, server_id: str) -> None:
        if server_id not in cluster.node_ids():
            raise ConnectorError(f"unknown server {server_id!r}")
        self.cluster = cluster
        self.client = client
        self.server_id = server_id

    def deploy_application(self, contract_name: str) -> None:
        """Install the contract on every node of the testnet."""
        for node in self.cluster.nodes:
            node.deploy(contract_name)

    #: Client-side submission timeout: a request dropped at a saturated
    #: server is retried rather than blocking its worker thread forever.
    SUBMIT_TIMEOUT_S = 5.0

    def fail_over(self) -> str:
        """Repoint this connector at the next live server (ring order).

        Deterministic: walks the cluster's node list from the current
        server's position and takes the first non-crashed node, so every
        client attached to a dead endpoint picks the same replacement
        given the same cluster state. If every server is down the
        connector keeps its current endpoint (retries will time out
        until one recovers).
        """
        ids = self.cluster.node_ids()
        start = ids.index(self.server_id)
        for offset in range(1, len(ids) + 1):
            index = (start + offset) % len(ids)
            if not self.cluster.nodes[index].crashed:
                self.server_id = ids[index]
                break
        return self.server_id

    def send_transaction(
        self, tx: Transaction, on_reply: ReplyCallback | None = None
    ) -> SimFuture:
        """Submit one transaction to this connector's server."""
        future = self.client.call(
            self.server_id,
            "rpc/send_tx",
            {"tx": tx},
            size_bytes=tx.size_bytes() + 48,
            timeout_s=self.SUBMIT_TIMEOUT_S,
        )
        return _chain_callback(future, on_reply)

    def get_latest_block(
        self,
        from_height: int,
        on_reply: ReplyCallback | None = None,
        timeout_s: float | None = None,
    ) -> SimFuture:
        """The paper's getLatestBlock(h): confirmed blocks in (h, t].

        ``timeout_s`` (failover mode) bounds the wait: a poll sent to a
        crashed endpoint resolves with ``{"timeout": True}`` instead of
        hanging the polling loop forever.
        """
        future = self.client.call(
            self.server_id,
            "rpc/get_blocks",
            {"from_height": from_height},
            size_bytes=96,
            timeout_s=timeout_s,
        )
        return _chain_callback(future, on_reply)

    def get_block_transactions(
        self, height: int, on_reply: ReplyCallback | None = None
    ) -> SimFuture:
        """Fetch one block's transaction bodies (analytics Q1)."""
        future = self.client.call(
            self.server_id,
            "rpc/get_block_txs",
            {"height": height},
            size_bytes=96,
        )
        return _chain_callback(future, on_reply)

    def get_balance(
        self, contract: str, key: bytes, height: int,
        on_reply: ReplyCallback | None = None,
    ) -> SimFuture:
        """Historical state read at a block height (analytics Q2)."""
        future = self.client.call(
            self.server_id,
            "rpc/get_balance",
            {"contract": contract, "key": key, "height": height},
            size_bytes=128,
        )
        return _chain_callback(future, on_reply)

    def query(
        self, contract: str, function: str, args: tuple,
        on_reply: ReplyCallback | None = None,
    ) -> SimFuture:
        """Read-only contract invocation (no consensus round)."""
        future = self.client.call(
            self.server_id,
            "rpc/query",
            {"contract": contract, "function": function, "args": args},
            size_bytes=192,
        )
        return _chain_callback(future, on_reply)

    def subscribe_new_blocks(
        self, from_height: int, on_block: Callable[[dict], None] | None = None
    ) -> BlockSubscription:
        """ErisDB-style push feed: one event per executed block."""
        server = next(
            node for node in self.cluster.nodes if node.node_id == self.server_id
        )
        if not getattr(server, "supports_subscription", False):
            raise ConnectorError(
                f"platform {self.cluster.platform!r} has no "
                "publish/subscribe interface; use get_latest_block polling"
            )
        subscription = BlockSubscription(self.client, on_block)
        subscription.sub_id = self.client.subscribe(
            self.server_id,
            "rpc/subscribe",
            {"from_height": from_height},
            subscription._deliver,
        )
        return subscription
