"""Chain safety auditor: cross-replica invariants, checked per commit.

BLOCKBENCH's security metric (Section 4.1.3) asks whether a blockchain
keeps its safety guarantees under attack. Throughput and latency are
visible in the stats pipeline; a *safety* failure — two honest replicas
finalizing different blocks at the same height — is not, unless
something watches every replica's commits. :class:`ChainAuditor` is
that watcher: always on, subscribed to every node's block execution,
and independent of the protocols it audits.

Invariants, each checked the moment an honest replica commits a block:

- **agreement** — no two honest replicas commit different blocks at the
  same height (fork detection). Honest = never byzantine per
  ``Network.ever_byzantine``; what a liar's local chain says proves
  nothing about the protocol.
- **digest integrity** — no committed block carries a forged
  (``garbage``) digest marker: honest verification should have rejected
  it before commit.
- **monotonicity** — each replica's finalized height only grows; a
  replica re-finalizing a height it already executed would unwind
  settled state.
- **convergence** — every replica that crashed and recovered ends the
  run on the honest prefix: at each height where honest replicas agree
  on one block, the recovered node's chain must carry that block.

Violations carry the height, the replicas involved, and the byzantine
fault context active at detection time, and surface as a count in
``StatsSummary``/``SuiteResult`` next to throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..chain.block import Block
from ..consensus.base import BYZ_META_KEY

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.network import Network

__all__ = ["AuditReport", "ChainAuditor", "SafetyViolation"]


@dataclass
class SafetyViolation:
    """One observed breach of a chain safety invariant."""

    kind: str  #: "fork" | "garbage_digest" | "height_regression" | "divergence"
    height: int
    nodes: list[str]
    detail: str
    at_time: float
    #: Byzantine behaviors active when the violation was detected.
    fault_context: str = ""

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "height": self.height,
            "nodes": self.nodes,
            "detail": self.detail,
            "at_time": self.at_time,
            "fault_context": self.fault_context,
        }


@dataclass
class AuditReport:
    """The auditor's verdict for one finished run."""

    commits_checked: int
    honest_nodes: int
    byzantine_nodes: list[str]
    violations: list[SafetyViolation] = field(default_factory=list)
    #: Replicas that crashed and completed recovery during the run.
    recovered_nodes: list[str] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        return not self.violations

    def to_json(self) -> dict[str, Any]:
        out = {
            "safe": self.safe,
            "commits_checked": self.commits_checked,
            "honest_nodes": self.honest_nodes,
            "byzantine_nodes": self.byzantine_nodes,
            "violations": [v.to_json() for v in self.violations],
        }
        if self.recovered_nodes:
            out["recovered_nodes"] = self.recovered_nodes
        return out


class ChainAuditor:
    """Subscribes to every replica's commits; flags safety breaches."""

    def __init__(self, network: "Network") -> None:
        self.network = network
        self.violations: list[SafetyViolation] = []
        self.commits_checked = 0
        #: height -> block hash -> honest committers.
        self._commits: dict[int, dict[bytes, set[str]]] = {}
        self._executed_height: dict[str, int] = {}
        self._flagged_forks: set[tuple[int, bytes, bytes]] = set()
        self._active_faults: list[str] = []
        #: node id -> (synced height, sim time) of last finished recovery.
        self._recovered: dict[str, tuple[int, float]] = {}
        self._flagged_divergence: set[tuple[str, int]] = set()

    # -- fault context ---------------------------------------------------
    def fault_started(self, label: str) -> None:
        """A byzantine window opened (called by ``FaultSchedule``)."""
        self._active_faults.append(label)

    def fault_ended(self, label: str) -> None:
        """A byzantine window closed."""
        if label in self._active_faults:
            self._active_faults.remove(label)

    def _context(self) -> str:
        return ", ".join(self._active_faults)

    # -- crash recovery --------------------------------------------------
    def node_recovering(self, node_id: str, cold: bool) -> None:
        """A crashed replica is restarting (called by the platform layer).

        Cold recovery wipes execution state and replays the chain from
        genesis; those re-executions are replay, not re-finalization, so
        the monotonicity baseline resets with the state.
        """
        if cold:
            self._executed_height[node_id] = 0

    def node_recovered(self, node_id: str, height: int, at_time: float) -> None:
        """A recovering replica finished catch-up at ``height``."""
        self._recovered[node_id] = (height, at_time)

    # -- commit stream ---------------------------------------------------
    def record_commit(self, node_id: str, block: Block, at_time: float) -> None:
        """One replica finalized (executed) ``block``; check invariants."""
        self.commits_checked += 1
        prev = self._executed_height.get(node_id, 0)
        if block.height <= prev:
            self._flag(
                "height_regression",
                block.height,
                [node_id],
                f"{node_id} re-finalized height {block.height} after "
                f"reaching {prev}",
                at_time,
            )
        else:
            self._executed_height[node_id] = block.height
        if node_id in self.network.ever_byzantine:
            # A liar's own chain proves nothing; only honest commits
            # enter the agreement record.
            return
        if block.header.meta(BYZ_META_KEY, "").startswith("garbage"):
            self._flag(
                "garbage_digest",
                block.height,
                [node_id],
                f"{node_id} committed block {block.hash.hex()[:12]} whose "
                "digest fails verification",
                at_time,
            )
        by_hash = self._commits.setdefault(block.height, {})
        by_hash.setdefault(block.hash, set()).add(node_id)
        if len(by_hash) > 1:
            self._check_fork(block.height, by_hash, at_time)

    def _check_fork(
        self, height: int, by_hash: dict[bytes, set[str]], at_time: float
    ) -> None:
        hashes = sorted(by_hash)
        for i, first in enumerate(hashes):
            for second in hashes[i + 1 :]:
                key = (height, first, second)
                if key in self._flagged_forks:
                    continue
                self._flagged_forks.add(key)
                nodes = sorted(by_hash[first] | by_hash[second])
                self._flag(
                    "fork",
                    height,
                    nodes,
                    f"honest replicas disagree at height {height}: "
                    f"{sorted(by_hash[first])} committed "
                    f"{first.hex()[:12]}, {sorted(by_hash[second])} "
                    f"committed {second.hex()[:12]}",
                    at_time,
                )

    def _flag(
        self,
        kind: str,
        height: int,
        nodes: list[str],
        detail: str,
        at_time: float,
    ) -> None:
        self.violations.append(
            SafetyViolation(
                kind=kind,
                height=height,
                nodes=nodes,
                detail=detail,
                at_time=at_time,
                fault_context=self._context(),
            )
        )

    def _check_convergence(self) -> None:
        """Every recovered replica must end on the honest prefix.

        At each height where the honest agreement record holds exactly
        one block, a recovered node's chain carrying a *different* block
        there means catch-up left it on a divergent branch.
        """
        for node_id, (synced_height, recovered_at) in sorted(
            self._recovered.items()
        ):
            node = self.network.nodes.get(node_id)
            chain_fn = getattr(node, "chain", None)
            if chain_fn is None:
                continue
            chain = chain_fn()
            for height in sorted(self._commits):
                if height > chain.height:
                    continue
                by_hash = self._commits[height]
                if len(by_hash) != 1:
                    continue  # honest replicas themselves forked here
                (honest_hash,) = by_hash
                block = chain.block_by_height(height)
                if block is None or block.hash == honest_hash:
                    continue
                key = (node_id, height)
                if key in self._flagged_divergence:
                    continue
                self._flagged_divergence.add(key)
                self._flag(
                    "divergence",
                    height,
                    [node_id],
                    f"recovered node {node_id} (synced to height "
                    f"{synced_height}) carries {block.hash.hex()[:12]} at "
                    f"height {height}; honest replicas committed "
                    f"{honest_hash.hex()[:12]}",
                    at_time=recovered_at,
                )

    # -- verdict ---------------------------------------------------------
    def report(self) -> AuditReport:
        self._check_convergence()
        honest = {
            nid
            for nid in self.network.node_ids()
            if nid not in self.network.ever_byzantine
        }
        return AuditReport(
            commits_checked=self.commits_checked,
            honest_nodes=len(honest),
            byzantine_nodes=sorted(self.network.ever_byzantine),
            violations=list(self.violations),
            recovered_nodes=sorted(self._recovered),
        )
