"""ASCII reporting helpers for benchmark harnesses."""

from __future__ import annotations

from typing import Any, Sequence

from .stats import StatsSummary


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    border = "+".join("-" * (w + 2) for w in widths)
    border = f"+{border}+"
    header_line = "|".join(f" {h:<{w}} " for h, w in zip(headers, widths))
    lines.append(border)
    lines.append(f"|{header_line}|")
    lines.append(border)
    for row in str_rows:
        line = "|".join(f" {cell:<{w}} " for cell, w in zip(row, widths))
        lines.append(f"|{line}|")
    lines.append(border)
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def summary_row(summary: StatsSummary) -> list[Any]:
    """Standard row rendering for one run's StatsSummary."""
    return [
        summary.platform,
        summary.workload,
        summary.confirmed,
        summary.throughput_tx_s,
        summary.latency_avg_s,
        summary.latency_p99_s,
        summary.final_queue_length,
    ]


SUMMARY_HEADERS = [
    "platform",
    "workload",
    "confirmed",
    "tx/s",
    "lat avg (s)",
    "lat p99 (s)",
    "queue",
]


BOTTLENECK_HEADERS = [
    "stage",
    "count",
    "avg (s)",
    "p50 (s)",
    "p95 (s)",
    "p99 (s)",
    "max (s)",
    "share",
    "queue avg",
    "queue peak",
]

#: Which backlog gauge feeds each stage row of the bottleneck table.
_STAGE_GAUGES = {
    "mempool_wait": "mempool",
    "consensus": "consensus",
    "notification": "execution",
}


def bottleneck_rows(breakdown) -> list[list[Any]]:
    """Per-stage rows for one run's StageBreakdown, aligned with
    :data:`BOTTLENECK_HEADERS`. The dominant stage is marked with ``<--``
    in its share column."""
    dominant = breakdown.dominant_stage()
    total = breakdown.end_to_end_avg_s
    rows = []
    for stat in breakdown.stages:
        share = (stat.avg_s / total) if total > 0 else 0.0
        gauge = _STAGE_GAUGES.get(stat.stage)
        rows.append(
            [
                stat.stage,
                stat.count,
                stat.avg_s,
                stat.p50_s,
                stat.p95_s,
                stat.p99_s,
                stat.max_s,
                f"{share:.1%}" + (" <--" if stat.stage == dominant else ""),
                (
                    f"{breakdown.queue_depth_avg.get(gauge, 0.0):.1f}"
                    if gauge
                    else ""
                ),
                str(breakdown.queue_depth_peak.get(gauge, 0)) if gauge else "",
            ]
        )
    return rows


def bottleneck_table(breakdown, title: str = "") -> str:
    """One run's stage breakdown as an ASCII bottleneck table."""
    dominant = breakdown.dominant_stage()
    header = title or "lifecycle stage breakdown"
    header += (
        f" — {breakdown.traced} traced tx, "
        f"end-to-end avg {breakdown.end_to_end_avg_s:.3f}s"
    )
    if dominant:
        header += f", bottleneck: {dominant}"
    return format_table(BOTTLENECK_HEADERS, bottleneck_rows(breakdown), header)
