"""ASCII reporting helpers for benchmark harnesses."""

from __future__ import annotations

from typing import Any, Sequence

from .stats import StatsSummary


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    border = "+".join("-" * (w + 2) for w in widths)
    border = f"+{border}+"
    header_line = "|".join(f" {h:<{w}} " for h, w in zip(headers, widths))
    lines.append(border)
    lines.append(f"|{header_line}|")
    lines.append(border)
    for row in str_rows:
        line = "|".join(f" {cell:<{w}} " for cell, w in zip(row, widths))
        lines.append(f"|{line}|")
    lines.append(border)
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def summary_row(summary: StatsSummary) -> list[Any]:
    """Standard row rendering for one run's StatsSummary."""
    return [
        summary.platform,
        summary.workload,
        summary.confirmed,
        summary.throughput_tx_s,
        summary.latency_avg_s,
        summary.latency_p99_s,
        summary.final_queue_length,
    ]


SUMMARY_HEADERS = [
    "platform",
    "workload",
    "confirmed",
    "tx/s",
    "lat avg (s)",
    "lat p99 (s)",
    "queue",
]
