"""Transaction lifecycle tracing: per-stage bottleneck attribution.

BLOCKBENCH's macro benchmarks report *that* throughput moved, never
*where* — yet the paper's layered design exists precisely to isolate
consensus vs. execution vs. data-model costs (Section 3.1). This module
closes that gap with an app-agnostic stage model in the spirit of
BlockMeter and "What Blocks My Blockchain's Throughput?" (PAPERS.md):
every transaction carries per-stage timestamps recorded at a handful of
protocol-neutral hook points, so no platform or protocol ships its own
tracing code (mirroring the PR 7 adversary-hooks pattern).

Stage points (one timestamp each, first occurrence wins cluster-wide)::

    submit   client handed the tx to the backend (backdated to the
             submission instant, so submit -> notify equals the
             latency the StatsCollector reports)
    admit    a mempool accepted the tx (any node: direct or gossip)
    propose  the tx was batched into a candidate block (assemble_block)
    decide   the block holding the tx reached the platform's commit
             point (PBFT/Tendermint: consensus commit; PoW/PoA: the
             confirmation depth the paper measures latency against)
    execute  transaction execution finished — stamped at
             ``decide + charged execution CPU``, the simulated instant
             the node's CPU is done with the block's transactions
    commit   the post-block state root was committed
    notify   the client learned the tx was confirmed (poll reply,
             subscription event, or batch summary)

Derived intervals (what the bottleneck table shows)::

    admission     submit -> admit      ingress + signing + gossip
    mempool_wait  admit -> propose     queueing before a proposer
    consensus     propose -> decide    ordering (incl. PoW confirmations)
    execution     decide -> execute    charged transaction execution CPU
    state_commit  execute -> commit    state-root commit (not separately
                                       charged by the cost model, so ~0)
    notification  commit -> notify     result propagation back to client

Recording is append-only bookkeeping: the tracer never charges CPU and
never schedules events, so the simulated timeline with tracing on is
*identical* to tracing off — the ``trace_stages`` knob only controls
whether the bookkeeping happens (pinned byte-identical by
``tests/core/test_trace_differential.py``). Stamps are clamped to be
monotone per transaction (a stage never precedes an earlier stage);
the only path where the raw clock would run backwards is a pub/sub
event raced against the block's charged execution window, an artifact
of charging CPU after the publish rather than before.

The tracer also maintains O(1) per-stage backlog gauges sampled by the
driver's existing queue sampler (no new events):

    mempool    admitted, not yet proposed
    consensus  proposed, not yet decided
    execution  decided, not yet notified (execution + result
               propagation; block execution is atomic within one
               simulated event, so a decided-not-committed gauge would
               read zero at every sampling instant)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "STAGES",
    "STAGE_INTERVALS",
    "QUEUE_GAUGES",
    "StageStat",
    "StageBreakdown",
    "StageTracer",
]

#: Stage-point names, in lifecycle order. Index into a tx's stamp slots.
STAGES = ("submit", "admit", "propose", "decide", "execute", "commit", "notify")

SUBMIT, ADMIT, PROPOSE, DECIDE, EXECUTE, COMMIT, NOTIFY = range(len(STAGES))

#: Derived interval names with their (start, end) stage-point indices.
STAGE_INTERVALS = (
    ("admission", SUBMIT, ADMIT),
    ("mempool_wait", ADMIT, PROPOSE),
    ("consensus", PROPOSE, DECIDE),
    ("execution", DECIDE, EXECUTE),
    ("state_commit", EXECUTE, COMMIT),
    ("notification", COMMIT, NOTIFY),
)

#: Backlog gauge names, in pipeline order.
QUEUE_GAUGES = ("mempool", "consensus", "execution")

_N_STAGES = len(STAGES)

#: Extra slot per stamp row holding the running max of the clamped
#: stages — makes the monotone clamp O(1) instead of a scan. SUBMIT is
#: excluded: it is backdated to the submission instant after the admit
#: reply, so clamping it would zero out the admission interval.
_TOP = _N_STAGES


def _percentile(ordered: list[float], pct: float) -> float:
    """Order-statistic percentile (same convention as StatsCollector)."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, math.ceil(pct / 100 * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class StageStat:
    """Latency statistics for one derived lifecycle interval."""

    stage: str
    count: int
    avg_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float


@dataclass
class StageBreakdown:
    """Per-stage lifecycle aggregate attached to a StatsSummary.

    ``stages`` holds one :class:`StageStat` per derived interval in
    pipeline order; interval averages telescope, so they sum to
    ``end_to_end_avg_s`` exactly (pinned by the CI bottleneck smoke).
    """

    #: Transactions with a complete 7-point lifecycle.
    traced: int
    #: Transactions seen by the tracer but missing at least one stamp
    #: (unconfirmed at window end, orphaned, or rejected downstream).
    partial: int
    #: Mean submit -> notify over the traced set.
    end_to_end_avg_s: float
    stages: list[StageStat] = field(default_factory=list)
    #: Mean sampled backlog per gauge (mempool/consensus/execution).
    queue_depth_avg: dict[str, float] = field(default_factory=dict)
    #: Peak sampled backlog per gauge.
    queue_depth_peak: dict[str, int] = field(default_factory=dict)

    def dominant_stage(self) -> str | None:
        """The interval with the largest mean — the bottleneck.

        Ties break toward the earlier pipeline stage; ``None`` when no
        complete lifecycle was traced.
        """
        if not self.traced or not self.stages:
            return None
        best = max(self.stages, key=lambda s: s.avg_s)
        return best.stage

    def stage_avgs(self) -> dict[str, float]:
        """Interval name -> mean seconds (comparison helper)."""
        return {s.stage: s.avg_s for s in self.stages}

    @classmethod
    def from_dict(cls, data: dict) -> "StageBreakdown":
        """Rebuild from the ``asdict`` shape persisted in run JSON."""
        return cls(
            traced=int(data["traced"]),
            partial=int(data["partial"]),
            end_to_end_avg_s=float(data["end_to_end_avg_s"]),
            stages=[StageStat(**s) for s in data.get("stages", [])],
            queue_depth_avg=dict(data.get("queue_depth_avg", {})),
            queue_depth_peak=dict(data.get("queue_depth_peak", {})),
        )


class StageTracer:
    """Cluster-wide lifecycle recorder (one per cluster, like the
    ChainAuditor). Hot-path methods are dict/list operations only."""

    __slots__ = ("_stamps", "_depths")

    def __init__(self) -> None:
        #: tx_id -> 7 stamp slots (None until recorded) + running max.
        self._stamps: dict[str, list[float | None]] = {}
        #: Live backlog gauges, pipeline order (QUEUE_GAUGES).
        self._depths = [0, 0, 0]

    # ------------------------------------------------------------------
    # Recording (hot path)
    # ------------------------------------------------------------------
    def record(self, tx_id: str, stage: int, now: float) -> None:
        """Stamp ``stage`` for ``tx_id`` at ``now`` (first occurrence
        wins; clamped so stamps never precede an earlier stage)."""
        slots = self._stamps.get(tx_id)
        if slots is None:
            slots = [None] * _N_STAGES + [0.0]
            self._stamps[tx_id] = slots
        if slots[stage] is not None:
            return
        if stage:
            top = slots[_TOP]
            if top > now:
                now = top
            else:
                slots[_TOP] = now
        slots[stage] = now
        # Backlog gauge transitions, guarded so replayed or forged
        # blocks whose txs skipped a stage can't drive a gauge negative.
        if stage == ADMIT:
            self._depths[0] += 1
        elif stage == PROPOSE:
            if slots[ADMIT] is not None:
                self._depths[0] -= 1
            self._depths[1] += 1
        elif stage == DECIDE:
            if slots[PROPOSE] is not None:
                self._depths[1] -= 1
            self._depths[2] += 1
        elif stage == NOTIFY:
            if slots[DECIDE] is not None:
                self._depths[2] -= 1

    def record_block(self, tx_ids, stage: int, now: float) -> None:
        """Stamp every tx in a block at once (propose/decide/commit)."""
        record = self.record
        for tx_id in tx_ids:
            record(tx_id, stage, now)

    # Named hook-site helpers: the chain and platform layers sit below
    # ``repro.core`` in the import graph, so they call these instead of
    # importing the stage-index constants.
    def record_submit(self, tx_id: str, now: float) -> None:
        # Inlined record(): one submit per tx, usually the row-creating
        # call, on the per-transaction client hot path.
        slots = self._stamps.get(tx_id)
        if slots is None:
            self._stamps[tx_id] = [
                now, None, None, None, None, None, None, 0.0,
            ]
        elif slots[SUBMIT] is None:
            slots[SUBMIT] = now

    def record_admit(self, tx_id: str, now: float) -> None:
        # Inlined record(): every node's mempool calls this for every
        # gossiped copy, so most calls are first-occurrence early-outs.
        slots = self._stamps.get(tx_id)
        if slots is None:
            slots = [None] * _N_STAGES + [0.0]
            self._stamps[tx_id] = slots
        elif slots[ADMIT] is not None:
            return
        top = slots[_TOP]
        if top > now:
            now = top
        else:
            slots[_TOP] = now
        slots[ADMIT] = now
        self._depths[0] += 1

    def record_propose(self, tx_ids, now: float) -> None:
        self.record_block(tx_ids, PROPOSE, now)

    def record_decide(self, tx_ids, now: float) -> None:
        self.record_block(tx_ids, DECIDE, now)

    def record_execute(self, tx_ids, now: float) -> None:
        self.record_block(tx_ids, EXECUTE, now)

    def record_commit(self, tx_ids, now: float) -> None:
        self.record_block(tx_ids, COMMIT, now)

    def record_notify(self, tx_id: str, now: float) -> None:
        self.record(tx_id, NOTIFY, now)

    def queue_depths(self) -> tuple[int, int, int]:
        """Current (mempool, consensus, execution) backlog gauges."""
        depths = self._depths
        return (depths[0], depths[1], depths[2])

    # ------------------------------------------------------------------
    # Aggregation (end of run)
    # ------------------------------------------------------------------
    def breakdown(
        self, stage_queue_samples: list[tuple[float, int, int, int]] | None = None
    ) -> StageBreakdown:
        """Aggregate recorded lifecycles into a :class:`StageBreakdown`.

        ``stage_queue_samples`` is the driver-sampled ``(t, mempool,
        consensus, execution)`` series from the StatsCollector.
        """
        intervals: list[list[float]] = [[] for _ in STAGE_INTERVALS]
        e2e_total = 0.0
        traced = 0
        partial = 0
        for slots in self._stamps.values():
            # The row is 7 stage slots + the running max (never None).
            if None in slots:
                partial += 1
                continue
            traced += 1
            e2e_total += slots[NOTIFY] - slots[SUBMIT]
            for idx, (_, start, end) in enumerate(STAGE_INTERVALS):
                intervals[idx].append(slots[end] - slots[start])
        stages = []
        for idx, (name, _, _) in enumerate(STAGE_INTERVALS):
            values = sorted(intervals[idx])
            count = len(values)
            stages.append(
                StageStat(
                    stage=name,
                    count=count,
                    avg_s=(sum(values) / count) if count else 0.0,
                    p50_s=_percentile(values, 50),
                    p95_s=_percentile(values, 95),
                    p99_s=_percentile(values, 99),
                    max_s=values[-1] if count else 0.0,
                )
            )
        depth_avg: dict[str, float] = {}
        depth_peak: dict[str, int] = {}
        samples = stage_queue_samples or []
        for col, gauge in enumerate(QUEUE_GAUGES, start=1):
            series = [sample[col] for sample in samples]
            depth_avg[gauge] = (sum(series) / len(series)) if series else 0.0
            depth_peak[gauge] = max(series) if series else 0
        return StageBreakdown(
            traced=traced,
            partial=partial,
            end_to_end_avg_s=(e2e_total / traced) if traced else 0.0,
            stages=stages,
            queue_depth_avg=depth_avg,
            queue_depth_peak=depth_peak,
        )
