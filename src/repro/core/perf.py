"""Performance microbenchmark harness (``blockbench perf``).

The ROADMAP's north star is a reproduction that runs "as fast as the
hardware allows" — which is only meaningful if speed is *measured*.
This module benches the four layers the driver exercises on every
simulated second:

* ``evm_cpuheavy`` — interpreted EVM steps/s on the CPUHeavy quicksort
  program (the paper's execution-layer stressor, Figure 11).
* ``trie_puts`` — Patricia-Merkle trie logical puts/s through the
  journaled overlay + batched per-block update (Figure 12's write
  amplification, paid once per block instead of once per put).
* ``block_commit`` — the full platform-state commit pipeline:
  contention-heavy writes into the overlay, net write-set flushed by
  ``commit_block`` (PR 5's tentpole path).
* ``replica_execute`` — cluster-wide block application: one replica
  executes SmallBank transactions, N-1 replay the memoized write-set
  (the ExecutionCache fast path).
* ``scheduler_events`` — discrete-event scheduler events/s, the floor
  under every simulated component.
* ``driver_tx`` — end-to-end macro-benchmark transactions/s of wall
  time: one full ``run_experiment`` through consensus, mempool, blocks
  and stats.
* ``chain_sync`` — cold crash-recovery catch-up: blocks a restarted
  replica block-syncs and replays per wall second (PR 10's recovery
  subsystem guard).
* ``driver_tx_100k`` — the open-loop megaclient path: a Poisson
  arrival process over a 100k-account Zipf population driving a full
  cluster, confirmed tx/s of wall (PR 6's tentpole measurement).
* ``arrival_gen`` — raw arrival-process generation: (gap, sender)
  draws/s from the seeded Poisson + Zipf generators.

Each benchmark reports ops/s over wall time (best of ``repeats`` to
shave scheduler noise). ``run_perf`` returns structured results and
``write_trajectory`` persists them as a ``BENCH_*.json`` file other
runs can be diffed against — the repo's perf trajectory.
"""

from __future__ import annotations

import json
import platform as _platform
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

from ..errors import BenchmarkError

#: Trajectory file schema identifier; bump on incompatible change.
SCHEMA = "blockbench-perf/1"


@dataclass
class BenchResult:
    """One benchmark's measurement."""

    name: str
    ops: int
    unit: str
    wall_time_s: float
    ops_per_s: float
    meta: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Individual benchmarks
# ---------------------------------------------------------------------------
def bench_evm(quick: bool = False) -> BenchResult:
    """EVM interpreter throughput in executed opcodes (steps) per second."""
    from ..evm import EVM, CallContext, Profile
    from ..evm.programs import cpuheavy_code

    code = cpuheavy_code()
    n = 24 if quick else 96
    iterations = 3 if quick else 10
    vm = EVM(Profile.PARITY)
    context = CallContext(args=(n,))
    # Warm-up run (also populates any program cache) kept out of timing.
    warm = vm.execute(code, context=context)
    if not warm.success or warm.return_value != 1:
        raise RuntimeError(f"cpuheavy warm-up failed: {warm.error!r}")
    steps = 0
    start = time.perf_counter()
    for _ in range(iterations):
        steps += vm.execute(code, context=context).steps
    wall = time.perf_counter() - start
    return BenchResult(
        name="evm_cpuheavy",
        ops=steps,
        unit="steps",
        wall_time_s=wall,
        ops_per_s=steps / wall,
        meta={"n": n, "iterations": iterations, "profile": "parity"},
    )


#: Logical writes folded into one commit by the trie benchmark —
#: roughly a Hyperledger batch (500 txs x ~1 write) per block.
TRIE_BLOCK_SIZE = 500


def bench_trie(quick: bool = False) -> BenchResult:
    """Patricia-Merkle trie write throughput in logical puts per second.

    Measures the *product* write path (PR 5): intra-block writes land
    in a journaled overlay (a dict, last-write-wins) and every
    ``TRIE_BLOCK_SIZE`` logical puts the net write-set flushes through
    the batched ``PatriciaTrie.update`` — one shared-path rewrite per
    block, exactly what ``commit_block`` does. Only the per-block
    commit root is observable in the system, so logical puts/s through
    this pipeline is the honest data-model figure.
    """
    from ..crypto.trie import DictNodeStore, PatriciaTrie

    puts = 2_000 if quick else 12_000
    trie = PatriciaTrie(DictNodeStore())
    root = None
    overlay: dict[bytes, bytes] = {}
    blocks = 0
    start = time.perf_counter()
    for i in range(puts):
        key = b"acct:%016d" % (i % (puts // 2 or 1))  # half fresh, half updates
        overlay[key] = b"%032d" % i
        if len(overlay) >= TRIE_BLOCK_SIZE:
            root = trie.update(root, overlay.items())
            overlay.clear()
            blocks += 1
    if overlay:
        root = trie.update(root, overlay.items())
        blocks += 1
    wall = time.perf_counter() - start
    return BenchResult(
        name="trie_puts",
        ops=puts,
        unit="puts",
        wall_time_s=wall,
        ops_per_s=puts / wall,
        meta={
            "node_writes": trie.node_writes,
            "node_reads": trie.node_reads,
            "block_size": TRIE_BLOCK_SIZE,
            "blocks": blocks,
        },
    )


def bench_block_commit(quick: bool = False) -> BenchResult:
    """Block-commit pipeline throughput in logical writes per second.

    Drives the full :class:`~repro.platforms.ethereum.EthereumState`
    surface the way block execution does: contention-heavy writes
    (half of them re-hitting a small hot keyset, like SmallBank's
    accounts) buffer in the journaled overlay and ``commit_block``
    flushes the net write-set through the batched trie update. This is
    the layer the ISSUE names as the bottleneck — the number here is
    what one replica can commit, end to end, per wall second.
    """
    from ..platforms.ethereum import EthereumState

    blocks = 8 if quick else 30
    writes_per_block = 500
    hot_keys = 64
    state = EthereumState()
    total = blocks * writes_per_block
    start = time.perf_counter()
    seq = 0
    for height in range(1, blocks + 1):
        for i in range(writes_per_block):
            if i % 2:
                key = b"smallbank/acct:%06d" % (seq % hot_keys)
            else:
                key = b"ycsb/user%012d" % seq
            state.put(key, b"%032d" % seq)
            seq += 1
        state.commit_block(height)
    wall = time.perf_counter() - start
    return BenchResult(
        name="block_commit",
        ops=total,
        unit="writes",
        wall_time_s=wall,
        ops_per_s=total / wall,
        meta={
            "blocks": blocks,
            "writes_per_block": writes_per_block,
            "hot_keys": hot_keys,
            "node_writes": state.trie.trie.node_writes,
        },
    )


def bench_replica_execute(quick: bool = False) -> BenchResult:
    """Cluster-wide block execution throughput in transactions/second.

    Models what an N-replica cluster pays to apply one block
    everywhere: the first replica executes the SmallBank transactions
    for real (contract dispatch, gas metering, overlay writes), the
    :class:`~repro.platforms.base.ExecutionCache` records the net
    write-set, and replicas 2..N replay it into their own overlays and
    commit — the cross-replica memoization fast path. ops counts every
    (transaction, replica) application; equal roots on all replicas
    are asserted each block.
    """
    from ..contracts import create_contract, TxContext
    from ..platforms.base import _NamespacedState
    from ..platforms.ethereum import EthereumState

    replicas = 4
    blocks = 6 if quick else 20
    txs_per_block = 100
    states = [EthereumState() for _ in range(replicas)]
    contract = create_contract("smallbank")
    for state in states:
        facade = _NamespacedState(state, "smallbank")
        for account in range(32):
            contract.invoke(
                facade, "create_account", (f"acct{account}", 0, 1_000_000)
            )
        state.commit_block(0)
    total = blocks * txs_per_block * replicas
    start = time.perf_counter()
    for height in range(1, blocks + 1):
        primary = states[0]
        facade = _NamespacedState(primary, "smallbank")
        ctx = TxContext(block_height=height)
        for i in range(txs_per_block):
            src = (height * 31 + i) % 32
            dst = (src + 1 + i % 7) % 32
            contract.invoke(
                facade,
                "send_payment",
                (f"acct{src}", f"acct{dst}", 1 + i % 9),
                ctx,
            )
        write_set = primary.pending_writes()
        roots = {primary.commit_block(height)}
        for state in states[1:]:
            state.apply_write_set(write_set)
            roots.add(state.commit_block(height))
        if len(roots) != 1:
            raise RuntimeError("replica state roots diverged")
    wall = time.perf_counter() - start
    return BenchResult(
        name="replica_execute",
        ops=total,
        unit="tx",
        wall_time_s=wall,
        ops_per_s=total / wall,
        meta={
            "replicas": replicas,
            "blocks": blocks,
            "txs_per_block": txs_per_block,
        },
    )


def bench_scheduler(quick: bool = False) -> BenchResult:
    """Discrete-event scheduler throughput in processed events per second."""
    from ..sim.events import Scheduler

    events = 20_000 if quick else 120_000
    sched = Scheduler()
    remaining = events

    def tick() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            sched.schedule(0.001, tick)

    # Seed a realistic heap depth: many interleaved timers, not one.
    for i in range(64):
        sched.schedule(i * 0.0001, tick)
        remaining += 1
    remaining -= 64
    sched.schedule(0.0, tick)
    start = time.perf_counter()
    sched.run()
    wall = time.perf_counter() - start
    processed = sched.events_processed
    return BenchResult(
        name="scheduler_events",
        ops=processed,
        unit="events",
        wall_time_s=wall,
        ops_per_s=processed / wall,
        meta={},
    )


def bench_driver(quick: bool = False) -> BenchResult:
    """End-to-end macro benchmark: confirmed tx per wall-clock second."""
    from .runner import ExperimentSpec, run_experiment

    # 30 simulated seconds is the floor: at 4 ethereum servers the
    # first transaction-bearing blocks confirm between 25s and 30s, so
    # shorter windows measure an empty run. Quick mode shares the size
    # (about a second of wall time) to keep numbers comparable.
    duration = 30.0
    spec = ExperimentSpec(
        platform="ethereum",
        workload="ycsb",
        n_servers=4,
        n_clients=4,
        request_rate_tx_s=60.0,
        duration_s=duration,
        seed=7,
    )
    start = time.perf_counter()
    result = run_experiment(spec)
    wall = time.perf_counter() - start
    confirmed = result.summary.confirmed
    return BenchResult(
        name="driver_tx",
        ops=confirmed,
        unit="tx",
        wall_time_s=wall,
        ops_per_s=confirmed / wall,
        meta={
            "platform": spec.platform,
            "workload": spec.workload,
            "sim_duration_s": duration,
            "submitted": result.summary.submitted,
        },
    )


def bench_trace_overhead(quick: bool = False) -> BenchResult:
    """Lifecycle-tracing cost on the ``driver_tx`` macro path.

    Runs the exact ``driver_tx`` spec twice — tracing on, tracing off —
    and reports the *traced* path's throughput (so a gate on this
    benchmark bounds the product configuration users actually run,
    tracing being on by default). The off/on wall-time ratio lands in
    ``meta.overhead_ratio``: the tracing acceptance bar is < 1.05.
    """
    from .runner import ExperimentSpec, run_experiment

    def run_once(trace_stages: bool) -> tuple[float, int]:
        spec = ExperimentSpec(
            platform="ethereum",
            workload="ycsb",
            n_servers=4,
            n_clients=4,
            request_rate_tx_s=60.0,
            duration_s=30.0,
            seed=7,
            trace_stages=trace_stages,
        )
        start = time.perf_counter()
        result = run_experiment(spec)
        return time.perf_counter() - start, result.summary.confirmed

    # One untimed warmup run so allocator and import costs land on
    # neither side, then interleaved off/on pairs so machine drift hits
    # both sides alike; best-of-each-side keeps the ratio stable enough
    # to gate on.
    run_once(True)
    pairs = 1 if quick else 3
    walls_off, walls_on = [], []
    confirmed = confirmed_off = 0
    for _ in range(pairs):
        wall_off, confirmed_off = run_once(False)
        wall_on, confirmed = run_once(True)
        walls_off.append(wall_off)
        walls_on.append(wall_on)
    if confirmed != confirmed_off:
        raise BenchmarkError(
            "tracing changed the simulated outcome: "
            f"{confirmed} confirmed with tracing vs {confirmed_off} without"
        )
    wall_on = min(walls_on)
    wall_off = min(walls_off)
    return BenchResult(
        name="trace_overhead",
        ops=confirmed,
        unit="tx",
        wall_time_s=wall_on,
        ops_per_s=confirmed / wall_on,
        meta={
            "untraced_wall_time_s": wall_off,
            "untraced_ops_per_s": confirmed_off / wall_off,
            "overhead_ratio": wall_on / wall_off,
        },
    )


#: Coroutine-path reference for ``driver_tx_100k``, memoized per
#: process: the reference exists to scale the headline number, costs
#: ~30s of wall time at the 100k-client population, and is fully
#: deterministic — re-measuring it on every best-of-N repeat would
#: triple the harness runtime without changing the answer.
_COROUTINE_REF: dict | None = None


def _coroutine_reference() -> dict:
    """Measure the per-coroutine path at the full 100k-client scale.

    One sim second, zero drain: long enough to pay the population's
    real costs (construction, 100k submission RPCs, the polling fleet)
    and short enough to keep the harness usable. The comparable figure
    is *simulated seconds per wall second* — at equal population and
    offered load, how much faster does the clock advance.
    """
    global _COROUTINE_REF
    if _COROUTINE_REF is None:
        from .runner import ExperimentSpec, run_experiment

        sim_s = 1.0
        spec = ExperimentSpec(
            platform="hyperledger",
            workload="ycsb",
            n_servers=4,
            n_clients=100_000,
            request_rate_tx_s=0.02,  # x 100k clients = 2000 tx/s aggregate
            duration_s=sim_s,
            seed=7,
            client_mode="coroutine",
            stats_reservoir=10_000,
            drain_s=0.0,
        )
        start = time.perf_counter()
        run_experiment(spec)
        wall = time.perf_counter() - start
        _COROUTINE_REF = {
            "ref_clients": spec.n_clients,
            "ref_sim_duration_s": sim_s,
            "ref_wall_s": round(wall, 3),
            "ref_sim_s_per_wall_s": sim_s / wall,
        }
    return dict(_COROUTINE_REF)


def bench_driver_100k(quick: bool = False) -> BenchResult:
    """Open-loop megaclient driver: confirmed tx/s of wall at 100k clients.

    The tentpole measurement: a Poisson arrival process over a 100k
    Zipf-skewed sender population (one simulated client each) drives a
    4-server Hyperledger cluster at 2000 tx/s aggregate — a population
    the per-coroutine closed-loop path cannot hold (100k poll loops on
    the heap). ops/s is confirmed transactions per wall second; meta
    carries the cross-path comparison as *simulated seconds per wall
    second* at equal population and offered load, measured against a
    real coroutine run (skipped in quick mode — it costs ~30s).
    """
    from .runner import ExperimentSpec, run_experiment

    duration = 4.0 if quick else 10.0
    rate = 1000.0 if quick else 2000.0
    spec = ExperimentSpec(
        platform="hyperledger",
        workload="ycsb",
        n_servers=4,
        n_clients=1,  # ignored: the arrival spec switches to open loop
        request_rate_tx_s=1.0,
        duration_s=duration,
        seed=7,
        arrival={
            "process": "poisson",
            "rate": rate,
            "accounts": 100_000,
            "zipf_s": 1.1,
        },
        stats_reservoir=10_000,
    )
    start = time.perf_counter()
    result = run_experiment(spec)
    wall = time.perf_counter() - start
    confirmed = result.summary.confirmed
    meta = {
        "accounts": 100_000,
        "arrival_process": "poisson",
        "arrival_rate_tx_s": rate,
        "zipf_s": 1.1,
        "sim_duration_s": duration,
        "submitted": result.summary.submitted,
        "sim_s_per_wall_s": duration / wall,
    }
    if quick:
        meta["coroutine_ref"] = "skipped (quick mode)"
    else:
        ref = _coroutine_reference()
        meta.update(ref)
        meta["speedup_vs_coroutine"] = (
            (duration / wall) / ref["ref_sim_s_per_wall_s"]
        )
    return BenchResult(
        name="driver_tx_100k",
        ops=confirmed,
        unit="tx",
        wall_time_s=wall,
        ops_per_s=confirmed / wall,
        meta=meta,
    )


def bench_arrival_gen(quick: bool = False) -> BenchResult:
    """Arrival-process generator throughput in (gap, sender) draws/s.

    The open-loop driver's per-transaction fixed cost: one exponential
    gap plus one Zipf sender draw (bisect over the cumulative weights
    of a 100k-account population). This is the rate ceiling arrivals
    can be *generated* at, independent of what the cluster does with
    them.
    """
    import random

    from .workload import ArrivalGenerator, ArrivalSpec

    draws = 200_000 if quick else 1_000_000
    spec = ArrivalSpec(
        process="poisson", rate_tx_s=1000.0, accounts=100_000, zipf_s=1.1
    )
    gen = ArrivalGenerator(spec, random.Random(7))
    start = time.perf_counter()
    for _ in range(draws):
        next(gen)
    wall = time.perf_counter() - start
    return BenchResult(
        name="arrival_gen",
        ops=draws,
        unit="draws",
        wall_time_s=wall,
        ops_per_s=draws / wall,
        meta={"accounts": 100_000, "zipf_s": 1.1, "process": "poisson"},
    )


def bench_parallel_execute(quick: bool = False) -> BenchResult:
    """Capture-and-schedule execution throughput in transactions/second.

    The ``exec_workers > 1`` hot path end to end: every transaction of
    a low-contention KVStore block runs against a recording
    :class:`~repro.core.txsched.TxView`, merges in block order, and the
    captured access sets feed ``dependency_levels`` +
    ``level_makespan``. ops/s is the wall-clock rate of that full
    capture pipeline. ``meta.speedup_w4`` is the *simulated* win — the
    serial duration sum over the 4-worker makespan — which the CI gate
    requires to exceed 1.3x; ``capture_overhead`` is the wall-clock
    cost of capturing relative to plain serial execution (the price of
    the recording overlay). Equal roots between the serial and the
    captured pass are asserted every block.
    """
    from ..contracts import TxContext, create_contract
    from ..platforms.base import _NamespacedState
    from ..platforms.ethereum import EthereumState
    from .txsched import TxView, dependency_levels, level_makespan

    blocks = 6 if quick else 20
    txs_per_block = 200
    workers = 4
    seconds_per_gas = 2.0e-8  # the ethereum preset's execution cost
    contract = create_contract("kvstore")

    def run_serial(state: EthereumState) -> list[int]:
        gas = []
        for height in range(1, blocks + 1):
            facade = _NamespacedState(state, "kvstore")
            ctx = TxContext(block_height=height)
            for i in range(txs_per_block):
                result = contract.invoke(
                    facade, "write",
                    (f"k{height * txs_per_block + i}", f"v{i}"), ctx,
                )
                gas.append(result.gas_used)
            state.commit_block(height)
        return gas

    def run_captured(state: EthereumState) -> tuple[list[float], float]:
        makespans = []
        serial_sum = 0.0
        for height in range(1, blocks + 1):
            ctx = TxContext(block_height=height)
            accesses = []
            durations = []
            for i in range(txs_per_block):
                view = TxView(state)
                facade = _NamespacedState(view, "kvstore")
                result = contract.invoke(
                    facade, "write",
                    (f"k{height * txs_per_block + i}", f"v{i}"), ctx,
                )
                accesses.append(view.access_sets())
                view.merge_into(state)
                durations.append(result.gas_used * seconds_per_gas)
            levels = dependency_levels(accesses)
            serial_sum += sum(durations)
            makespans.append(level_makespan(durations, levels, workers))
            state.commit_block(height)
        return makespans, serial_sum

    serial_state = EthereumState()
    captured_state = EthereumState()
    t0 = time.perf_counter()
    run_serial(serial_state)
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    makespans, serial_sum = run_captured(captured_state)
    captured_wall = time.perf_counter() - t0
    if serial_state.pre_state_root() != captured_state.pre_state_root():
        raise RuntimeError("captured execution diverged from serial roots")
    total = blocks * txs_per_block
    speedup = serial_sum / sum(makespans)
    return BenchResult(
        name="parallel_execute",
        ops=total,
        unit="tx",
        wall_time_s=captured_wall,
        ops_per_s=total / captured_wall,
        meta={
            "workers": workers,
            "blocks": blocks,
            "txs_per_block": txs_per_block,
            "speedup_w4": speedup,
            "capture_overhead": captured_wall / serial_wall,
        },
    )


def bench_chain_sync(quick: bool = False) -> BenchResult:
    """Cold crash-recovery catch-up throughput in blocks replayed/s.

    Grows a Hyperledger chain with a node down from the first second,
    then restarts that node cold: it re-seeds genesis, block-syncs the
    entire chain from live peers in ``SYNC_BATCH`` batches, and replays
    every block through the normal execution path (riding the cluster's
    ExecutionCache). ops/s is chain blocks installed-and-executed per
    wall second over the whole recovery — the figure that bounds how
    fast a restarted replica rejoins, and the perf guard for the
    recovery subsystem.
    """
    from ..platforms import build_cluster
    from ..workloads import make_workload
    from .driver import Driver, DriverConfig
    from .faults import CrashFault, FaultSchedule

    duration = 12.0 if quick else 30.0
    cluster = build_cluster("hyperledger", 4, seed=7)
    driver = Driver(
        cluster,
        make_workload("ycsb"),
        DriverConfig(n_clients=2, request_rate_tx_s=80.0, duration_s=duration),
    )
    driver.prepare()
    # Down from t=1: the victim misses (and must later sync) the chain.
    FaultSchedule(
        crashes=[CrashFault(at_time=1.0, count=1, include_leader=False)]
    ).arm(cluster)
    driver.run()
    victim = cluster.nodes[-1]
    witness = cluster.nodes[1]
    deadline = cluster.scheduler.now + 300.0
    start = time.perf_counter()
    victim.recover("cold")
    while victim._recovering and cluster.scheduler.now < deadline:
        cluster.run_until(cluster.scheduler.now + 1.0)
    wall = time.perf_counter() - start
    if victim._recovering:
        raise RuntimeError("cold recovery did not complete")
    blocks = victim.executed_height
    common = min(blocks, witness.executed_height)
    if victim._height_roots[common] != witness._height_roots[common]:
        raise RuntimeError("recovered state root diverged from witness")
    sync_bytes = victim.sync_bytes_received
    recovery_s = victim.recovery_times[-1]
    cluster.close()
    return BenchResult(
        name="chain_sync",
        ops=blocks,
        unit="blocks",
        wall_time_s=wall,
        ops_per_s=blocks / wall,
        meta={
            "platform": "hyperledger",
            "mode": "cold",
            "sim_duration_s": duration,
            "sync_bytes": sync_bytes,
            "sim_recovery_s": recovery_s,
        },
    )


BENCHMARKS: dict[str, Callable[[bool], BenchResult]] = {
    "evm_cpuheavy": bench_evm,
    "trie_puts": bench_trie,
    "block_commit": bench_block_commit,
    "replica_execute": bench_replica_execute,
    "parallel_execute": bench_parallel_execute,
    "scheduler_events": bench_scheduler,
    "driver_tx": bench_driver,
    "chain_sync": bench_chain_sync,
    "driver_tx_100k": bench_driver_100k,
    "arrival_gen": bench_arrival_gen,
    "trace_overhead": bench_trace_overhead,
}


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------
def run_perf(
    names: list[str] | None = None,
    quick: bool = False,
    repeats: int = 3,
    progress: Callable[[str, int, int], None] | None = None,
) -> list[BenchResult]:
    """Run the selected benchmarks; best-of-``repeats`` per benchmark."""
    selected = list(BENCHMARKS) if not names else names
    unknown = [n for n in selected if n not in BENCHMARKS]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s) {', '.join(unknown)}; "
            f"available: {', '.join(BENCHMARKS)}"
        )
    results: list[BenchResult] = []
    for name in selected:
        best: BenchResult | None = None
        for attempt in range(max(1, repeats)):
            if progress is not None:
                progress(name, attempt + 1, max(1, repeats))
            result = BENCHMARKS[name](quick)
            if best is None or result.ops_per_s > best.ops_per_s:
                best = result
        assert best is not None
        results.append(best)
    return results


def git_rev() -> str:
    """Short git revision ('-dirty' suffixed when the tree has edits)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode != 0:
            return "unknown"
        rev = out.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            timeout=10,
        )
        if status.returncode == 0 and status.stdout.strip():
            rev += "-dirty"
        return rev
    except OSError:
        return "unknown"


def trajectory_dict(
    results: list[BenchResult],
    quick: bool = False,
    baseline: dict | None = None,
) -> dict:
    """Build the machine-readable trajectory payload."""
    payload = {
        "schema": SCHEMA,
        "git_rev": git_rev(),
        "python": _platform.python_version(),
        "quick": quick,
        "results": [asdict(r) for r in results],
    }
    if baseline is not None:
        payload["baseline"] = baseline
    return payload


def write_trajectory(
    path: str | Path,
    results: list[BenchResult],
    quick: bool = False,
    baseline: dict | None = None,
    payload: dict | None = None,
) -> Path:
    """Write the trajectory JSON; returns the path written.

    Pass ``payload`` when the caller already built it with
    :func:`trajectory_dict` — avoids re-running the git subprocesses
    and guarantees the written file matches what was shown.
    """
    if payload is None:
        payload = trajectory_dict(results, quick=quick, baseline=baseline)
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_trajectory(path: str | Path) -> dict:
    """Read and shape-check a previously written trajectory file.

    Raises :class:`ValueError` when the JSON parses but is not a perf
    trajectory (wrong top-level type, or ``results`` not a list of
    named entries) — pointing a gate at the wrong file must fail with
    a message, not an ``AttributeError`` deep in the comparison.
    """
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(
            f"{path} is not a perf trajectory: expected a JSON object, "
            f"got {type(data).__name__}"
        )
    results = data.get("results", [])
    if not isinstance(results, list) or not all(
        isinstance(entry, dict) and "name" in entry for entry in results
    ):
        raise ValueError(
            f"{path} is not a perf trajectory: 'results' must be a list "
            "of objects with a 'name' field"
        )
    return data


def baseline_names(baseline: dict) -> set[str]:
    """Benchmark names a trajectory has measurements for."""
    return {entry["name"] for entry in baseline.get("results", [])}


def compare(
    current: list[BenchResult], baseline: dict
) -> list[tuple[str, float, float, float]]:
    """(name, baseline ops/s, current ops/s, speedup) for shared benchmarks."""
    base_by_name = {r["name"]: r for r in baseline.get("results", [])}
    rows = []
    for result in current:
        base = base_by_name.get(result.name)
        if base is None or not base.get("ops_per_s"):
            continue
        rows.append(
            (
                result.name,
                base["ops_per_s"],
                result.ops_per_s,
                result.ops_per_s / base["ops_per_s"],
            )
        )
    return rows


def parse_gate(raw: str) -> tuple[str, float]:
    """Parse one ``NAME=RATIO`` regression gate (e.g. ``driver_tx=0.5``)."""
    name, sep, ratio_text = raw.partition("=")
    if not sep:
        raise ValueError(
            f"bad gate {raw!r}; expected NAME=RATIO, e.g. driver_tx=0.5"
        )
    if name not in BENCHMARKS:
        raise ValueError(
            f"unknown benchmark {name!r} in gate; available: "
            f"{', '.join(BENCHMARKS)}"
        )
    try:
        ratio = float(ratio_text)
    except ValueError:
        raise ValueError(f"bad ratio {ratio_text!r} in gate {raw!r}") from None
    if ratio <= 0:
        raise ValueError(f"gate ratio must be positive, got {ratio}")
    return name, ratio


def check_gates(
    current: list[BenchResult],
    baseline: dict,
    gates: dict[str, float],
) -> list[str]:
    """Regression check: current/baseline speedup per gated benchmark.

    Returns one failure message per gated benchmark whose speedup fell
    below its ratio (empty list = all gates pass). A gated benchmark
    missing from either side is a failure too — a gate that silently
    stops measuring is worse than a slow result.
    """
    rows = {name: (base, cur, speedup) for name, base, cur, speedup in
            compare(current, baseline)}
    failures = []
    for name, floor in sorted(gates.items()):
        row = rows.get(name)
        if row is None:
            failures.append(
                f"{name}: not present in both current results and baseline"
            )
            continue
        base, cur, speedup = row
        if speedup < floor:
            failures.append(
                f"{name}: {cur:,.0f} ops/s is {speedup:.2f}x baseline "
                f"({base:,.0f} ops/s); floor is {floor:.2f}x"
            )
    return failures
