"""Deterministic intra-block transaction scheduling (parallel execution).

Sequential transaction execution is the classic throughput ceiling in
permissioned chains (BLOCKBENCH's execution-layer figures; the "What
Blocks My Blockchain's Throughput?" bottleneck taxonomy). This module
is the scheduler side of the fix: given per-transaction read/write
sets captured while a block executes, it derives a **dependency-level
schedule** — which transactions could have run concurrently on a
W-worker execution engine — and the simulated makespan of that
schedule. The platform charges the makespan instead of the serial sum,
which is what shrinks the ``execution`` stage in the bottleneck
breakdown.

Correctness model (why the parallel results are byte-identical to
serial execution):

* each transaction executes against a :class:`TxView` — an isolated
  per-transaction overlay whose reads fall through to the block state
  (pre-state plus every *earlier* transaction's merged writes), exactly
  the state a serial executor would have shown it;
* after each transaction, its net writes merge into the block overlay
  in transaction order — the **last-writer-deterministic merge**: when
  two transactions write one key, the higher block index wins, which is
  precisely the serial outcome;
* :func:`dependency_levels` then assigns each transaction the earliest
  *level* (barrier round) consistent with its data hazards. Level L
  transactions only depend on levels < L, so a real W-worker engine
  running level by level against a per-level snapshot would read the
  same values serial execution read.

Hazard rules, for earlier transaction ``i`` and later ``j``:

* **read-after-write** — ``j`` read a key ``i`` wrote: ``j`` must run
  a level strictly after ``i`` (it consumed ``i``'s value);
* **write-after-write** — both wrote a key: strictly after, so every
  level's merged prefix equals the serial prefix;
* **write-after-read** — ``i`` read a key ``j`` writes: ``j`` must not
  run *before* ``i``'s level (same level is safe — ``i`` reads the
  pre-level snapshot, which excludes ``j``).

Everything here is a pure function of the captured access sets, so the
schedule — and therefore the simulated timeline — is identical across
runs, platforms, and repeated replays. The worker count only enters in
:func:`level_makespan`; the levels themselves are worker-independent,
which is what lets the :class:`~repro.platforms.base.ExecutionCache`
share one entry between replicas configured with different
``exec_workers``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class TxView:
    """Per-transaction recording overlay over a platform state.

    Reads are read-your-writes against this transaction's own buffered
    writes first, then fall through to the parent state (the block
    overlay plus committed backing) — recording the key as a *parent
    read*, the input half of the dependency analysis. Writes (and
    deletes, recorded as ``None``) stay buffered here until
    :meth:`merge_into` folds the net set into the block state.

    The surface matches :class:`~repro.platforms.base.PlatformState`'s
    key-value trio, so ``_NamespacedState`` — and through it both the
    native contracts' ``StateAccess`` facade and the EVM's
    ``StateStorage`` backend — capture transparently.
    """

    __slots__ = ("_parent", "writes", "parent_reads")

    def __init__(self, parent) -> None:
        self._parent = parent
        #: key -> value, ``None`` recording a delete; insertion order is
        #: first-write order, values are last-write-wins.
        self.writes: dict[bytes, bytes | None] = {}
        #: Keys whose value came from outside this transaction.
        self.parent_reads: set[bytes] = set()

    def get(self, key: bytes) -> bytes | None:
        writes = self.writes
        if key in writes:
            return writes[key]
        self.parent_reads.add(key)
        return self._parent.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self.writes[key] = value

    def delete(self, key: bytes) -> None:
        self.writes[key] = None

    def merge_into(self, state) -> None:
        """Fold this transaction's net writes into the block state.

        Routed through ``put``/``delete`` so subclass accounting
        (Parity's memory cap) sees every write, exactly as the serial
        path does. Called in block order, this is the last-writer-
        deterministic merge: later transactions overwrite earlier ones
        key-by-key, matching serial execution byte for byte.
        """
        for key, value in self.writes.items():
            if value is None:
                state.delete(key)
            else:
                state.put(key, value)

    def access_sets(self) -> tuple[frozenset, frozenset]:
        """The (reads, writes) key sets the scheduler consumes."""
        return frozenset(self.parent_reads), frozenset(self.writes)


def dependency_levels(
    accesses: Sequence[tuple[Iterable[bytes], Iterable[bytes]]],
) -> tuple[int, ...]:
    """Earliest hazard-free execution level for each transaction.

    ``accesses`` holds one ``(reads, writes)`` pair per transaction in
    block order. Returns one 1-based level per transaction: level L
    transactions depend only on levels < L, so a barrier scheduler may
    run each level's transactions concurrently. Non-conflicting
    transactions all land on level 1; a block where every transaction
    writes one hot key degrades to the serial chain ``1, 2, ..., N``.
    """
    last_writer_level: dict[bytes, int] = {}
    max_reader_level: dict[bytes, int] = {}
    levels: list[int] = []
    for reads, writes in accesses:
        level = 1
        for key in reads:
            writer = last_writer_level.get(key)
            if writer is not None and writer >= level:
                level = writer + 1  # read-after-write: strictly later
        for key in writes:
            writer = last_writer_level.get(key)
            if writer is not None and writer >= level:
                level = writer + 1  # write-after-write: strictly later
            reader = max_reader_level.get(key, 0)
            if reader > level:
                level = reader  # write-after-read: not earlier
        for key in writes:
            last_writer_level[key] = level
        for key in reads:
            if max_reader_level.get(key, 0) < level:
                max_reader_level[key] = level
        levels.append(level)
    return tuple(levels)


def level_makespan(
    durations: Sequence[float],
    levels: Sequence[int],
    workers: int,
) -> float:
    """Simulated seconds a W-worker engine needs for the scheduled block.

    Levels run as barrier rounds; within a level, transactions are
    assigned in block order to the least-loaded worker (ties break to
    the lowest worker index), and the level costs its longest worker.
    A pure function of its arguments — replicas replaying a memoized
    block from cached levels charge exactly what the executing replica
    charged. With ``workers=1`` this telescopes to the plain sum.
    """
    if len(durations) != len(levels):
        raise ValueError(
            f"{len(durations)} durations vs {len(levels)} levels"
        )
    workers = max(1, workers)
    by_level: dict[int, list[int]] = {}
    for index, level in enumerate(levels):
        by_level.setdefault(level, []).append(index)
    total = 0.0
    for level in sorted(by_level):
        loads = [0.0] * workers
        for index in by_level[level]:
            slot = min(range(workers), key=loads.__getitem__)
            loads[slot] += durations[index]
        total += max(loads)
    return total


def schedule_summary(levels: Sequence[int]) -> dict:
    """Shape of one block's schedule, for benchmarks and reports."""
    if not levels:
        return {"txs": 0, "levels": 0, "widest_level": 0}
    counts: dict[int, int] = {}
    for level in levels:
        counts[level] = counts.get(level, 0) + 1
    return {
        "txs": len(levels),
        "levels": max(levels),
        "widest_level": max(counts.values()),
    }
