"""The asynchronous BLOCKBENCH driver (Section 3.2).

One :class:`BenchClient` is a WorkloadClient: it submits transactions
to its assigned server at a configured request rate, keeps "a queue of
outstanding transactions that have not been confirmed", and a polling
loop "periodically invokes getLatestBlock(h) ... extracts transaction
lists from the confirmed blocks' content and removes matching ones in
the local queue" — exactly the paper's driver architecture.

Rejected submissions (Parity's intake throttle and signing-queue
overflow) stay in the client's local backlog and are retried, so the
queue-length series reproduces Figure 6's growth curves.

The client is written as generator-coroutines over the awaitable
connector API: the offered-load pump, each submission (with its retry
backoff), the getLatestBlock polling loop, the pub/sub consumption
loop, and the queue sampler are each one straight-line coroutine. The
pre-redesign callback implementation is retained verbatim as
:class:`CallbackBenchClient` — it exercises the compat ``on_reply``
adapter and serves as the differential oracle: both client modes must
replay bit-identical event timelines (``DriverConfig.client_mode``,
pinned by ``tests/core/test_client_modes.py``).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

from ..chain import Transaction
from ..errors import BenchmarkError
from ..sim import Scheduler, SimCoroutine, spawn
from .connector import RPCClient, SimChainConnector
from .stats import StatsCollector, merge_collectors
from .workload import Workload

#: Valid DriverConfig.client_mode values: the coroutine-native client
#: and the legacy callback client running through the compat adapter.
CLIENT_MODES = ("coroutine", "callback")


@dataclass
class DriverConfig:
    """Per-run driver knobs (the paper's 'user-defined configuration')."""

    n_clients: int = 8
    request_rate_tx_s: float = 100.0
    duration_s: float = 60.0
    poll_interval_s: float = 0.5
    retry_interval_s: float = 0.25
    queue_sample_interval_s: float = 1.0
    #: Worker threads per client ("multiple clients and threads per
    #: clients to saturate the blockchain", Section 3.3). Each thread
    #: has one submission RPC in flight at a time, so a saturated
    #: server back-pressures the client instead of being flooded.
    threads_per_client: int = 32
    #: Blocking mode: one outstanding transaction at a time (the
    #: paper's latency-measurement mode).
    blocking: bool = False
    #: Use the backend's publish/subscribe block feed instead of
    #: getLatestBlock polling (ErisDB only — Section 3.2). Confirmation
    #: events arrive pushed, saving one RPC round trip per poll.
    subscribe: bool = False
    #: Client implementation: "coroutine" (the awaitable API, default)
    #: or "callback" (the legacy client through the compat adapter).
    #: Both replay identical timelines; the knob exists so the
    #: equivalence is continuously testable.
    client_mode: str = "coroutine"

    def __post_init__(self) -> None:
        """Reject knob values that would hang or starve the run.

        These knobs are now reachable from the CLI and scenario JSON,
        so bad values arrive from outside the codebase: a non-positive
        poll interval reschedules the polling loop at the same
        simulated instant forever (time never advances), zero threads
        can never submit, and a negative backoff is an invalid timer.
        """
        if self.request_rate_tx_s <= 0:
            raise BenchmarkError(
                f"request_rate_tx_s must be positive, got {self.request_rate_tx_s}"
            )
        if self.poll_interval_s <= 0:
            raise BenchmarkError(
                f"poll_interval_s must be positive, got {self.poll_interval_s}"
            )
        if self.retry_interval_s < 0:
            raise BenchmarkError(
                f"retry_interval_s must be >= 0, got {self.retry_interval_s}"
            )
        if self.threads_per_client < 1:
            raise BenchmarkError(
                f"threads_per_client must be >= 1, got {self.threads_per_client}"
            )
        if self.client_mode not in CLIENT_MODES:
            raise BenchmarkError(
                f"unknown client_mode {self.client_mode!r}; "
                f"expected one of {CLIENT_MODES}"
            )


class _BenchClientBase:
    """State shared by both client implementations.

    Everything here is mode-independent: connector wiring, the
    outstanding/backlog queues, stats, and confirmed-block matching.
    Only the control flow (coroutines vs callbacks) differs in the
    subclasses.
    """

    def __init__(
        self,
        index: int,
        cluster,
        workload: Workload,
        config: DriverConfig,
        rng: random.Random,
    ) -> None:
        self.index = index
        self.cluster = cluster
        self.workload = workload
        self.config = config
        self.rng = rng
        self.scheduler: Scheduler = cluster.scheduler
        server_ids = cluster.node_ids()
        self.server_id = server_ids[index % len(server_ids)]
        self.rpc = RPCClient(f"client-{index}", cluster.scheduler, cluster.network)
        self.connector = SimChainConnector(cluster, self.rpc, self.server_id)
        self.stats = StatsCollector(cluster.platform, workload.name)
        # Outstanding = submitted, awaiting confirmation.
        self.outstanding: dict[str, float] = {}
        # Backlog = generated/rejected, awaiting (re)submission.
        self.backlog: deque[Transaction] = deque()
        self._poll_height = 0
        self._running = False
        self._deadline = 0.0
        # Submission RPCs currently awaiting a server reply (one per
        # simulated worker thread).
        self._inflight_submissions = 0

    def _stop(self) -> None:
        self._running = False
        self.stats.finish(self.scheduler.now)

    def queue_length(self) -> int:
        return len(self.outstanding) + len(self.backlog)

    def _next_tx(self) -> Transaction:
        return self.workload.next_transaction(
            f"client-{self.index}", self.rng, self.scheduler.now
        )

    def _process_block_summary(self, block: dict) -> None:
        """Match one confirmed block's transactions against outstanding."""
        self._poll_height = max(self._poll_height, block["height"])
        for tx_id in block["tx_ids"]:
            submitted_at = self.outstanding.pop(tx_id, None)
            if submitted_at is not None:
                confirmed_at = self.scheduler.now
                if submitted_at <= self._deadline:
                    self.stats.record_confirmation(submitted_at, confirmed_at)
                if self.config.blocking and self._running:
                    self._submit_next_blocking()

    def _submit_next_blocking(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def start(self, duration_s: float) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class BenchClient(_BenchClientBase):
    """One workload client bound to one server (coroutine-native).

    Four long-lived coroutines per client: the offered-load pump, the
    confirmation loop (polling or pub/sub), and the queue sampler; plus
    one short-lived submission coroutine per in-flight transaction.
    """

    def start(self, duration_s: float) -> None:
        now = self.scheduler.now
        self._running = True
        self._deadline = now + duration_s
        self.stats.begin(now)
        if self.config.blocking:
            self._submit_next_blocking()
        else:
            spawn(self._submit_pump())
        if self.config.subscribe:
            spawn(self._subscribe_pump())
        else:
            spawn(self._poll_pump())
        spawn(self._sample_pump())
        self.scheduler.schedule(duration_s, self._stop)

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------
    def _submit_pump(self) -> SimCoroutine:
        """Offered load: one new transaction per rate tick.

        The tick enqueues regardless of whether a worker thread is
        free; when all threads are blocked on submission RPCs the
        backlog grows — Figure 6's curves.
        """
        interval = 1.0 / self.config.request_rate_tx_s
        yield self.scheduler.sleep(0.0)
        while self._running:
            self.backlog.append(self._next_tx())
            if self._inflight_submissions < self.config.threads_per_client:
                spawn(self._submit_one(self.backlog.popleft()))
            yield self.scheduler.sleep(interval)

    def _submit_next_blocking(self) -> None:
        if self._running:
            spawn(self._submit_one(self._next_tx()))

    def _submit_one(self, tx: Transaction) -> SimCoroutine:
        """Submit one transaction and see its reply through.

        Occupies one worker thread for the round trip; on rejection
        (throttle/full queue) the transaction goes back to the backlog
        and a freed thread retries after a backoff, like a real client
        facing HTTP 429-style pushback.
        """
        submit_time = self.scheduler.now
        self.stats.record_submission()
        self._inflight_submissions += 1
        reply = yield self.connector.send_transaction(tx)
        self._inflight_submissions -= 1
        if reply.get("accepted"):
            self.outstanding[tx.tx_id] = submit_time
            # A freed worker thread immediately drains the backlog.
            if (
                not self.config.blocking
                and self._running
                and self.backlog
                and self._inflight_submissions < self.config.threads_per_client
            ):
                spawn(self._submit_one(self.backlog.popleft()))
        else:
            self.stats.record_rejection()
            self.backlog.append(tx)
            yield self.scheduler.sleep(self.config.retry_interval_s)
            if (
                self._running
                and self.backlog
                and self._inflight_submissions < self.config.threads_per_client
            ):
                spawn(self._submit_one(self.backlog.popleft()))

    # ------------------------------------------------------------------
    # Confirmation paths (getLatestBlock polling / pub-sub feed)
    # ------------------------------------------------------------------
    def _poll_pump(self) -> SimCoroutine:
        """Fire one getLatestBlock round per poll interval.

        Rounds overlap the interval (the next tick is not gated on the
        previous reply), so each round is its own small coroutine.
        Polling keeps going briefly past the deadline to drain
        confirmations of transactions submitted inside the window.
        """
        poll = self.config.poll_interval_s
        yield self.scheduler.sleep(poll)
        while self.scheduler.now <= self._deadline + 10 * poll:
            spawn(self._poll_once())
            yield self.scheduler.sleep(poll)

    def _poll_once(self) -> SimCoroutine:
        reply = yield self.connector.get_latest_block(self._poll_height)
        for block in reply.get("blocks", []):
            self._process_block_summary(block)

    def _subscribe_pump(self) -> SimCoroutine:
        """Consume the pub/sub block feed (ErisDB, Section 3.2)."""
        subscription = self.connector.subscribe_new_blocks(0)
        while True:
            block = yield subscription.next_block()
            self._process_block_summary(block)

    # ------------------------------------------------------------------
    # Queue sampling
    # ------------------------------------------------------------------
    def _sample_pump(self) -> SimCoroutine:
        interval = self.config.queue_sample_interval_s
        yield self.scheduler.sleep(interval)
        while self._running:
            self.stats.record_queue_length(self.scheduler.now, self.queue_length())
            yield self.scheduler.sleep(interval)


class CallbackBenchClient(_BenchClientBase):
    """The pre-redesign callback client, kept as the adapter oracle.

    Runs entirely through the compat ``on_reply`` signatures of the v2
    connector. Its event timeline must stay bit-identical to
    :class:`BenchClient`'s — that equivalence is what certifies the
    coroutine rewrite changed no measured behavior.
    """

    def start(self, duration_s: float) -> None:
        now = self.scheduler.now
        self._running = True
        self._deadline = now + duration_s
        self.stats.begin(now)
        if self.config.blocking:
            self._submit_next_blocking()
        else:
            self.scheduler.schedule(0.0, self._tick_submit)
        if self.config.subscribe:
            self.connector.subscribe_new_blocks(0, self._on_block_event)
        else:
            self.scheduler.schedule(self.config.poll_interval_s, self._tick_poll)
        self.scheduler.schedule(
            self.config.queue_sample_interval_s, self._tick_sample
        )
        self.scheduler.schedule(duration_s, self._stop)

    # ------------------------------------------------------------------
    # Submission paths
    # ------------------------------------------------------------------
    def _tick_submit(self) -> None:
        if not self._running:
            return
        self.backlog.append(self._next_tx())
        if self._inflight_submissions < self.config.threads_per_client:
            self._submit(self.backlog.popleft())
        interval = 1.0 / self.config.request_rate_tx_s
        self.scheduler.schedule(interval, self._tick_submit)

    def _submit_next_blocking(self) -> None:
        if not self._running:
            return
        self._submit(self._next_tx())

    def _submit(self, tx: Transaction) -> None:
        submit_time = self.scheduler.now
        self.stats.record_submission()
        self._inflight_submissions += 1

        def on_reply(reply: dict) -> None:
            self._inflight_submissions -= 1
            if reply.get("accepted"):
                self.outstanding[tx.tx_id] = submit_time
                if (
                    not self.config.blocking
                    and self._running
                    and self.backlog
                    and self._inflight_submissions < self.config.threads_per_client
                ):
                    self._submit(self.backlog.popleft())
            else:
                self.stats.record_rejection()
                self.backlog.append(tx)
                self.scheduler.schedule(
                    self.config.retry_interval_s, self._retry_backlog
                )

        self.connector.send_transaction(tx, on_reply)

    def _retry_backlog(self) -> None:
        if (
            self._running
            and self.backlog
            and self._inflight_submissions < self.config.threads_per_client
        ):
            self._submit(self.backlog.popleft())

    # ------------------------------------------------------------------
    # Polling loop (getLatestBlock)
    # ------------------------------------------------------------------
    def _tick_poll(self) -> None:
        if self.scheduler.now > self._deadline + 10 * self.config.poll_interval_s:
            return

        def on_reply(reply: dict) -> None:
            for block in reply.get("blocks", []):
                self._process_block_summary(block)

        self.connector.get_latest_block(self._poll_height, on_reply)
        self.scheduler.schedule(self.config.poll_interval_s, self._tick_poll)

    def _on_block_event(self, block: dict) -> None:
        """Push-based confirmation path (subscribe mode)."""
        self._process_block_summary(block)

    def _tick_sample(self) -> None:
        if not self._running:
            return
        self.stats.record_queue_length(self.scheduler.now, self.queue_length())
        self.scheduler.schedule(
            self.config.queue_sample_interval_s, self._tick_sample
        )


def _client_class(mode: str) -> type[_BenchClientBase]:
    if mode == "coroutine":
        return BenchClient
    if mode == "callback":
        return CallbackBenchClient
    raise BenchmarkError(
        f"unknown client_mode {mode!r}; expected one of {CLIENT_MODES}"
    )


class Driver:
    """The paper's Driver: spawns clients, runs, aggregates statistics."""

    def __init__(self, cluster, workload: Workload, config: DriverConfig) -> None:
        self.cluster = cluster
        self.workload = workload
        self.config = config
        self.clients: list[_BenchClientBase] = []

    def prepare(self) -> None:
        """Deploy contracts and preload state."""
        client_cls = _client_class(self.config.client_mode)
        for contract in self.workload.required_contracts:
            for node in self.cluster.nodes:
                node.deploy(contract)
        self.workload.preload(self.cluster)
        for index in range(self.config.n_clients):
            rng = self.cluster.rng.stream(f"client-{index}")
            self.clients.append(
                client_cls(index, self.cluster, self.workload, self.config, rng)
            )

    def run(self, extra_drain_s: float = 5.0) -> StatsCollector:
        """Run the configured duration; returns merged statistics."""
        if not self.clients:
            self.prepare()
        for client in self.clients:
            client.start(self.config.duration_s)
        self.cluster.run_until(
            self.cluster.scheduler.now + self.config.duration_s + extra_drain_s
        )
        return merge_collectors([c.stats for c in self.clients])

    def queue_series(self) -> list[tuple[float, int]]:
        """Summed client queue lengths over time (Figures 6 and 18)."""
        return merge_collectors([c.stats for c in self.clients]).queue_samples
