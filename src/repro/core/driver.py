"""The asynchronous BLOCKBENCH driver (Section 3.2).

One :class:`BenchClient` is a WorkloadClient: it submits transactions
to its assigned server at a configured request rate, keeps "a queue of
outstanding transactions that have not been confirmed", and a polling
loop "periodically invokes getLatestBlock(h) ... extracts transaction
lists from the confirmed blocks' content and removes matching ones in
the local queue" — exactly the paper's driver architecture.

Rejected submissions (Parity's intake throttle and signing-queue
overflow) stay in the client's local backlog and are retried, so the
queue-length series reproduces Figure 6's growth curves.

The client is written as generator-coroutines over the awaitable
connector API: the offered-load pump, each submission (with its retry
backoff), the getLatestBlock polling loop, the pub/sub consumption
loop, and the queue sampler are each one straight-line coroutine. The
pre-redesign callback implementation is retained verbatim as
:class:`CallbackBenchClient` — it exercises the compat ``on_reply``
adapter and serves as the differential oracle: both client modes must
replay bit-identical event timelines (``DriverConfig.client_mode``,
pinned by ``tests/core/test_client_modes.py``).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

from ..chain import Transaction
from ..errors import BenchmarkError
from ..sim import Scheduler, SimCoroutine, spawn
from .connector import RPCClient, SimChainConnector
from .stats import StatsCollector, merge_collectors
from .workload import ArrivalGenerator, ArrivalSpec, Workload

#: Valid DriverConfig.client_mode values: the coroutine-native client,
#: the legacy callback client running through the compat adapter, and
#: the vectorized batch client (N homogeneous clients, shared ticks).
CLIENT_MODES = ("coroutine", "callback", "batch")


@dataclass
class DriverConfig:
    """Per-run driver knobs (the paper's 'user-defined configuration')."""

    n_clients: int = 8
    request_rate_tx_s: float = 100.0
    duration_s: float = 60.0
    poll_interval_s: float = 0.5
    retry_interval_s: float = 0.25
    queue_sample_interval_s: float = 1.0
    #: Worker threads per client ("multiple clients and threads per
    #: clients to saturate the blockchain", Section 3.3). Each thread
    #: has one submission RPC in flight at a time, so a saturated
    #: server back-pressures the client instead of being flooded.
    threads_per_client: int = 32
    #: Blocking mode: one outstanding transaction at a time (the
    #: paper's latency-measurement mode).
    blocking: bool = False
    #: Use the backend's publish/subscribe block feed instead of
    #: getLatestBlock polling (ErisDB only — Section 3.2). Confirmation
    #: events arrive pushed, saving one RPC round trip per poll.
    subscribe: bool = False
    #: Client implementation: "coroutine" (the awaitable API, default),
    #: "callback" (the legacy client through the compat adapter), or
    #: "batch" (one BatchClient drives all N clients from shared tick
    #: events). All replay identical timelines; the knobs exist so the
    #: equivalences are continuously testable.
    client_mode: str = "coroutine"
    #: Open-loop mode: when set, the run is driven by an aggregate
    #: arrival process (OpenLoopDriver) instead of N closed-loop
    #: clients; n_clients / request_rate_tx_s / threads_per_client are
    #: ignored in favor of the arrival spec.
    arrival: ArrivalSpec | None = None
    #: Bound the latency sample set held in memory (reservoir size, 0 =
    #: keep every sample). See StatsCollector for the accuracy tradeoff.
    stats_reservoir: int = 0
    #: Fail over to the next live server when an RPC times out (the
    #: client side of crash recovery). Off by default: the legacy
    #: client pins its endpoint and retries it forever, so runs without
    #: the knob replay unchanged.
    failover: bool = False
    #: Cap on the exponential backoff between failover attempts. The
    #: backoff starts at ``retry_interval_s`` and doubles per
    #: consecutive timeout — deterministic, no jitter, so failover runs
    #: stay replayable.
    max_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        """Reject knob values that would hang or starve the run.

        These knobs are now reachable from the CLI and scenario JSON,
        so bad values arrive from outside the codebase: a non-positive
        poll interval reschedules the polling loop at the same
        simulated instant forever (time never advances), zero threads
        can never submit, and a negative backoff is an invalid timer.
        """
        if self.request_rate_tx_s <= 0:
            raise BenchmarkError(
                f"request_rate_tx_s must be positive, got {self.request_rate_tx_s}"
            )
        if self.poll_interval_s <= 0:
            raise BenchmarkError(
                f"poll_interval_s must be positive, got {self.poll_interval_s}"
            )
        if self.retry_interval_s < 0:
            raise BenchmarkError(
                f"retry_interval_s must be >= 0, got {self.retry_interval_s}"
            )
        if self.threads_per_client < 1:
            raise BenchmarkError(
                f"threads_per_client must be >= 1, got {self.threads_per_client}"
            )
        if self.client_mode not in CLIENT_MODES:
            raise BenchmarkError(
                f"unknown client_mode {self.client_mode!r}; "
                f"expected one of {CLIENT_MODES}"
            )
        if self.stats_reservoir < 0:
            raise BenchmarkError(
                f"stats_reservoir must be >= 0, got {self.stats_reservoir}"
            )
        if self.max_backoff_s < 0:
            raise BenchmarkError(
                f"max_backoff_s must be >= 0, got {self.max_backoff_s}"
            )


class _BenchClientBase:
    """State shared by both client implementations.

    Everything here is mode-independent: connector wiring, the
    outstanding/backlog queues, stats, and confirmed-block matching.
    Only the control flow (coroutines vs callbacks) differs in the
    subclasses.
    """

    def __init__(
        self,
        index: int,
        cluster,
        workload: Workload,
        config: DriverConfig,
        rng: random.Random,
    ) -> None:
        self.index = index
        self.cluster = cluster
        self.workload = workload
        self.config = config
        self.rng = rng
        self.scheduler: Scheduler = cluster.scheduler
        #: Cluster lifecycle tracer (None when trace_stages is off).
        self.tracer = getattr(cluster, "tracer", None)
        server_ids = cluster.node_ids()
        self.server_id = server_ids[index % len(server_ids)]
        self.rpc = RPCClient(f"client-{index}", cluster.scheduler, cluster.network)
        self.connector = SimChainConnector(cluster, self.rpc, self.server_id)
        self.stats = StatsCollector(
            cluster.platform,
            workload.name,
            reservoir=config.stats_reservoir,
            reservoir_seed=index,
        )
        # Outstanding = submitted, awaiting confirmation.
        self.outstanding: dict[str, float] = {}
        # Backlog = generated/rejected, awaiting (re)submission.
        self.backlog: deque[Transaction] = deque()
        self._poll_height = 0
        self._running = False
        self._deadline = 0.0
        # Submission RPCs currently awaiting a server reply (one per
        # simulated worker thread).
        self._inflight_submissions = 0
        # Failover backoff: starts at the retry interval, doubles per
        # consecutive timeout, reset on the first accepted reply.
        self._backoff_s = config.retry_interval_s

    def _stop(self) -> None:
        self._running = False
        self.stats.finish(self.scheduler.now)

    def _poll_timeout_s(self) -> float | None:
        """Bound poll RPCs only in failover mode: a poll at a crashed
        endpoint must resolve so the loop can repoint itself."""
        if self.config.failover:
            return SimChainConnector.SUBMIT_TIMEOUT_S
        return None

    def _next_backoff(self) -> float:
        delay = min(self._backoff_s, self.config.max_backoff_s)
        self._backoff_s = min(self._backoff_s * 2.0, self.config.max_backoff_s)
        return delay

    def _reset_backoff(self) -> None:
        self._backoff_s = self.config.retry_interval_s

    def queue_length(self) -> int:
        return len(self.outstanding) + len(self.backlog)

    def _next_tx(self) -> Transaction:
        return self.workload.next_transaction(
            f"client-{self.index}", self.rng, self.scheduler.now
        )

    def _process_block_summary(self, block: dict) -> None:
        """Match one confirmed block's transactions against outstanding."""
        self._poll_height = max(self._poll_height, block["height"])
        for tx_id in block["tx_ids"]:
            submitted_at = self.outstanding.pop(tx_id, None)
            if submitted_at is not None:
                confirmed_at = self.scheduler.now
                if submitted_at <= self._deadline:
                    self.stats.record_confirmation(submitted_at, confirmed_at)
                    if self.tracer is not None:
                        self.tracer.record_notify(tx_id, confirmed_at)
                if self.config.blocking and self._running:
                    self._submit_next_blocking()

    def _submit_next_blocking(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def start(self, duration_s: float) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def stat_collectors(self) -> list[StatsCollector]:
        """Per-client collectors in client order (one here; the batch
        client returns one per slot so merges stay order-identical)."""
        return [self.stats]


class BenchClient(_BenchClientBase):
    """One workload client bound to one server (coroutine-native).

    Four long-lived coroutines per client: the offered-load pump, the
    confirmation loop (polling or pub/sub), and the queue sampler; plus
    one short-lived submission coroutine per in-flight transaction.
    """

    def start(self, duration_s: float) -> None:
        now = self.scheduler.now
        self._running = True
        self._deadline = now + duration_s
        self.stats.begin(now)
        if self.config.blocking:
            self._submit_next_blocking()
        else:
            spawn(self._submit_pump())
        if self.config.subscribe:
            spawn(self._subscribe_pump())
        else:
            spawn(self._poll_pump())
        spawn(self._sample_pump())
        self.scheduler.schedule(duration_s, self._stop)

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------
    def _submit_pump(self) -> SimCoroutine:
        """Offered load: one new transaction per rate tick.

        The tick enqueues regardless of whether a worker thread is
        free; when all threads are blocked on submission RPCs the
        backlog grows — Figure 6's curves.
        """
        interval = 1.0 / self.config.request_rate_tx_s
        yield self.scheduler.sleep(0.0)
        while self._running:
            self.backlog.append(self._next_tx())
            if self._inflight_submissions < self.config.threads_per_client:
                spawn(self._submit_one(self.backlog.popleft()))
            yield self.scheduler.sleep(interval)

    def _submit_next_blocking(self) -> None:
        if self._running:
            spawn(self._submit_one(self._next_tx()))

    def _submit_one(self, tx: Transaction) -> SimCoroutine:
        """Submit one transaction and see its reply through.

        Occupies one worker thread for the round trip; on rejection
        (throttle/full queue) the transaction goes back to the backlog
        and a freed thread retries after a backoff, like a real client
        facing HTTP 429-style pushback.
        """
        submit_time = self.scheduler.now
        self.stats.record_submission()
        self._inflight_submissions += 1
        reply = yield self.connector.send_transaction(tx)
        self._inflight_submissions -= 1
        failover = self.config.failover
        if reply.get("accepted") or (failover and reply.get("dup")):
            # A "dup" reply after failover means the transaction is
            # already pooled (or committed) cluster-side — it counts as
            # submitted and the poller will confirm it.
            self._reset_backoff()
            self.outstanding[tx.tx_id] = submit_time
            if self.tracer is not None:
                self.tracer.record_submit(tx.tx_id, submit_time)
            # A freed worker thread immediately drains the backlog.
            if (
                not self.config.blocking
                and self._running
                and self.backlog
                and self._inflight_submissions < self.config.threads_per_client
            ):
                spawn(self._submit_one(self.backlog.popleft()))
        elif failover and reply.get("timeout"):
            # Dead endpoint: exponential backoff, repoint at the next
            # live server, resubmit the same transaction (mempool dedup
            # makes the resubmission safe).
            self.stats.record_rejection()
            yield self.scheduler.sleep(self._next_backoff())
            self.connector.fail_over()
            spawn(self._submit_one(tx))
        else:
            self.stats.record_rejection()
            self.backlog.append(tx)
            yield self.scheduler.sleep(self.config.retry_interval_s)
            if (
                self._running
                and self.backlog
                and self._inflight_submissions < self.config.threads_per_client
            ):
                spawn(self._submit_one(self.backlog.popleft()))

    # ------------------------------------------------------------------
    # Confirmation paths (getLatestBlock polling / pub-sub feed)
    # ------------------------------------------------------------------
    def _poll_pump(self) -> SimCoroutine:
        """Fire one getLatestBlock round per poll interval.

        Rounds overlap the interval (the next tick is not gated on the
        previous reply), so each round is its own small coroutine.
        Polling keeps going briefly past the deadline to drain
        confirmations of transactions submitted inside the window.
        """
        poll = self.config.poll_interval_s
        yield self.scheduler.sleep(poll)
        while self.scheduler.now <= self._deadline + 10 * poll:
            spawn(self._poll_once())
            yield self.scheduler.sleep(poll)

    def _poll_once(self) -> SimCoroutine:
        reply = yield self.connector.get_latest_block(
            self._poll_height, timeout_s=self._poll_timeout_s()
        )
        if reply.get("timeout"):
            # Dead endpoint: repoint; the next poll tick covers the gap.
            self.connector.fail_over()
            return
        for block in reply.get("blocks", []):
            self._process_block_summary(block)

    def _subscribe_pump(self) -> SimCoroutine:
        """Consume the pub/sub block feed (ErisDB, Section 3.2)."""
        subscription = self.connector.subscribe_new_blocks(0)
        while True:
            block = yield subscription.next_block()
            self._process_block_summary(block)

    # ------------------------------------------------------------------
    # Queue sampling
    # ------------------------------------------------------------------
    def _sample_pump(self) -> SimCoroutine:
        interval = self.config.queue_sample_interval_s
        yield self.scheduler.sleep(interval)
        while self._running:
            # Stage-depth gauges are cluster-global; exactly one client
            # (index 0) samples them so merges don't multiply the series.
            depths = (
                self.tracer.queue_depths()
                if self.index == 0 and self.tracer is not None
                else None
            )
            self.stats.record_queue_length(
                self.scheduler.now, self.queue_length(), stage_depths=depths
            )
            yield self.scheduler.sleep(interval)


class CallbackBenchClient(_BenchClientBase):
    """The pre-redesign callback client, kept as the adapter oracle.

    Runs entirely through the compat ``on_reply`` signatures of the v2
    connector. Its event timeline must stay bit-identical to
    :class:`BenchClient`'s — that equivalence is what certifies the
    coroutine rewrite changed no measured behavior.
    """

    def start(self, duration_s: float) -> None:
        now = self.scheduler.now
        self._running = True
        self._deadline = now + duration_s
        self.stats.begin(now)
        if self.config.blocking:
            self._submit_next_blocking()
        else:
            self.scheduler.schedule(0.0, self._tick_submit)
        if self.config.subscribe:
            self.connector.subscribe_new_blocks(0, self._on_block_event)
        else:
            self.scheduler.schedule(self.config.poll_interval_s, self._tick_poll)
        self.scheduler.schedule(
            self.config.queue_sample_interval_s, self._tick_sample
        )
        self.scheduler.schedule(duration_s, self._stop)

    # ------------------------------------------------------------------
    # Submission paths
    # ------------------------------------------------------------------
    def _tick_submit(self) -> None:
        if not self._running:
            return
        self.backlog.append(self._next_tx())
        if self._inflight_submissions < self.config.threads_per_client:
            self._submit(self.backlog.popleft())
        interval = 1.0 / self.config.request_rate_tx_s
        self.scheduler.schedule(interval, self._tick_submit)

    def _submit_next_blocking(self) -> None:
        if not self._running:
            return
        self._submit(self._next_tx())

    def _submit(self, tx: Transaction) -> None:
        submit_time = self.scheduler.now
        self.stats.record_submission()
        self._inflight_submissions += 1

        def on_reply(reply: dict) -> None:
            self._inflight_submissions -= 1
            failover = self.config.failover
            if reply.get("accepted") or (failover and reply.get("dup")):
                self._reset_backoff()
                self.outstanding[tx.tx_id] = submit_time
                if self.tracer is not None:
                    self.tracer.record_submit(tx.tx_id, submit_time)
                if (
                    not self.config.blocking
                    and self._running
                    and self.backlog
                    and self._inflight_submissions < self.config.threads_per_client
                ):
                    self._submit(self.backlog.popleft())
            elif failover and reply.get("timeout"):
                self.stats.record_rejection()
                self.scheduler.schedule(
                    self._next_backoff(), self._failover_resubmit, tx
                )
            else:
                self.stats.record_rejection()
                self.backlog.append(tx)
                self.scheduler.schedule(
                    self.config.retry_interval_s, self._retry_backlog
                )

        self.connector.send_transaction(tx, on_reply)

    def _failover_resubmit(self, tx: Transaction) -> None:
        self.connector.fail_over()
        self._submit(tx)

    def _retry_backlog(self) -> None:
        if (
            self._running
            and self.backlog
            and self._inflight_submissions < self.config.threads_per_client
        ):
            self._submit(self.backlog.popleft())

    # ------------------------------------------------------------------
    # Polling loop (getLatestBlock)
    # ------------------------------------------------------------------
    def _tick_poll(self) -> None:
        if self.scheduler.now > self._deadline + 10 * self.config.poll_interval_s:
            return

        def on_reply(reply: dict) -> None:
            if reply.get("timeout"):
                self.connector.fail_over()
                return
            for block in reply.get("blocks", []):
                self._process_block_summary(block)

        self.connector.get_latest_block(
            self._poll_height, on_reply, timeout_s=self._poll_timeout_s()
        )
        self.scheduler.schedule(self.config.poll_interval_s, self._tick_poll)

    def _on_block_event(self, block: dict) -> None:
        """Push-based confirmation path (subscribe mode)."""
        self._process_block_summary(block)

    def _tick_sample(self) -> None:
        if not self._running:
            return
        depths = (
            self.tracer.queue_depths()
            if self.index == 0 and self.tracer is not None
            else None
        )
        self.stats.record_queue_length(
            self.scheduler.now, self.queue_length(), stage_depths=depths
        )
        self.scheduler.schedule(
            self.config.queue_sample_interval_s, self._tick_sample
        )


class BatchClient:
    """N homogeneous closed-loop clients driven from shared tick events.

    Where N individual clients schedule 3 recurring heap events each
    (submit, poll, sample — plus one stop timer apiece), the batch
    schedules 4 *total* and sweeps all client slots inside each tick.
    Per-slot state lives in parallel arrays indexed by slot; each slot
    keeps its own RPC endpoint, connector, rng stream, and collector —
    the exact objects the individual clients would own — so every
    network send and rng draw happens in the same global order.

    Why the timeline is bit-identical to N :class:`CallbackBenchClient`
    objects (pinned by ``tests/core/test_batch_client.py``): with a
    homogeneous config, the N clients' same-kind tick events carry the
    same timestamp and consecutive-in-client-order heap positions, and
    no foreign event can sort between them — message deliveries and
    retry timers sit at jitter-perturbed times that never collide with
    the tick grid. Collapsing N adjacent firings into one event that
    loops slots in client order therefore reorders nothing, and the
    callback client is itself pinned bit-identical to the coroutine
    client, so the equivalence composes across all three modes.
    """

    def __init__(
        self,
        indices: list[int],
        cluster,
        workload: Workload,
        config: DriverConfig,
        rngs: list[random.Random],
    ) -> None:
        if len(indices) != len(rngs):
            raise BenchmarkError("one rng stream per client slot required")
        self.indices = list(indices)
        self.cluster = cluster
        self.workload = workload
        self.config = config
        self.scheduler: Scheduler = cluster.scheduler
        self.tracer = getattr(cluster, "tracer", None)
        server_ids = cluster.node_ids()
        # Per-slot strided state: position s in every array belongs to
        # client indices[s]. Same construction order as N individual
        # clients so RPC node registration order is preserved.
        self.rngs = list(rngs)
        self.rpcs: list[RPCClient] = []
        self.connectors: list[SimChainConnector] = []
        self.stats_slots: list[StatsCollector] = []
        self.outstanding: list[dict[str, float]] = []
        self.backlogs: list[deque[Transaction]] = []
        self.poll_heights: list[int] = []
        self.inflight: list[int] = []
        for index in self.indices:
            rpc = RPCClient(f"client-{index}", cluster.scheduler, cluster.network)
            self.rpcs.append(rpc)
            self.connectors.append(
                SimChainConnector(cluster, rpc, server_ids[index % len(server_ids)])
            )
            self.stats_slots.append(
                StatsCollector(
                    cluster.platform,
                    workload.name,
                    reservoir=config.stats_reservoir,
                    reservoir_seed=index,
                )
            )
            self.outstanding.append({})
            self.backlogs.append(deque())
            self.poll_heights.append(0)
            self.inflight.append(0)
        # Per-slot failover backoff (mirrors _BenchClientBase).
        self.backoffs = [config.retry_interval_s] * len(self.indices)
        self._running = False
        self._deadline = 0.0

    def _poll_timeout_s(self) -> float | None:
        if self.config.failover:
            return SimChainConnector.SUBMIT_TIMEOUT_S
        return None

    def _next_backoff(self, slot: int) -> float:
        delay = min(self.backoffs[slot], self.config.max_backoff_s)
        self.backoffs[slot] = min(self.backoffs[slot] * 2.0, self.config.max_backoff_s)
        return delay

    # Compatibility with the single-client surface Driver exposes.
    @property
    def stats(self) -> StatsCollector:
        return merge_collectors(self.stats_slots)

    def stat_collectors(self) -> list[StatsCollector]:
        return self.stats_slots

    def queue_length(self, slot: int) -> int:
        return len(self.outstanding[slot]) + len(self.backlogs[slot])

    def _next_tx(self, slot: int) -> Transaction:
        return self.workload.next_transaction(
            f"client-{self.indices[slot]}", self.rngs[slot], self.scheduler.now
        )

    def start(self, duration_s: float) -> None:
        now = self.scheduler.now
        self._running = True
        self._deadline = now + duration_s
        for stats in self.stats_slots:
            stats.begin(now)
        # Per-slot startup actions run in slot order before the shared
        # ticks are armed — the same interleaving (submit, subscribe
        # per client, in client order) the individual clients produce.
        for slot in range(len(self.indices)):
            if self.config.blocking:
                self._submit_next_blocking(slot)
            if self.config.subscribe:
                self.connectors[slot].subscribe_new_blocks(
                    0, lambda block, s=slot: self._process_block_summary(s, block)
                )
        if not self.config.blocking:
            self.scheduler.schedule(0.0, self._tick_submit)
        if not self.config.subscribe:
            self.scheduler.schedule(self.config.poll_interval_s, self._tick_poll)
        self.scheduler.schedule(
            self.config.queue_sample_interval_s, self._tick_sample
        )
        self.scheduler.schedule(duration_s, self._stop)

    def _stop(self) -> None:
        self._running = False
        now = self.scheduler.now
        for stats in self.stats_slots:
            stats.finish(now)

    # ------------------------------------------------------------------
    # Submission paths (one tick sweeps every slot)
    # ------------------------------------------------------------------
    def _tick_submit(self) -> None:
        if not self._running:
            return
        threads = self.config.threads_per_client
        for slot in range(len(self.indices)):
            self.backlogs[slot].append(self._next_tx(slot))
            if self.inflight[slot] < threads:
                self._submit(slot, self.backlogs[slot].popleft())
        self.scheduler.schedule(
            1.0 / self.config.request_rate_tx_s, self._tick_submit
        )

    def _submit_next_blocking(self, slot: int) -> None:
        if not self._running:
            return
        self._submit(slot, self._next_tx(slot))

    def _submit(self, slot: int, tx: Transaction) -> None:
        submit_time = self.scheduler.now
        self.stats_slots[slot].record_submission()
        self.inflight[slot] += 1

        def on_reply(reply: dict) -> None:
            self.inflight[slot] -= 1
            failover = self.config.failover
            if reply.get("accepted") or (failover and reply.get("dup")):
                self.backoffs[slot] = self.config.retry_interval_s
                self.outstanding[slot][tx.tx_id] = submit_time
                if self.tracer is not None:
                    self.tracer.record_submit(tx.tx_id, submit_time)
                if (
                    not self.config.blocking
                    and self._running
                    and self.backlogs[slot]
                    and self.inflight[slot] < self.config.threads_per_client
                ):
                    self._submit(slot, self.backlogs[slot].popleft())
            elif failover and reply.get("timeout"):
                self.stats_slots[slot].record_rejection()
                self.scheduler.schedule(
                    self._next_backoff(slot), self._failover_resubmit, slot, tx
                )
            else:
                self.stats_slots[slot].record_rejection()
                self.backlogs[slot].append(tx)
                self.scheduler.schedule(
                    self.config.retry_interval_s, self._retry_backlog, slot
                )

        self.connectors[slot].send_transaction(tx, on_reply)

    def _failover_resubmit(self, slot: int, tx: Transaction) -> None:
        self.connectors[slot].fail_over()
        self._submit(slot, tx)

    def _retry_backlog(self, slot: int) -> None:
        if (
            self._running
            and self.backlogs[slot]
            and self.inflight[slot] < self.config.threads_per_client
        ):
            self._submit(slot, self.backlogs[slot].popleft())

    # ------------------------------------------------------------------
    # Confirmation paths
    # ------------------------------------------------------------------
    def _tick_poll(self) -> None:
        if self.scheduler.now > self._deadline + 10 * self.config.poll_interval_s:
            return
        for slot in range(len(self.indices)):
            self.connectors[slot].get_latest_block(
                self.poll_heights[slot],
                lambda reply, s=slot: self._on_poll_reply(s, reply),
                timeout_s=self._poll_timeout_s(),
            )
        self.scheduler.schedule(self.config.poll_interval_s, self._tick_poll)

    def _on_poll_reply(self, slot: int, reply: dict) -> None:
        if reply.get("timeout"):
            self.connectors[slot].fail_over()
            return
        for block in reply.get("blocks", []):
            self._process_block_summary(slot, block)

    def _process_block_summary(self, slot: int, block: dict) -> None:
        self.poll_heights[slot] = max(self.poll_heights[slot], block["height"])
        outstanding = self.outstanding[slot]
        for tx_id in block["tx_ids"]:
            submitted_at = outstanding.pop(tx_id, None)
            if submitted_at is not None:
                confirmed_at = self.scheduler.now
                if submitted_at <= self._deadline:
                    self.stats_slots[slot].record_confirmation(
                        submitted_at, confirmed_at
                    )
                    if self.tracer is not None:
                        self.tracer.record_notify(tx_id, confirmed_at)
                if self.config.blocking and self._running:
                    self._submit_next_blocking(slot)

    # ------------------------------------------------------------------
    # Queue sampling
    # ------------------------------------------------------------------
    def _tick_sample(self) -> None:
        if not self._running:
            return
        now = self.scheduler.now
        for slot in range(len(self.indices)):
            depths = (
                self.tracer.queue_depths()
                if slot == 0 and self.tracer is not None
                else None
            )
            self.stats_slots[slot].record_queue_length(
                now, self.queue_length(slot), stage_depths=depths
            )
        self.scheduler.schedule(
            self.config.queue_sample_interval_s, self._tick_sample
        )


def _client_class(mode: str) -> type[_BenchClientBase]:
    if mode == "coroutine":
        return BenchClient
    if mode == "callback":
        return CallbackBenchClient
    raise BenchmarkError(
        f"unknown client_mode {mode!r}; expected one of {CLIENT_MODES}"
    )


class Driver:
    """The paper's Driver: spawns clients, runs, aggregates statistics."""

    def __init__(self, cluster, workload: Workload, config: DriverConfig) -> None:
        self.cluster = cluster
        self.workload = workload
        self.config = config
        self.clients: list[_BenchClientBase] = []

    def prepare(self) -> None:
        """Deploy contracts and preload state."""
        for contract in self.workload.required_contracts:
            for node in self.cluster.nodes:
                node.deploy(contract)
        self.workload.preload(self.cluster)
        indices = list(range(self.config.n_clients))
        rngs = [self.cluster.rng.stream(f"client-{i}") for i in indices]
        if self.config.client_mode == "batch":
            # One vectorized client drives every slot.
            self.clients.append(
                BatchClient(indices, self.cluster, self.workload, self.config, rngs)
            )
            return
        client_cls = _client_class(self.config.client_mode)
        for index, rng in zip(indices, rngs):
            self.clients.append(
                client_cls(index, self.cluster, self.workload, self.config, rng)
            )

    def _collectors(self) -> list[StatsCollector]:
        return [s for client in self.clients for s in client.stat_collectors()]

    def run(self, extra_drain_s: float = 5.0) -> StatsCollector:
        """Run the configured duration; returns merged statistics."""
        if not self.clients:
            self.prepare()
        for client in self.clients:
            client.start(self.config.duration_s)
        self.cluster.run_until(
            self.cluster.scheduler.now + self.config.duration_s + extra_drain_s
        )
        return merge_collectors(self._collectors())

    def queue_series(self) -> list[tuple[float, int]]:
        """Summed client queue lengths over time (Figures 6 and 18)."""
        return merge_collectors(self._collectors()).queue_samples


class OpenLoopDriver:
    """Open-loop load harness: an aggregate arrival process, no clients.

    Closed-loop clients (:class:`BenchClient` and friends) are coupled
    to the system under test — a saturated server back-pressures them
    through their in-flight caps, so offered load sags exactly when the
    measurement is most interesting. The open-loop harness severs that
    coupling: an :class:`ArrivalGenerator` emits transactions at the
    configured aggregate rate regardless of how the backend responds,
    which is both the BlockMeter recipe for "make sure the harness is
    not the bottleneck" and the only shape that scales to 100k–1M
    simulated senders (state is one dict entry per outstanding tx, not
    one coroutine per client).

    Mechanics: arrivals are pre-scheduled a chunk at a time through the
    scheduler's ``push_many`` bulk insert; each arrival draws a sender
    account from the arrival spec (uniform or Zipf-skewed), builds a
    transaction, and fires it at the sender's home server (``account %
    n_servers``) with no in-flight cap. Rejected submissions retry
    after the configured backoff. One poller per server matches
    confirmed blocks against that server's outstanding set.
    """

    #: Arrivals pre-scheduled per push_many batch. Bounds generator
    #: look-ahead memory while amortizing heap maintenance.
    ARRIVAL_CHUNK = 4096

    def __init__(self, cluster, workload: Workload, config: DriverConfig) -> None:
        if config.arrival is None:
            raise BenchmarkError("OpenLoopDriver requires DriverConfig.arrival")
        self.cluster = cluster
        self.workload = workload
        self.config = config
        self.arrival: ArrivalSpec = config.arrival
        self.scheduler: Scheduler = cluster.scheduler
        self.tracer = getattr(cluster, "tracer", None)
        self.generator = ArrivalGenerator(
            self.arrival, cluster.rng.stream("arrivals")
        )
        self.txgen_rng = cluster.rng.stream("openloop-txgen")
        self.server_ids = cluster.node_ids()
        self.rpcs = [
            RPCClient(f"openloop-{sid}", cluster.scheduler, cluster.network)
            for sid in self.server_ids
        ]
        self.connectors = [
            SimChainConnector(cluster, rpc, sid)
            for rpc, sid in zip(self.rpcs, self.server_ids)
        ]
        self.stats = StatsCollector(
            cluster.platform,
            workload.name,
            reservoir=config.stats_reservoir,
            reservoir_seed=cluster.rng.master_seed,
        )
        # Per-server outstanding sets: a tx is only ever confirmed by
        # the poller of the server it was submitted to.
        self.outstanding: list[dict[str, float]] = [{} for _ in self.server_ids]
        self.poll_heights = [0] * len(self.server_ids)
        # Per-endpoint failover backoff (mirrors _BenchClientBase).
        self.backoffs = [config.retry_interval_s] * len(self.server_ids)
        self._retries_pending = 0
        self._running = False
        self._deadline = 0.0
        self._arrival_clock = 0.0

    def prepare(self) -> None:
        """Deploy contracts and preload state."""
        for contract in self.workload.required_contracts:
            for node in self.cluster.nodes:
                node.deploy(contract)
        self.workload.preload(self.cluster)

    def start(self, duration_s: float) -> None:
        now = self.scheduler.now
        self._running = True
        self._deadline = now + duration_s
        self._arrival_clock = now
        self.stats.begin(now)
        self._schedule_chunk()
        self.scheduler.schedule(self.config.poll_interval_s, self._tick_poll)
        self.scheduler.schedule(
            self.config.queue_sample_interval_s, self._tick_sample
        )
        self.scheduler.schedule(duration_s, self._stop)

    def run(self, extra_drain_s: float = 5.0) -> StatsCollector:
        """Run the configured duration; returns the collector."""
        self.start(self.config.duration_s)
        self.cluster.run_until(
            self.cluster.scheduler.now + self.config.duration_s + extra_drain_s
        )
        return self.stats

    def queue_series(self) -> list[tuple[float, int]]:
        return self.stats.queue_samples

    def queue_length(self) -> int:
        return sum(len(o) for o in self.outstanding) + self._retries_pending

    def _stop(self) -> None:
        self._running = False
        self.stats.finish(self.scheduler.now)

    # ------------------------------------------------------------------
    # Arrival pump
    # ------------------------------------------------------------------
    def _schedule_chunk(self) -> None:
        """Pre-schedule the next chunk of arrivals in one bulk insert."""
        now = self.scheduler.now
        clock = self._arrival_clock
        items: list[tuple[float, object, tuple]] = []
        exhausted = False
        while len(items) < self.ARRIVAL_CHUNK:
            gap, sender = next(self.generator)
            clock += gap
            if clock > self._deadline:
                exhausted = True
                break
            items.append((clock - now, self._arrive, (sender,)))
        self._arrival_clock = clock
        if items:
            self.scheduler.push_many(items)
            if not exhausted:
                # Continue right after the last scheduled arrival (same
                # instant, later sequence number).
                self.scheduler.schedule_at(clock, self._schedule_chunk)

    def _arrive(self, sender: int) -> None:
        tx = self.workload.next_transaction(
            f"account-{sender}", self.txgen_rng, self.scheduler.now
        )
        self._submit(sender % len(self.server_ids), tx)

    def _submit(self, server_index: int, tx: Transaction) -> None:
        submit_time = self.scheduler.now
        self.stats.record_submission()

        def on_reply(reply: dict) -> None:
            failover = self.config.failover
            if reply.get("accepted") or (failover and reply.get("dup")):
                self.backoffs[server_index] = self.config.retry_interval_s
                self.outstanding[server_index][tx.tx_id] = submit_time
                if self.tracer is not None:
                    self.tracer.record_submit(tx.tx_id, submit_time)
            elif failover and reply.get("timeout"):
                self.stats.record_rejection()
                if self._running:
                    self._retries_pending += 1
                    delay = min(
                        self.backoffs[server_index], self.config.max_backoff_s
                    )
                    self.backoffs[server_index] = min(
                        self.backoffs[server_index] * 2.0, self.config.max_backoff_s
                    )
                    self.scheduler.schedule(
                        delay, self._failover_retry, server_index, tx
                    )
            else:
                self.stats.record_rejection()
                if self._running:
                    self._retries_pending += 1
                    self.scheduler.schedule(
                        self.config.retry_interval_s, self._retry, server_index, tx
                    )

        self.connectors[server_index].send_transaction(tx, on_reply)

    def _retry(self, server_index: int, tx: Transaction) -> None:
        self._retries_pending -= 1
        if self._running:
            self._submit(server_index, tx)

    def _failover_retry(self, server_index: int, tx: Transaction) -> None:
        self._retries_pending -= 1
        if self._running:
            self.connectors[server_index].fail_over()
            self._submit(server_index, tx)

    # ------------------------------------------------------------------
    # Confirmation polling (one round per server per tick)
    # ------------------------------------------------------------------
    def _tick_poll(self) -> None:
        if self.scheduler.now > self._deadline + 10 * self.config.poll_interval_s:
            return
        for server_index in range(len(self.server_ids)):
            self.connectors[server_index].get_latest_block(
                self.poll_heights[server_index],
                lambda reply, s=server_index: self._on_poll_reply(s, reply),
                timeout_s=(
                    SimChainConnector.SUBMIT_TIMEOUT_S
                    if self.config.failover
                    else None
                ),
            )
        self.scheduler.schedule(self.config.poll_interval_s, self._tick_poll)

    def _on_poll_reply(self, server_index: int, reply: dict) -> None:
        if reply.get("timeout"):
            self.connectors[server_index].fail_over()
            return
        outstanding = self.outstanding[server_index]
        for block in reply.get("blocks", []):
            self.poll_heights[server_index] = max(
                self.poll_heights[server_index], block["height"]
            )
            for tx_id in block["tx_ids"]:
                submitted_at = outstanding.pop(tx_id, None)
                if submitted_at is not None and submitted_at <= self._deadline:
                    self.stats.record_confirmation(
                        submitted_at, self.scheduler.now
                    )
                    if self.tracer is not None:
                        self.tracer.record_notify(tx_id, self.scheduler.now)

    def _tick_sample(self) -> None:
        if not self._running:
            return
        depths = (
            self.tracer.queue_depths() if self.tracer is not None else None
        )
        self.stats.record_queue_length(
            self.scheduler.now, self.queue_length(), stage_depths=depths
        )
        self.scheduler.schedule(
            self.config.queue_sample_interval_s, self._tick_sample
        )
