"""Fault-injection schedules (Section 3.3's failure modes, plus lies).

"In Blockbench we simulate three failure modes: crash failure in which
a node simply stops, network delay in which we inject arbitrary delays
into messages, and random response in which we corrupt the messages
exchanged among the nodes."

Beyond the paper's benign modes, :class:`ByzantineFault` makes a node
*adversarial*: for a window it equivocates (conflicting proposals to
disjoint replica subsets), advertises garbage digests, goes silent, or
withholds votes. Behaviors are strategies in :data:`BYZANTINE_BEHAVIORS`
implemented entirely against the adversary hook API on
:class:`~repro.consensus.base.ConsensusProtocol` (``proposal_kinds``,
``vote_kinds``, ``forge_proposal``) and the per-sender send filters on
:class:`~repro.sim.network.Network` — no protocol-specific fault code
lives here, so any protocol that declares its kinds is attackable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from ..chain.block import Block
from ..errors import BenchmarkError

if TYPE_CHECKING:  # pragma: no cover
    from ..platforms.base import PlatformNode
    from ..platforms.cluster import Cluster
    from ..sim.network import Network, SendFilter


#: Valid CrashFault.recovery_mode values (mirrors the platform layer's
#: RECOVERY_MODES; duplicated to avoid importing platforms here).
CRASH_RECOVERY_MODES = ("warm", "cold")


@dataclass
class CrashFault:
    """Kill nodes at ``at_time``; optionally restart them (Figure 9,
    extended to crash-*recovery*).

    Victims are ``nodes`` when given, else the first (or last) ``count``
    nodes per ``include_leader`` — the same convention as
    :class:`ByzantineFault`. When ``recover_at`` is set the victims
    restart at that time: ``warm`` recovery keeps their executed state
    and block-syncs only the missed suffix; ``cold`` wipes the state
    store and replays the whole chain before syncing.
    """

    at_time: float
    count: int | None = None
    include_leader: bool = True
    nodes: list[str] | None = None
    recover_at: float | None = None
    recovery_mode: str = "warm"


@dataclass
class DelayFault:
    """Inject ``extra_s`` message delay during [at_time, until_time)."""

    at_time: float
    until_time: float
    extra_s: float
    nodes: list[str] | None = None


@dataclass
class CorruptionFault:
    """Corrupt messages at ``rate`` during [at_time, until_time)."""

    at_time: float
    until_time: float
    rate: float


@dataclass
class PartitionFault:
    """Split the network in half during [at_time, until_time) — the
    double-spending attack window of Section 4.1.3."""

    at_time: float
    until_time: float


@dataclass
class ByzantineFault:
    """Make nodes adversarial during [at_time, until_time).

    ``behavior`` names a strategy in :data:`BYZANTINE_BEHAVIORS`.
    Victims are ``nodes`` when given, else the first ``count`` nodes of
    the cluster (the head of the list holds the PBFT view-0 leader and
    the first PoA/Tendermint proposer slots — the hardest case, matching
    :class:`CrashFault`'s convention). ``delay_s`` parameterizes the
    ``delay_votes`` behavior: how long votes are withheld.
    """

    at_time: float
    until_time: float
    behavior: str = "equivocate"
    count: int | None = None
    nodes: list[str] | None = None
    delay_s: float = 1.5


# ---------------------------------------------------------------------------
# Behavior registry
# ---------------------------------------------------------------------------
#: ``factory(node, network, fault, shared) -> SendFilter``. ``shared``
#: is one dict per armed fault, common to all its victims — equivocating
#: colluders share their forgery maps through it, which is what lets two
#: byzantine replicas vote consistently toward *both* sides of a fork.
BehaviorFactory = Callable[
    ["PlatformNode", "Network", ByzantineFault, dict], "SendFilter"
]

BYZANTINE_BEHAVIORS: dict[str, BehaviorFactory] = {}


def register_behavior(name: str) -> Callable[[BehaviorFactory], BehaviorFactory]:
    """Class/function decorator adding a strategy to the registry."""

    def decorator(factory: BehaviorFactory) -> BehaviorFactory:
        BYZANTINE_BEHAVIORS[name] = factory
        return factory

    return decorator


def _passthrough(payload: Any, size_bytes: int) -> tuple[Any, int, float]:
    return (payload, size_bytes, 0.0)


@register_behavior("equivocate")
def _equivocate(node, network, fault, shared):
    """Send conflicting proposals to disjoint replica subsets.

    Recipients at an even global index get the original proposal,
    recipients at an odd index a forged double (same height, parent,
    and transactions; different hash). Votes are rewritten to match the
    recipient's variant, so every victim of the fault campaigns for
    both sides at once. Parity splits the *honest* nodes across the two
    variants even though victims come from the head of the node list —
    the configuration that actually forks a quorum-based protocol once
    enough replicas collude.
    """
    protocol = node.protocol
    forged: dict[bytes, Block] = shared.setdefault("forged", {})
    original: dict[bytes, bytes] = shared.setdefault("original", {})
    index = {nid: i for i, nid in enumerate(network.node_ids())}

    def fn(recipient, kind, payload, size_bytes):
        odd = index.get(recipient, 0) % 2 == 1
        if kind in protocol.proposal_kinds and isinstance(payload, Block):
            if not odd:
                return _passthrough(payload, size_bytes)
            double = forged.get(payload.hash)
            if double is None:
                double = protocol.forge_proposal(kind, payload, "equivocate:1")
                if double is None:
                    return _passthrough(payload, size_bytes)
                forged[payload.hash] = double
                original[double.hash] = payload.hash
            return (double, double.size_bytes(), 0.0)
        if kind in protocol.vote_kinds and isinstance(payload, dict):
            digest = payload.get("digest")
            if isinstance(digest, bytes):
                if odd and digest in forged:
                    return ({**payload, "digest": forged[digest].hash},
                            size_bytes, 0.0)
                if not odd and digest in original:
                    return ({**payload, "digest": original[digest]},
                            size_bytes, 0.0)
        return _passthrough(payload, size_bytes)

    return fn


@register_behavior("garbage_digest")
def _garbage_digest(node, network, fault, shared):
    """Advertise digests that fail verification.

    Proposals are replaced by a double carrying a ``garbage`` marker —
    honest replicas detect the content/digest mismatch via
    ``proposal_intact`` and reject it. Vote digests are rewritten to a
    deterministic nonsense hash, so they never match any real proposal
    and count toward no quorum.
    """
    protocol = node.protocol
    forged: dict[bytes, Block] = shared.setdefault("forged", {})

    def fn(recipient, kind, payload, size_bytes):
        if kind in protocol.proposal_kinds and isinstance(payload, Block):
            double = forged.get(payload.hash)
            if double is None:
                double = protocol.forge_proposal(kind, payload, "garbage:1")
                if double is None:
                    return _passthrough(payload, size_bytes)
                forged[payload.hash] = double
            return (double, double.size_bytes(), 0.0)
        if kind in protocol.vote_kinds and isinstance(payload, dict):
            digest = payload.get("digest")
            if isinstance(digest, bytes):
                trash = hashlib.sha256(b"garbage-digest:" + digest).digest()
                return ({**payload, "digest": trash}, size_bytes, 0.0)
        return _passthrough(payload, size_bytes)

    return fn


@register_behavior("silent")
def _silent(node, network, fault, shared):
    """Drop every consensus send while still receiving — a node that
    looks alive to timeouts but contributes nothing to quorums."""
    kinds = frozenset(node.protocol.message_kinds)

    def fn(recipient, kind, payload, size_bytes):
        if kind in kinds:
            return None
        return _passthrough(payload, size_bytes)

    return fn


@register_behavior("delay_votes")
def _delay_votes(node, network, fault, shared):
    """Withhold prepare/commit/prevote/precommit messages for
    ``fault.delay_s`` — votes arrive, but only near the timeout."""
    protocol = node.protocol
    kinds = frozenset(protocol.vote_kinds)
    extra = fault.delay_s

    def fn(recipient, kind, payload, size_bytes):
        if kind in kinds:
            return (payload, size_bytes, extra)
        return _passthrough(payload, size_bytes)

    return fn


@dataclass
class FaultSchedule:
    """A set of faults armed against one cluster."""

    crashes: list[CrashFault] = field(default_factory=list)
    delays: list[DelayFault] = field(default_factory=list)
    corruptions: list[CorruptionFault] = field(default_factory=list)
    partitions: list[PartitionFault] = field(default_factory=list)
    byzantines: list[ByzantineFault] = field(default_factory=list)
    crashed_node_ids: list[str] = field(default_factory=list)
    byzantine_node_ids: list[str] = field(default_factory=list)

    def arm(self, cluster: "Cluster") -> None:
        """Schedule every fault on the cluster's event loop.

        Each windowed fault opens its own network window at ``at_time``
        and closes exactly that window at ``until_time``, so
        overlapping or nested schedules compose instead of a later
        fault's reset clobbering an earlier, still-active one.
        """
        scheduler = cluster.scheduler
        for crash in self.crashes:
            if crash.recovery_mode not in CRASH_RECOVERY_MODES:
                raise BenchmarkError(
                    f"unknown recovery_mode {crash.recovery_mode!r} "
                    f"(known: {', '.join(CRASH_RECOVERY_MODES)})"
                )
            if crash.recover_at is not None and crash.recover_at <= crash.at_time:
                raise BenchmarkError(
                    f"recover_at ({crash.recover_at}) must be after "
                    f"at_time ({crash.at_time})"
                )
            scheduler.schedule_at(
                crash.at_time, self._do_crash, cluster, crash
            )
            if crash.recover_at is not None:
                scheduler.schedule_at(
                    crash.recover_at, self._do_recover, cluster, crash
                )
        for delay in self.delays:
            scheduler.schedule_at(
                delay.at_time, self._open_delay, cluster, delay
            )
        for corruption in self.corruptions:
            scheduler.schedule_at(
                corruption.at_time, self._open_corruption, cluster, corruption
            )
        for partition in self.partitions:
            scheduler.schedule_at(
                partition.at_time, lambda c=cluster: c.partition_halves()
            )
            scheduler.schedule_at(partition.until_time, cluster.network.heal)
        for byzantine in self.byzantines:
            if byzantine.behavior not in BYZANTINE_BEHAVIORS:
                known = ", ".join(sorted(BYZANTINE_BEHAVIORS))
                raise BenchmarkError(
                    f"unknown byzantine behavior {byzantine.behavior!r} "
                    f"(known: {known})"
                )
            scheduler.schedule_at(
                byzantine.at_time, self._start_byzantine, cluster, byzantine
            )

    def _crash_victims(self, cluster: "Cluster", crash: CrashFault) -> list[str]:
        """The node ids one crash fault targets (pure function of the
        spec and the cluster's node order, so crash and recover agree)."""
        if crash.nodes is not None:
            wanted = set(crash.nodes)
            return [n.node_id for n in cluster.nodes if n.node_id in wanted]
        count = crash.count if crash.count is not None else 1
        chosen = (
            cluster.nodes[:count] if crash.include_leader
            else cluster.nodes[-count:]
        )
        return [n.node_id for n in chosen]

    def _do_crash(self, cluster: "Cluster", crash: CrashFault) -> None:
        victims = cluster.crash_named(self._crash_victims(cluster, crash))
        self.crashed_node_ids.extend(
            v for v in victims if v not in self.crashed_node_ids
        )

    def _do_recover(self, cluster: "Cluster", crash: CrashFault) -> None:
        cluster.recover_nodes(
            self._crash_victims(cluster, crash), crash.recovery_mode
        )

    def _open_delay(self, cluster: "Cluster", delay: DelayFault) -> None:
        window = cluster.network.add_delay(delay.extra_s, delay.nodes)
        cluster.scheduler.schedule_at(
            delay.until_time, cluster.network.remove_delay, window
        )

    def _open_corruption(
        self, cluster: "Cluster", corruption: CorruptionFault
    ) -> None:
        window = cluster.network.add_corruption(corruption.rate)
        cluster.scheduler.schedule_at(
            corruption.until_time, cluster.network.remove_corruption, window
        )

    def _start_byzantine(
        self, cluster: "Cluster", fault: ByzantineFault
    ) -> None:
        factory = BYZANTINE_BEHAVIORS[fault.behavior]
        if fault.nodes is not None:
            targets = [n for n in cluster.nodes if n.node_id in set(fault.nodes)]
        else:
            count = fault.count if fault.count is not None else 1
            targets = cluster.nodes[:count]
        shared: dict[str, Any] = {}
        armed: list[str] = []
        for node in targets:
            if node.crashed or node.protocol is None:
                continue
            cluster.network.set_send_filter(
                node.node_id, factory(node, cluster.network, fault, shared)
            )
            armed.append(node.node_id)
        self.byzantine_node_ids.extend(
            n for n in armed if n not in self.byzantine_node_ids
        )
        label = f"{fault.behavior} x{len(armed)}"
        auditor = getattr(cluster, "auditor", None)
        if auditor is not None:
            auditor.fault_started(label)
        cluster.scheduler.schedule_at(
            fault.until_time, self._stop_byzantine, cluster, armed, label
        )

    def _stop_byzantine(
        self, cluster: "Cluster", armed: list[str], label: str
    ) -> None:
        for node_id in armed:
            cluster.network.clear_send_filter(node_id)
        auditor = getattr(cluster, "auditor", None)
        if auditor is not None:
            auditor.fault_ended(label)
