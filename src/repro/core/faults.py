"""Fault-injection schedules (Section 3.3's three failure modes).

"In Blockbench we simulate three failure modes: crash failure in which
a node simply stops, network delay in which we inject arbitrary delays
into messages, and random response in which we corrupt the messages
exchanged among the nodes."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..platforms.cluster import Cluster


@dataclass
class CrashFault:
    """Kill ``count`` nodes at ``at_time`` (Figure 9)."""

    at_time: float
    count: int
    include_leader: bool = True


@dataclass
class DelayFault:
    """Inject ``extra_s`` message delay during [at_time, until_time)."""

    at_time: float
    until_time: float
    extra_s: float
    nodes: list[str] | None = None


@dataclass
class CorruptionFault:
    """Corrupt messages at ``rate`` during [at_time, until_time)."""

    at_time: float
    until_time: float
    rate: float


@dataclass
class PartitionFault:
    """Split the network in half during [at_time, until_time) — the
    double-spending attack window of Section 4.1.3."""

    at_time: float
    until_time: float


@dataclass
class FaultSchedule:
    """A set of faults armed against one cluster."""

    crashes: list[CrashFault] = field(default_factory=list)
    delays: list[DelayFault] = field(default_factory=list)
    corruptions: list[CorruptionFault] = field(default_factory=list)
    partitions: list[PartitionFault] = field(default_factory=list)
    crashed_node_ids: list[str] = field(default_factory=list)

    def arm(self, cluster: "Cluster") -> None:
        """Schedule every fault on the cluster's event loop."""
        scheduler = cluster.scheduler
        for crash in self.crashes:
            scheduler.schedule_at(
                crash.at_time, self._do_crash, cluster, crash
            )
        for delay in self.delays:
            scheduler.schedule_at(
                delay.at_time,
                cluster.network.inject_delay,
                delay.extra_s,
                delay.nodes,
            )
            scheduler.schedule_at(
                delay.until_time, cluster.network.inject_delay, 0.0, None
            )
        for corruption in self.corruptions:
            scheduler.schedule_at(
                corruption.at_time,
                cluster.network.inject_corruption,
                corruption.rate,
            )
            scheduler.schedule_at(
                corruption.until_time, cluster.network.inject_corruption, 0.0
            )
        for partition in self.partitions:
            scheduler.schedule_at(
                partition.at_time, lambda c=cluster: c.partition_halves()
            )
            scheduler.schedule_at(partition.until_time, cluster.network.heal)

    def _do_crash(self, cluster: "Cluster", crash: CrashFault) -> None:
        self.crashed_node_ids.extend(
            cluster.crash_nodes(crash.count, crash.include_leader)
        )
