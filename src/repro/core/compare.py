"""Suite comparison: diff two result directories, gate on regressions.

``blockbench suite --compare BASE CURRENT`` is the CI primitive this
module implements: load every persisted run from two
:class:`~repro.core.suitestore.SuiteStore` directories, align them by
content-addressed spec hash (so grid order, parallelism, and partial
overlap don't matter), and compute per-point throughput and latency
deltas. A point *regresses* when current throughput falls more than
``threshold`` below base, or current average latency rises more than
``threshold`` above base — the simulator is deterministic per seed, so
any delta at all is a real behavioural change, and the threshold only
sets how much of one a pipeline tolerates. A point whose *base*
measured zero (nothing confirmed — e.g. a crash-fault grid point)
cannot regress: current is never below zero, and work appearing where
there was none is the improvement direction. Such appeared-from-zero
points are called out in the human output and carry ``null`` ratios
in the JSON so they are visible, just not gating.

The result renders both ways: :meth:`SuiteComparison.format` is the
human table, :meth:`SuiteComparison.to_json` the machine form a CI job
archives; the CLI exits 1 when ``regressions()`` is non-empty.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..errors import BenchmarkError
from .report import format_table
from .suitestore import SuiteStore

__all__ = ["RunDelta", "SuiteComparison", "compare_suites"]

COMPARE_SCHEMA = "blockbench-suite-compare/1"

#: Default regression tolerance: 5% on throughput and latency.
DEFAULT_THRESHOLD = 0.05


def _finite(ratio: float) -> float | None:
    """A ratio for JSON output: None replaces the non-encodable inf."""
    return ratio if math.isfinite(ratio) else None


def _point_label(spec: dict[str, Any]) -> str:
    """Human description of one grid point from its serialized spec."""
    text = (
        f"{spec['platform']}/{spec['workload']} "
        f"s={spec['n_servers']} c={spec['n_clients']} "
        f"r={spec['request_rate_tx_s']:g} seed={spec['seed']}"
    )
    if spec.get("label"):
        text += f" [{spec['label']}]"
    return text


@dataclass
class RunDelta:
    """One grid point present in both result sets."""

    spec_hash: str
    point: str
    base_throughput: float
    current_throughput: float
    base_latency_avg: float
    current_latency_avg: float
    #: Human-readable reasons this point regressed (empty = clean).
    failures: list[str]
    #: Safety-auditor violation counts (0 for runs persisted before the
    #: auditor existed).
    base_safety: int = 0
    current_safety: int = 0
    #: Per-stage mean-latency movement (current - base, seconds) from
    #: the lifecycle breakdowns, when both sides carry one.
    stage_deltas: dict[str, float] | None = None
    #: The stage with the largest positive movement — where a latency
    #: regression actually happened. None when no stage moved up or
    #: either side ran without tracing.
    regressed_stage: str | None = None

    @property
    def regressed(self) -> bool:
        return bool(self.failures)

    @property
    def throughput_ratio(self) -> float:
        """current/base throughput (1.0 when both sides are zero,
        infinite when work appeared from a zero base)."""
        if self.base_throughput == 0:
            return 1.0 if self.current_throughput == 0 else float("inf")
        return self.current_throughput / self.base_throughput

    @property
    def latency_ratio(self) -> float:
        """current/base average latency (1.0 when both sides are zero,
        infinite when latency appeared from a zero base)."""
        if self.base_latency_avg == 0:
            return 1.0 if self.current_latency_avg == 0 else float("inf")
        return self.current_latency_avg / self.base_latency_avg


def _delta(spec_hash: str, base: dict, current: dict, threshold: float) -> RunDelta:
    base_summary, cur_summary = base["summary"], current["summary"]
    delta = RunDelta(
        spec_hash=spec_hash,
        point=_point_label(base["spec"]),
        base_throughput=base_summary["throughput_tx_s"],
        current_throughput=cur_summary["throughput_tx_s"],
        base_latency_avg=base_summary["latency_avg_s"],
        current_latency_avg=cur_summary["latency_avg_s"],
        failures=[],
        # .get: directories written before the safety auditor existed.
        base_safety=base_summary.get("safety_violations", 0),
        current_safety=cur_summary.get("safety_violations", 0),
    )
    # Stage attribution: when both sides were traced, pin the movement
    # to lifecycle stages so a regression names *where* it happened,
    # not just that the top line moved.
    base_bd = base_summary.get("stage_breakdown")
    cur_bd = cur_summary.get("stage_breakdown")
    if base_bd and cur_bd:
        base_avgs = {s["stage"]: s["avg_s"] for s in base_bd.get("stages", [])}
        cur_avgs = {s["stage"]: s["avg_s"] for s in cur_bd.get("stages", [])}
        shared_stages = [name for name in base_avgs if name in cur_avgs]
        if shared_stages:
            delta.stage_deltas = {
                name: cur_avgs[name] - base_avgs[name]
                for name in shared_stages
            }
            worst = max(shared_stages, key=lambda n: delta.stage_deltas[n])
            if delta.stage_deltas[worst] > 0:
                delta.regressed_stage = worst
    if delta.current_safety > delta.base_safety:
        # Safety is absolute — no tolerance applies. New violations on
        # a previously safe (or safer) point always gate.
        delta.failures.append(
            f"safety violations rose from {delta.base_safety} to "
            f"{delta.current_safety} (no tolerance on safety)"
        )
    if delta.base_throughput > 0:
        drop = 1.0 - delta.current_throughput / delta.base_throughput
        if drop > threshold:
            delta.failures.append(
                f"throughput {delta.current_throughput:.1f} tx/s is "
                f"{drop:.1%} below base {delta.base_throughput:.1f} tx/s "
                f"(tolerance {threshold:.1%})"
            )
    if delta.base_latency_avg > 0:
        rise = delta.current_latency_avg / delta.base_latency_avg - 1.0
        if rise > threshold:
            delta.failures.append(
                f"latency avg {delta.current_latency_avg:.3f}s is "
                f"{rise:.1%} above base {delta.base_latency_avg:.3f}s "
                f"(tolerance {threshold:.1%})"
            )
    if delta.failures and delta.regressed_stage is not None:
        moved = delta.stage_deltas[delta.regressed_stage]
        delta.failures.append(
            f"stage attribution: '{delta.regressed_stage}' moved "
            f"+{moved:.3f}s avg, the largest per-stage increase"
        )
    return delta


@dataclass
class SuiteComparison:
    """The aligned diff of two suite result directories."""

    base_dir: str
    current_dir: str
    threshold: float
    deltas: list[RunDelta]
    #: Spec hashes with a result on only one side (grid drift — e.g.
    #: an axis changed between the two campaigns). Reported, but not a
    #: regression: the gate's job is perf, not schema equality.
    only_in_base: list[str]
    only_in_current: list[str]
    #: True when the two directories shared no spec hashes directly
    #: and were aligned by *projected* hashes instead (bookkeeping
    #: fields like scenario name and grid-point label stripped) — the
    #: cross-scenario-file comparison mode.
    projected: bool = False

    def regressions(self) -> list[RunDelta]:
        return [delta for delta in self.deltas if delta.regressed]

    def appeared_from_zero(self) -> list[RunDelta]:
        """Points whose base measured zero but current did not.

        Not gateable (no ratio exists) and never a regression, but
        surfaced in both output forms: in a deterministic simulator a
        point going from "confirmed nothing" to "confirmed something"
        is a behavioural change worth a human look.
        """
        return [
            delta
            for delta in self.deltas
            if math.isinf(delta.throughput_ratio)
            or math.isinf(delta.latency_ratio)
        ]

    def to_json(self) -> dict[str, Any]:
        """Machine-readable comparison (``--compare ... --json``)."""
        return {
            "schema": COMPARE_SCHEMA,
            "base": self.base_dir,
            "current": self.current_dir,
            "threshold": self.threshold,
            "projected": self.projected,
            "compared": len(self.deltas),
            "regressed": len(self.regressions()),
            "only_in_base": self.only_in_base,
            "only_in_current": self.only_in_current,
            "results": [
                {
                    "spec_hash": delta.spec_hash,
                    "point": delta.point,
                    "base_throughput_tx_s": delta.base_throughput,
                    "current_throughput_tx_s": delta.current_throughput,
                    # Ratios are null when the base is zero: Infinity
                    # is not valid JSON and would break strict parsers
                    # downstream of the gate.
                    "throughput_ratio": _finite(delta.throughput_ratio),
                    "base_latency_avg_s": delta.base_latency_avg,
                    "current_latency_avg_s": delta.current_latency_avg,
                    "latency_ratio": _finite(delta.latency_ratio),
                    "base_safety_violations": delta.base_safety,
                    "current_safety_violations": delta.current_safety,
                    "regressed": delta.regressed,
                    "failures": delta.failures,
                    "regressed_stage": delta.regressed_stage,
                    "stage_deltas": delta.stage_deltas,
                }
                for delta in self.deltas
            ],
        }

    def format(self) -> str:
        """Render the diff as one ASCII table plus any drift notes."""
        rows = []
        for delta in self.deltas:
            rows.append(
                [
                    delta.point,
                    f"{delta.base_throughput:.1f}",
                    f"{delta.current_throughput:.1f}",
                    f"{delta.throughput_ratio:.3f}x",
                    f"{delta.base_latency_avg:.3f}",
                    f"{delta.current_latency_avg:.3f}",
                    f"{delta.latency_ratio:.3f}x",
                    f"{delta.base_safety}->{delta.current_safety}",
                    "REGRESSED" if delta.regressed else "ok",
                ]
            )
        table = format_table(
            ["point", "base tx/s", "cur tx/s", "tx ratio",
             "base lat (s)", "cur lat (s)", "lat ratio", "safety",
             "status"],
            rows,
            title=(
                f"suite compare: {self.base_dir} vs {self.current_dir} "
                f"({len(self.deltas)} points, tolerance {self.threshold:.1%})"
            ),
        )
        notes = []
        if self.projected:
            notes.append(
                "NOTE points aligned by projected spec hash (scenario "
                "name and label ignored) — the directories came from "
                "different scenario files"
            )
        for delta in self.appeared_from_zero():
            notes.append(
                f"NOTE {delta.point}: confirmed work appeared from a "
                "zero base — ratios not evaluable, point not gated"
            )
        if self.only_in_base:
            notes.append(
                f"{len(self.only_in_base)} point(s) only in base "
                f"({', '.join(self.only_in_base[:4])}"
                + ("..." if len(self.only_in_base) > 4 else "") + ")"
            )
        if self.only_in_current:
            notes.append(
                f"{len(self.only_in_current)} point(s) only in current "
                f"({', '.join(self.only_in_current[:4])}"
                + ("..." if len(self.only_in_current) > 4 else "") + ")"
            )
        for delta in self.regressions():
            for failure in delta.failures:
                notes.append(f"REGRESSION {delta.point}: {failure}")
        return table + ("\n" + "\n".join(notes) if notes else "")


#: Spec fields stripped before computing a projected hash: pure
#: bookkeeping the scenario engine stamps on each grid point. Two
#: scenario files sweeping the same physical axes differ exactly here.
_PROJECTION_EXCLUDED = ("scenario", "label")


def _projected_hash(spec: dict[str, Any]) -> str:
    """Content hash of a serialized spec minus bookkeeping fields.

    Same construction as :func:`~repro.core.suitestore.spec_hash`
    (sorted-key JSON, sha256, 16 hex chars) over the stored spec dict,
    so it works across code revisions — the JSON is the common
    language, not the live ExperimentSpec class.
    """
    data = {k: v for k, v in spec.items() if k not in _PROJECTION_EXCLUDED}
    canon = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def _project_runs(
    runs: dict[str, dict[str, Any]], side: str
) -> dict[str, dict[str, Any]]:
    """Re-key one side's runs by projected hash, rejecting collisions.

    A collision means two grid points differ *only* in scenario name /
    label — aligning either with the other side would be arbitrary, so
    the comparison refuses rather than silently picking one.
    """
    projected: dict[str, dict[str, Any]] = {}
    for spec_hash_ in sorted(runs):
        data = runs[spec_hash_]
        key = _projected_hash(data["spec"])
        if key in projected:
            raise BenchmarkError(
                f"cannot align {side} by projected axes: runs "
                f"{projected[key]['spec_hash']} and {spec_hash_} differ "
                "only in scenario/label, so cross-file alignment would "
                "be ambiguous"
            )
        projected[key] = data
    return projected


def compare_suites(
    base_dir: str | Path,
    current_dir: str | Path,
    threshold: float = DEFAULT_THRESHOLD,
) -> SuiteComparison:
    """Align two result directories by spec hash and diff them.

    Directories produced by *different* scenario files never share a
    spec hash (the scenario name and point labels are hashed), even
    when they sweep identical physical axes. When the direct
    intersection is empty, alignment falls back to projected hashes —
    the serialized specs minus bookkeeping fields — and the result is
    flagged ``projected``.

    Raises :class:`BenchmarkError` when either side is not a result
    directory, or when even the projected intersection is empty — a
    comparison with zero overlap would "pass" vacuously, which is
    exactly the silent failure a CI gate must not allow.
    """
    if threshold < 0:
        raise BenchmarkError(
            f"comparison threshold must be non-negative, got {threshold}"
        )
    base_runs = SuiteStore.load_runs(base_dir)
    current_runs = SuiteStore.load_runs(current_dir)
    projected = False
    shared = sorted(set(base_runs) & set(current_runs))
    if not shared:
        base_runs = _project_runs(base_runs, "base")
        current_runs = _project_runs(current_runs, "current")
        shared = sorted(set(base_runs) & set(current_runs))
        projected = True
    if not shared:
        raise BenchmarkError(
            f"no grid points in common between {base_dir} and "
            f"{current_dir}, even after projecting away scenario "
            "names/labels; the directories sweep disjoint axes"
        )
    return SuiteComparison(
        base_dir=str(base_dir),
        current_dir=str(current_dir),
        threshold=threshold,
        deltas=[
            _delta(h, base_runs[h], current_runs[h], threshold) for h in shared
        ],
        only_in_base=sorted(set(base_runs) - set(current_runs)),
        only_in_current=sorted(set(current_runs) - set(base_runs)),
        projected=projected,
    )
