"""Export experiment results for plotting.

The benchmark harnesses print ASCII tables; researchers regenerating
the paper's *figures* need the underlying series. This module writes
them as plain CSV (no dependencies), one file per curve:

* :func:`export_summary` — the headline metrics of one or more runs
  (one row per run: the Figure 5-style bar charts).
* :func:`export_queue_series` — queue length over time (Figures 6, 18).
* :func:`export_latency_cdf` — the latency CDF (Figure 17).
* :func:`export_commit_series` — commits per time bucket (Figures 9,
  10's time axes).

Every function returns the path it wrote, so callers can log it.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

from .stats import StatsCollector, StatsSummary

__all__ = [
    "write_csv",
    "export_summary",
    "export_queue_series",
    "export_latency_cdf",
    "export_commit_series",
]


def write_csv(
    path: str | Path, headers: Sequence[str], rows: Iterable[Sequence]
) -> Path:
    """Write one CSV file; parent directories are created as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def export_summary(path: str | Path, summaries: Iterable[StatsSummary]) -> Path:
    """One row of headline metrics per run (Figure 5-style data)."""
    headers = [
        "platform",
        "workload",
        "duration_s",
        "submitted",
        "rejected",
        "confirmed",
        "throughput_tx_s",
        "latency_avg_s",
        "latency_p50_s",
        "latency_p95_s",
        "latency_p99_s",
        "final_queue_length",
    ]
    rows = [
        [
            s.platform,
            s.workload,
            s.duration_s,
            s.submitted,
            s.rejected,
            s.confirmed,
            s.throughput_tx_s,
            s.latency_avg_s,
            s.latency_p50_s,
            s.latency_p95_s,
            s.latency_p99_s,
            s.final_queue_length,
        ]
        for s in summaries
    ]
    return write_csv(path, headers, rows)


def export_queue_series(path: str | Path, stats: StatsCollector) -> Path:
    """Queue length over time — the curves of Figures 6 and 18."""
    return write_csv(
        path, ["time_s", "queue_length"], stats.queue_samples
    )


def export_latency_cdf(
    path: str | Path, stats: StatsCollector, points: int = 50
) -> Path:
    """The latency CDF of Figure 17."""
    return write_csv(
        path, ["latency_s", "cumulative_fraction"], stats.latency_cdf(points)
    )


def export_commit_series(
    path: str | Path, stats: StatsCollector, bucket_s: float = 10.0
) -> Path:
    """Commits per ``bucket_s`` window — Figure 9/10's time axes."""
    return write_csv(
        path,
        ["bucket_start_s", "commits"],
        stats.commits_per_bucket(bucket_s),
    )
