"""Statistics collection (the paper's StatsCollector, Figure 4).

Collects everything Section 3.3 defines: throughput (successful
transactions per second), latency (submission to confirmation),
client-side queue length over time, and per-second commit series for
the fault-tolerance timelines.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from .trace import StageBreakdown


@dataclass
class StatsSummary:
    """Headline numbers for one experiment run."""

    platform: str
    workload: str
    duration_s: float
    submitted: int
    rejected: int
    confirmed: int
    throughput_tx_s: float
    latency_avg_s: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    final_queue_length: int
    #: Chain safety violations the auditor flagged during the run
    #: (fork / garbage digest / height regression). Defaulted so
    #: summaries persisted before the auditor existed still load.
    safety_violations: int = 0
    #: Per-stage lifecycle breakdown (repro.core.trace). None when the
    #: ``trace_stages`` knob is off — and omitted from persisted run
    #: JSON in that case, keeping pre-tracing output byte-identical.
    stage_breakdown: StageBreakdown | None = field(default=None)


class StatsCollector:
    """Accumulates per-transaction and time-series measurements.

    ``reservoir`` bounds the number of latency samples held in memory
    (Algorithm R, seeded and deterministic): at 100k+ open-loop clients
    an unbounded per-transaction list is the collector's own memory
    bottleneck. The tradeoff is percentile accuracy — with a reservoir
    of k, the p-th percentile is estimated from k uniform samples, so
    tail percentiles carry an error of roughly ±sqrt(p(1-p)/k) in rank
    terms (k = 10_000 keeps p99 within ~0.1 rank-percent). Default 0 =
    unbounded: every sample kept, byte-identical to the pre-reservoir
    collector. Confirmation *counts* are exact either way — only the
    latency sample set is bounded (``confirm_times`` collapses into
    exact one-second buckets in reservoir mode).
    """

    def __init__(
        self,
        platform: str = "",
        workload: str = "",
        reservoir: int = 0,
        reservoir_seed: int = 0,
    ) -> None:
        self.platform = platform
        self.workload = workload
        self.submitted = 0
        self.rejected = 0
        self.latencies: list[float] = []
        self.confirm_times: list[float] = []
        self.queue_samples: list[tuple[float, int]] = []
        #: Per-stage backlog samples ``(t, mempool, consensus,
        #: execution)`` from the tracer's gauges — recorded by exactly
        #: one collector per run (the sampling client), alongside the
        #: legacy scalar series which stays the client's outstanding
        #: queue so existing figure harnesses are untouched.
        self.stage_queue_samples: list[tuple[float, int, int, int]] = []
        self.start_time = 0.0
        self.end_time = 0.0
        self.reservoir = reservoir
        self._confirmed = 0
        self._reservoir_rng = (
            random.Random(reservoir_seed) if reservoir > 0 else None
        )
        # Exact per-second confirmation counts, kept instead of raw
        # confirm_times when the reservoir bounds memory.
        self._confirm_buckets: dict[int, int] = {}
        # Sorted view of ``latencies``, computed lazily and shared by
        # every percentile/CDF call: summary() alone needs three
        # percentiles, and report/export code asks for CDFs on top —
        # one sort per batch of appends instead of one per query.
        self._sorted_latencies_cache: list[float] | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, now: float) -> None:
        """Mark the start of the measurement window."""
        self.start_time = now

    def finish(self, now: float) -> None:
        """Mark the end of the measurement window."""
        self.end_time = now

    def record_submission(self) -> None:
        """Count one transaction offered to the backend."""
        self.submitted += 1

    def record_rejection(self) -> None:
        """Count one submission the backend refused (throttle/full)."""
        self.rejected += 1

    def record_confirmation(self, submitted_at: float, confirmed_at: float) -> None:
        """Record one confirmed transaction and its latency."""
        self._confirmed += 1
        latency = confirmed_at - submitted_at
        if self._reservoir_rng is None:
            self.latencies.append(latency)
            self.confirm_times.append(confirmed_at)
            return
        # Algorithm R: every confirmation has probability k/n of being
        # in the k-slot reservoir. Replacement mutates in place, so the
        # length-based cache staleness check must be bypassed.
        if len(self.latencies) < self.reservoir:
            self.latencies.append(latency)
        else:
            slot = self._reservoir_rng.randrange(self._confirmed)
            if slot < self.reservoir:
                self.latencies[slot] = latency
                self._sorted_latencies_cache = None
        bucket = int(confirmed_at)
        self._confirm_buckets[bucket] = self._confirm_buckets.get(bucket, 0) + 1

    def record_queue_length(
        self,
        now: float,
        length: int,
        stage_depths: tuple[int, int, int] | None = None,
    ) -> None:
        """Sample the client's outstanding-transaction queue.

        ``stage_depths`` optionally carries the tracer's per-stage
        backlog gauges (mempool, consensus in-flight, execution) taken
        at the same instant.
        """
        self.queue_samples.append((now, length))
        if stage_depths is not None:
            self.stage_queue_samples.append((now, *stage_depths))

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def _sorted_latencies(self) -> list[float]:
        """Sorted latencies, re-sorted only after new recordings.

        ``latencies`` is a public list (``merge_collectors`` extends it
        in place), so staleness is detected by length rather than by
        intercepting every mutation path.
        """
        cache = self._sorted_latencies_cache
        if cache is None or len(cache) != len(self.latencies):
            cache = sorted(self.latencies)
            self._sorted_latencies_cache = cache
        return cache

    @property
    def confirmed(self) -> int:
        """Transactions confirmed inside the measurement window.

        An exact counter, decoupled from ``len(latencies)`` so a
        bounded reservoir never distorts throughput.
        """
        return self._confirmed

    def duration(self) -> float:
        """Measured window length (never zero, for safe division)."""
        return max(1e-9, self.end_time - self.start_time)

    def throughput(self) -> float:
        """Successful transactions per second (Section 3.3)."""
        return self.confirmed / self.duration()

    def latency_avg(self) -> float:
        """Mean confirmation latency in seconds.

        In reservoir mode this is the sample mean over the reservoir —
        an unbiased estimator of the true mean.
        """
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def latency_percentile(self, pct: float) -> float:
        """Order-statistic percentile of confirmation latency."""
        if not self.latencies:
            return 0.0
        ordered = self._sorted_latencies()
        rank = min(len(ordered) - 1, max(0, math.ceil(pct / 100 * len(ordered)) - 1))
        return ordered[rank]

    def latency_cdf(self, points: int = 50) -> list[tuple[float, float]]:
        """(latency, cumulative fraction) pairs — Figure 17's curves."""
        if not self.latencies:
            return []
        ordered = self._sorted_latencies()
        n = len(ordered)
        step = max(1, n // points)
        cdf = [
            (ordered[i], (i + 1) / n) for i in range(0, n, step)
        ]
        if cdf[-1][1] < 1.0:
            cdf.append((ordered[-1], 1.0))
        return cdf

    def commits_per_bucket(self, bucket_s: float = 1.0) -> list[tuple[float, int]]:
        """Per-interval commit counts — Figure 9's timeline.

        Reservoir mode keeps exact one-second counts instead of raw
        confirmation times; counts are exact for ``bucket_s = 1.0`` and
        rebinned by second-of-confirmation for other bucket sizes.
        """
        if self._confirm_buckets:
            end = max(self._confirm_buckets)
            n_buckets = int(end / bucket_s) + 1
            counts = [0] * n_buckets
            for second, count in self._confirm_buckets.items():
                counts[int(second / bucket_s)] += count
            return [(i * bucket_s, c) for i, c in enumerate(counts)]
        if not self.confirm_times:
            return []
        end = max(self.confirm_times)
        n_buckets = int(end / bucket_s) + 1
        counts = [0] * n_buckets
        for t in self.confirm_times:
            counts[int(t / bucket_s)] += 1
        return [(i * bucket_s, c) for i, c in enumerate(counts)]

    def final_queue_length(self) -> int:
        """Queue length at the last sample (backlog at window end)."""
        return self.queue_samples[-1][1] if self.queue_samples else 0

    def summary(self) -> StatsSummary:
        """Freeze the headline metrics into a StatsSummary."""
        return StatsSummary(
            platform=self.platform,
            workload=self.workload,
            duration_s=self.duration(),
            submitted=self.submitted,
            rejected=self.rejected,
            confirmed=self.confirmed,
            throughput_tx_s=self.throughput(),
            latency_avg_s=self.latency_avg(),
            latency_p50_s=self.latency_percentile(50),
            latency_p95_s=self.latency_percentile(95),
            latency_p99_s=self.latency_percentile(99),
            final_queue_length=self.final_queue_length(),
        )


def merge_collectors(collectors: list[StatsCollector]) -> StatsCollector:
    """Combine per-client collectors into one network-wide view."""
    merged = StatsCollector(
        platform=collectors[0].platform if collectors else "",
        workload=collectors[0].workload if collectors else "",
    )
    for collector in collectors:
        merged.submitted += collector.submitted
        merged.rejected += collector.rejected
        merged._confirmed += collector._confirmed
        merged.latencies.extend(collector.latencies)
        merged.confirm_times.extend(collector.confirm_times)
        for second, count in collector._confirm_buckets.items():
            merged._confirm_buckets[second] = (
                merged._confirm_buckets.get(second, 0) + count
            )
    # Window bounds once over all collectors (this used to run inside
    # the loop above, making the merge quadratic in client count).
    merged.start_time = min((c.start_time for c in collectors), default=0.0)
    merged.end_time = max((c.end_time for c in collectors), default=0.0)
    # Queue samples: sum per timestamp across clients.
    by_time: dict[float, int] = {}
    for collector in collectors:
        for t, length in collector.queue_samples:
            by_time[t] = by_time.get(t, 0) + length
    merged.queue_samples = sorted(by_time.items())
    # Stage backlog samples: the gauges are cluster-global, so summing
    # across collectors would multiply them — but only one collector
    # per run records them, making the per-timestamp merge a no-op
    # passthrough that still tolerates future multi-sampler setups by
    # keeping the latest sample per timestamp.
    by_time_stages: dict[float, tuple[int, int, int]] = {}
    for collector in collectors:
        for t, mempool, consensus, execution in collector.stage_queue_samples:
            by_time_stages[t] = (mempool, consensus, execution)
    merged.stage_queue_samples = [
        (t, *depths) for t, depths in sorted(by_time_stages.items())
    ]
    return merged
