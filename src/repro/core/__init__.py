"""BLOCKBENCH core: the paper's primary contribution (Figure 4).

Connector and workload interfaces, the asynchronous driver with its
outstanding-transaction queue and polling loop, statistics collection,
fault and attack injection, and experiment orchestration.
"""

from .connector import (
    BlockSubscription,
    IBlockchainConnector,
    RPCClient,
    SimChainConnector,
)
from .driver import (
    CLIENT_MODES,
    BatchClient,
    BenchClient,
    CallbackBenchClient,
    Driver,
    DriverConfig,
    OpenLoopDriver,
)
from .export import (
    export_commit_series,
    export_latency_cdf,
    export_queue_series,
    export_summary,
    write_csv,
)
from .audit import AuditReport, ChainAuditor, SafetyViolation
from .faults import (
    BYZANTINE_BEHAVIORS,
    ByzantineFault,
    CorruptionFault,
    CrashFault,
    DelayFault,
    FaultSchedule,
    PartitionFault,
    register_behavior,
)
from .compare import RunDelta, SuiteComparison, compare_suites
from .report import (
    BOTTLENECK_HEADERS,
    SUMMARY_HEADERS,
    bottleneck_rows,
    bottleneck_table,
    format_table,
    summary_row,
)
from .runner import ExperimentResult, ExperimentSpec, run_experiment
from .scenario import (
    ScenarioSpec,
    ScenarioSuite,
    SuiteResult,
    build_fault_schedule,
)
from .suitestore import SuiteStore, spec_hash
from .security import AttackReport, ForkMonitor, ForkSample, run_partition_attack
from .stats import StatsCollector, StatsSummary, merge_collectors
from .trace import (
    QUEUE_GAUGES,
    STAGE_INTERVALS,
    STAGES,
    StageBreakdown,
    StageStat,
    StageTracer,
)
from .workload import (
    ARRIVAL_PROCESSES,
    ArrivalGenerator,
    ArrivalSpec,
    Workload,
    preload_state,
)

__all__ = [
    "BlockSubscription",
    "IBlockchainConnector",
    "RPCClient",
    "SimChainConnector",
    "BatchClient",
    "BenchClient",
    "CallbackBenchClient",
    "CLIENT_MODES",
    "Driver",
    "DriverConfig",
    "OpenLoopDriver",
    "export_commit_series",
    "export_latency_cdf",
    "export_queue_series",
    "export_summary",
    "write_csv",
    "AuditReport",
    "ChainAuditor",
    "SafetyViolation",
    "BYZANTINE_BEHAVIORS",
    "ByzantineFault",
    "register_behavior",
    "CorruptionFault",
    "CrashFault",
    "DelayFault",
    "FaultSchedule",
    "PartitionFault",
    "SUMMARY_HEADERS",
    "format_table",
    "BOTTLENECK_HEADERS",
    "bottleneck_rows",
    "bottleneck_table",
    "summary_row",
    "ExperimentResult",
    "ExperimentSpec",
    "run_experiment",
    "ScenarioSpec",
    "ScenarioSuite",
    "SuiteResult",
    "SuiteStore",
    "spec_hash",
    "RunDelta",
    "SuiteComparison",
    "compare_suites",
    "build_fault_schedule",
    "AttackReport",
    "ForkMonitor",
    "ForkSample",
    "run_partition_attack",
    "StatsCollector",
    "StatsSummary",
    "QUEUE_GAUGES",
    "STAGE_INTERVALS",
    "STAGES",
    "StageBreakdown",
    "StageStat",
    "StageTracer",
    "merge_collectors",
    "Workload",
    "preload_state",
    "ARRIVAL_PROCESSES",
    "ArrivalGenerator",
    "ArrivalSpec",
]
