"""Security evaluation: partition attacks and the fork metric (§3.3).

"Security is then measured by the ratio between the total number of
blocks included in the main branch and the total number of blocks
confirmed by the users. The lower the ratio, the less vulnerable the
system is from double spending or selfish mining."

(The paper's sentence inverts once: operationally, *fewer* fork blocks
means less exposure; ``fork_ratio`` here is main/total so 1.0 = safe.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..platforms.cluster import Cluster


@dataclass
class ForkSample:
    """One sample of the global block census (Figure 10's two curves)."""

    time: float
    total_blocks: int  # X-total
    main_branch_blocks: int  # X-bc

    @property
    def delta(self) -> int:
        return self.total_blocks - self.main_branch_blocks


@dataclass
class AttackReport:
    """Outcome of one partition attack."""

    samples: list[ForkSample] = field(default_factory=list)
    attack_start: float = 0.0
    attack_end: float = 0.0

    def final_fork_blocks(self) -> int:
        return self.samples[-1].delta if self.samples else 0

    def fork_ratio(self) -> float:
        """main-branch / total — 1.0 means no vulnerability window."""
        if not self.samples:
            return 1.0
        last = self.samples[-1]
        if last.total_blocks == 0:
            return 1.0
        return last.main_branch_blocks / last.total_blocks

    def peak_fork_fraction(self) -> float:
        """Largest fraction of produced blocks sitting on forks."""
        best = 0.0
        for sample in self.samples:
            if sample.total_blocks:
                best = max(best, sample.delta / sample.total_blocks)
        return best


class ForkMonitor:
    """Samples the cluster-wide block census on a fixed interval."""

    def __init__(self, cluster: "Cluster", interval_s: float = 5.0) -> None:
        self.cluster = cluster
        self.interval_s = interval_s
        self.report = AttackReport()
        self._running = False

    def start(self) -> None:
        self._running = True
        self.cluster.scheduler.schedule(self.interval_s, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        total, main = self.cluster.global_block_stats()
        self.report.samples.append(
            ForkSample(
                time=self.cluster.scheduler.now,
                total_blocks=total,
                main_branch_blocks=main,
            )
        )
        self.cluster.scheduler.schedule(self.interval_s, self._tick)


def run_partition_attack(
    cluster: "Cluster",
    attack_start: float,
    attack_duration: float,
    total_duration: float,
    sample_interval: float = 5.0,
) -> AttackReport:
    """Arm the Figure 10 attack and run the cluster to completion.

    The caller is expected to have started a workload (the attack is
    only interesting under load for PoW, which needs transactions to
    mine — though empty blocks fork all the same).
    """
    monitor = ForkMonitor(cluster, sample_interval)
    monitor.start()
    scheduler = cluster.scheduler
    scheduler.schedule_at(attack_start, lambda: cluster.partition_halves())
    scheduler.schedule_at(attack_start + attack_duration, cluster.heal)
    cluster.run_until(total_duration)
    monitor.stop()
    monitor.report.attack_start = attack_start
    monitor.report.attack_end = attack_start + attack_duration
    return monitor.report
