"""Declarative scenario suites: experiment grids as data, not scripts.

The paper's figures are all points in one big grid — platform x
workload x servers x clients x request rate x block size x fault
schedule (Sections 3-4). The seed re-implemented each figure's sweep
loop by hand; this module makes a sweep a *value*:

* :class:`ScenarioSpec` — one named grid. Every axis accepts a scalar
  or a list; ``expand()`` takes the cartesian product and yields one
  :class:`~repro.core.runner.ExperimentSpec` per point.
* :class:`ScenarioSuite` — an ordered set of scenarios, loadable from
  a JSON file (the ``blockbench suite`` subcommand). ``run()``
  executes the whole grid, optionally fanning out across CPU cores
  with :mod:`multiprocessing`, and merges everything into a
  :class:`SuiteResult`. With ``out_dir=`` every finished grid point is
  persisted to a content-addressed file as it completes, and
  ``resume=True`` skips points whose results already exist — a killed
  campaign picks up where it stopped (see
  :mod:`repro.core.suitestore`).
* :class:`SuiteResult` — the merged outcome, consumed by the existing
  export (CSV series) and report (ASCII table) layers, with
  ``one()``/``lookup()`` accessors so harnesses can ask for grid
  points by axis value instead of tracking loop indices.

A scenario file looks like::

    {
      "name": "peak-sweep",
      "scenarios": [
        {
          "name": "ycsb-peak",
          "platforms": ["hyperledger", "ethereum"],
          "workloads": "ycsb",
          "servers": 4,
          "rates": [50, 200],
          "durations": 20,
          "seeds": 42
        }
      ]
    }

Platform and workload names resolve through :mod:`repro.registry`, so
scenario files can sweep third-party backends too.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, Sequence

from ..errors import BenchmarkError
from .export import export_summary, write_csv
from .faults import (
    BYZANTINE_BEHAVIORS,
    ByzantineFault,
    CorruptionFault,
    CrashFault,
    DelayFault,
    FaultSchedule,
    PartitionFault,
)
from .driver import CLIENT_MODES, DriverConfig
from .workload import ArrivalSpec
from .report import format_table
from .runner import ExperimentResult, ExperimentSpec, run_experiment
from .stats import StatsSummary
from .suitestore import SuiteStore

__all__ = [
    "ScenarioSpec",
    "ScenarioSuite",
    "SuiteResult",
    "build_fault_schedule",
]

_FAULT_TYPES = {
    "crashes": CrashFault,
    "delays": DelayFault,
    "corruptions": CorruptionFault,
    "partitions": PartitionFault,
    "byzantines": ByzantineFault,
}


def build_fault_schedule(spec: dict[str, Any]) -> FaultSchedule:
    """Turn a JSON-shaped fault dict into a fresh :class:`FaultSchedule`.

    ``{"crashes": [{"at_time": 15, "count": 2}]}`` and friends; a fresh
    schedule per run keeps the armed state from leaking across grid
    points.
    """
    unknown = set(spec) - set(_FAULT_TYPES)
    if unknown:
        raise BenchmarkError(
            f"unknown fault kinds {sorted(unknown)}; "
            f"expected {sorted(_FAULT_TYPES)}"
        )
    kwargs = {}
    for key, fault_type in _FAULT_TYPES.items():
        entries = spec.get(key, [])
        try:
            kwargs[key] = [fault_type(**entry) for entry in entries]
        except TypeError as exc:
            raise BenchmarkError(f"bad {key} entry: {exc}") from None
    for byzantine in kwargs["byzantines"]:
        if byzantine.behavior not in BYZANTINE_BEHAVIORS:
            raise BenchmarkError(
                f"unknown byzantine behavior {byzantine.behavior!r}; "
                f"expected one of {sorted(BYZANTINE_BEHAVIORS)}"
            )
    return FaultSchedule(**kwargs)


def _axis(value: Any, name: str) -> list:
    """Normalize a grid axis: scalar -> one-point axis, list -> list."""
    if isinstance(value, (list, tuple)):
        points = list(value)
        if not points:
            raise BenchmarkError(f"scenario axis {name!r} is empty")
        return points
    return [value]


def _overrides_label(overrides: dict[str, Any]) -> str:
    """Flatten an override dict into a grid-point label.

    ``{"pbft": {"batch_size": 250}}`` -> ``"pbft.batch_size=250"``;
    multiple knobs join with commas in sorted key order so the label
    (and anything keyed on it) is order-independent.
    """
    parts: list[str] = []

    def walk(prefix: str, value: Any) -> None:
        if isinstance(value, dict):
            for key in sorted(value):
                walk(f"{prefix}.{key}" if prefix else str(key), value[key])
        else:
            parts.append(f"{prefix}={value}")

    walk("", overrides)
    return ",".join(parts)


def _overrides_axis(
    overrides: dict[str, Any] | Sequence[dict[str, Any]] | None,
) -> list[dict[str, Any]]:
    """Normalize the ``overrides`` field to a one-dict-per-point axis."""
    if overrides is None:
        return [{}]
    if isinstance(overrides, dict):
        return [overrides]
    points = list(overrides)
    if not points:
        raise BenchmarkError("scenario axis 'overrides' is empty")
    for point in points:
        if not isinstance(point, dict):
            raise BenchmarkError(
                "each 'overrides' axis point must be an object of config "
                f"knobs; got {type(point).__name__}"
            )
    return points


def _faults_label(faults: dict[str, Any]) -> str:
    """Compact grid-point label for one faults-axis point.

    ``{"byzantines": [{..., "count": 2}]}`` -> ``"byz=equivocate:2"``;
    an empty dict (the healthy control point of a sweep) labels as
    ``"no-faults"`` so f=0 rows stay distinguishable.
    """
    parts: list[str] = []
    for crash in faults.get("crashes", []):
        count = crash.get("count")
        if count is None:
            count = len(crash.get("nodes") or []) or 1
        label = f"crash={count}"
        if crash.get("recover_at") is not None:
            # The crash time disambiguates recovery-vs-chain-height
            # sweeps, where only at_time/recover_at vary across points.
            label += (
                f"@{crash.get('at_time'):g}"
                f",recover={crash.get('recovery_mode', 'warm')}"
            )
        parts.append(label)
    for delay in faults.get("delays", []):
        parts.append(f"delay={delay.get('extra_s')}s")
    for corruption in faults.get("corruptions", []):
        parts.append(f"corrupt={corruption.get('rate')}")
    for _ in faults.get("partitions", []):
        parts.append("partition")
    for byzantine in faults.get("byzantines", []):
        count = byzantine.get("count")
        if count is None:
            count = len(byzantine.get("nodes") or []) or 1
        behavior = byzantine.get("behavior", "equivocate")
        parts.append(f"byz={behavior}:{count}")
    return ",".join(parts) or "no-faults"


def _faults_axis(
    faults: dict[str, Any] | Sequence[dict[str, Any]] | None,
) -> list[dict[str, Any] | None]:
    """Normalize the ``faults`` field to a one-dict-per-point axis.

    A single dict applies to every grid point (the historical shape); a
    list of dicts is an axis — one grid point per schedule, which is
    how "throughput vs number of byzantine nodes" sweeps are written.
    Each point is validated eagerly so a typo'd fault kind or behavior
    fails at expand time, not mid-campaign.
    """
    if faults is None:
        return [None]
    points: list[Any] = [faults] if isinstance(faults, dict) else list(faults)
    if not points:
        raise BenchmarkError("scenario axis 'faults' is empty")
    for point in points:
        if not isinstance(point, dict):
            raise BenchmarkError(
                "each 'faults' axis point must be a fault-schedule object; "
                f"got {type(point).__name__}"
            )
        build_fault_schedule(point)  # raises on bad shape/values
    return points


def _arrival_axis(
    arrival: dict[str, Any] | Sequence[dict[str, Any]] | None,
) -> list[dict[str, Any] | None]:
    """Normalize the ``arrival`` field to a one-spec-per-point axis.

    Each point is validated eagerly through ArrivalSpec so a typo'd
    process name fails at expand time, not mid-campaign.
    """
    if arrival is None:
        return [None]
    points: list[Any] = (
        [arrival] if isinstance(arrival, dict) else list(arrival)
    )
    if not points:
        raise BenchmarkError("scenario axis 'arrival' is empty")
    for point in points:
        ArrivalSpec.from_dict(point)  # raises on bad shape/values
    return points


@dataclass
class ScenarioSpec:
    """One named experiment grid over the paper's sweep axes.

    Every axis accepts either a scalar or a list of values; the grid is
    the cartesian product of all axes. ``clients=None`` (the default)
    pins clients to the servers axis point-by-point — the paper's
    "clients = servers" scalability setup (Figure 7).

    ``configs`` is a Python-API-only axis of ``(label, platform
    config)`` pairs for block-size-style knob sweeps (Figure 15);
    ``overrides`` is its JSON-expressible sibling — a platform-knob
    dict (or a list of them, making it an axis) applied on top of the
    platform's config per grid point, e.g.
    ``{"pbft": {"batch_size": 250}}``; ``faults`` is a JSON-shaped
    dict (see :func:`build_fault_schedule`) instantiated freshly for
    every grid point.
    """

    name: str = "scenario"
    platforms: Sequence[str] | str = ("hyperledger",)
    workloads: Sequence[str] | str = ("ycsb",)
    servers: Sequence[int] | int = (8,)
    clients: Sequence[int] | int | None = None
    rates: Sequence[float] | float = (100.0,)
    durations: Sequence[float] | float = (30.0,)
    seeds: Sequence[int] | int = (42,)
    #: Driver-knob axes (scalar or list, like every other axis): the
    #: getLatestBlock poll period, worker threads per client, and the
    #: rejected-submission retry backoff. Sweeping them turns client
    #: tuning (Section 3.3's "threads per client") into grid points.
    #: Defaults come from DriverConfig — the single source of truth.
    poll_intervals: Sequence[float] | float = (DriverConfig.poll_interval_s,)
    threads_per_client: Sequence[int] | int = (DriverConfig.threads_per_client,)
    retry_intervals: Sequence[float] | float = (DriverConfig.retry_interval_s,)
    #: Read-fraction axis (scalar or list): each point maps onto the
    #: workload's native mix knobs via ``Workload.read_ratio_params``
    #: (YCSB read/update proportions, Smallbank balance weight). None
    #: keeps each workload's native mix.
    read_ratios: Sequence[float] | float | None = None
    workload_params: dict[str, Any] = field(default_factory=dict)
    blocking: bool = False
    subscribe: bool = False
    #: Client implementation ("coroutine" or "callback"); not an axis —
    #: both modes replay identical timelines, so sweeping it would
    #: duplicate grid points.
    client_mode: str = "coroutine"
    #: Client-side failover on RPC timeout (crash-recovery scenarios);
    #: a scalar knob, not an axis. See DriverConfig.failover.
    failover: bool = False
    max_backoff_s: float = DriverConfig.max_backoff_s
    with_monitor: bool = False
    drain_s: float = 5.0
    #: JSON-shaped fault schedule (see :func:`build_fault_schedule`):
    #: one dict applies to every grid point; a list of dicts is an axis
    #: — one grid point per schedule, labelled compactly (e.g.
    #: ``byz=equivocate:2``) — which is how fault-tolerance sweeps like
    #: "throughput vs number of byzantine nodes" are expressed.
    faults: dict[str, Any] | Sequence[dict[str, Any]] | None = None
    configs: Sequence[tuple[str, Any]] | None = None
    #: Platform-config knob overrides, JSON-expressible: one dict
    #: applies to every grid point; a list of dicts is an axis (one
    #: grid point per dict, labelled from its flattened keys). Nested
    #: dicts address nested config dataclasses; see
    #: :func:`repro.config.apply_overrides`.
    overrides: dict[str, Any] | Sequence[dict[str, Any]] | None = None
    #: Open-loop arrival process: ``{"process": "poisson", "rate":
    #: 5000, "accounts": 100000, "zipf_s": 1.1}`` switches every grid
    #: point to the OpenLoopDriver; a list of such dicts is an axis.
    #: ``None`` (default) keeps the closed-loop clients.
    arrival: dict[str, Any] | Sequence[dict[str, Any]] | None = None
    #: Latency-sample reservoir bound for every grid point (0 = keep
    #: every sample). See StatsCollector.
    stats_reservoir: int = 0
    #: Record lifecycle stage timestamps (repro.core.trace) and attach
    #: a StageBreakdown to every grid point's summary. Not an axis: the
    #: timeline is identical either way, so sweeping it would duplicate
    #: grid points.
    trace_stages: bool = True

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        """Build a spec from JSON data, rejecting unknown keys."""
        known = {f.name for f in fields(cls)} - {"configs"}
        unknown = set(data) - known
        if unknown:
            raise BenchmarkError(
                f"unknown scenario keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
                + (
                    " (the 'configs' axis holds platform config objects "
                    "and is only available from the Python API)"
                    if "configs" in unknown
                    else ""
                )
            )
        return cls(**data)

    def expand(self) -> list[ExperimentSpec]:
        """Cartesian product of all axes, one ExperimentSpec per point."""
        # Imported here to trigger registration of the built-ins; the
        # registry itself is a leaf module.
        from ..registry import PLATFORMS, WORKLOADS
        from .. import platforms as _platforms  # noqa: F401
        from .. import workloads as _workloads  # noqa: F401

        for platform in _axis(self.platforms, "platforms"):
            PLATFORMS.get(platform)  # raises with available names
        for workload in _axis(self.workloads, "workloads"):
            WORKLOADS.get(workload)
        if self.client_mode not in CLIENT_MODES:
            raise BenchmarkError(
                f"unknown client_mode {self.client_mode!r}; "
                f"expected one of {CLIENT_MODES}"
            )

        configs = list(self.configs) if self.configs is not None else [("", None)]
        overrides_axis = _overrides_axis(self.overrides)
        arrival_axis = _arrival_axis(self.arrival)
        faults_axis = _faults_axis(self.faults)
        clients_axis = (
            _axis(self.clients, "clients") if self.clients is not None else [None]
        )
        read_ratio_axis = (
            [float(v) for v in _axis(self.read_ratios, "read_ratios")]
            if self.read_ratios is not None
            else [None]
        )
        specs: list[ExperimentSpec] = []
        for platform, workload, (label, config), overrides, arrival, \
                fault_spec, servers, clients, rate, duration, seed, \
                poll_interval, threads, retry_interval, \
                read_ratio in itertools.product(
            _axis(self.platforms, "platforms"),
            _axis(self.workloads, "workloads"),
            configs,
            overrides_axis,
            arrival_axis,
            faults_axis,
            _axis(self.servers, "servers"),
            clients_axis,
            _axis(self.rates, "rates"),
            _axis(self.durations, "durations"),
            _axis(self.seeds, "seeds"),
            _axis(self.poll_intervals, "poll_intervals"),
            _axis(self.threads_per_client, "threads_per_client"),
            _axis(self.retry_intervals, "retry_intervals"),
            read_ratio_axis,
        ):
            # The overrides label only disambiguates when overrides
            # actually form an axis; a single campaign-wide dict would
            # just repeat the same text on every row.
            point_label = label
            if overrides and len(overrides_axis) > 1:
                olabel = _overrides_label(overrides)
                point_label = f"{label},{olabel}" if label else olabel
            if arrival is not None and len(arrival_axis) > 1:
                alabel = _overrides_label({"arrival": arrival})
                point_label = (
                    f"{point_label},{alabel}" if point_label else alabel
                )
            if fault_spec is not None and len(faults_axis) > 1:
                flabel = _faults_label(fault_spec)
                point_label = (
                    f"{point_label},{flabel}" if point_label else flabel
                )
            if read_ratio is not None and len(read_ratio_axis) > 1:
                rlabel = f"rr={read_ratio:g}"
                point_label = (
                    f"{point_label},{rlabel}" if point_label else rlabel
                )
            specs.append(
                ExperimentSpec(
                    platform=platform,
                    workload=workload,
                    workload_params=dict(self.workload_params),
                    n_servers=int(servers),
                    n_clients=int(servers if clients is None else clients),
                    request_rate_tx_s=float(rate),
                    duration_s=float(duration),
                    seed=int(seed),
                    poll_interval_s=float(poll_interval),
                    threads_per_client=int(threads),
                    retry_interval_s=float(retry_interval),
                    client_mode=self.client_mode,
                    failover=self.failover,
                    max_backoff_s=self.max_backoff_s,
                    blocking=self.blocking,
                    subscribe=self.subscribe,
                    with_monitor=self.with_monitor,
                    faults=(
                        build_fault_schedule(fault_spec)
                        if fault_spec is not None
                        else None
                    ),
                    config=config,
                    config_overrides=dict(overrides),
                    arrival=dict(arrival) if arrival is not None else None,
                    stats_reservoir=self.stats_reservoir,
                    read_ratio=read_ratio,
                    trace_stages=self.trace_stages,
                    drain_s=self.drain_s,
                    scenario=self.name,
                    label=point_label,
                )
            )
        return specs


#: Axis aliases accepted by SuiteResult.lookup()/one(), mapping the
#: scenario-file vocabulary onto ExperimentSpec attribute names.
_LOOKUP_ALIASES = {
    "servers": "n_servers",
    "clients": "n_clients",
    "rate": "request_rate_tx_s",
    "duration": "duration_s",
    "poll_interval": "poll_interval_s",
    "threads": "threads_per_client",
    "retry_interval": "retry_interval_s",
}

GRID_HEADERS = [
    "scenario",
    "label",
    "platform",
    "workload",
    "servers",
    "clients",
    "rate",
    "seed",
    "tx/s",
    "lat avg (s)",
    "lat p99 (s)",
    "confirmed",
    "queue",
    "safety",
    "recovery",
]


def _recovery_cell(summary: StatsSummary) -> str:
    """Grid cell for the recovery column: worst per-node recovery time
    (and how many nodes recovered), or ``-`` when nothing did."""
    if not summary.recovery_time_s:
        return "-"
    worst = max(summary.recovery_time_s.values())
    n = len(summary.recovery_time_s)
    return f"{worst:.2f}s" if n == 1 else f"{n}x{worst:.2f}s"


@dataclass
class SuiteResult:
    """Merged outcome of a scenario-suite run."""

    name: str
    results: list[ExperimentResult]
    #: Grid points loaded from a result store instead of executed —
    #: non-zero only for ``run(out_dir=..., resume=True)``.
    resumed: int = 0

    @property
    def summaries(self) -> list[StatsSummary]:
        return [result.summary for result in self.results]

    def lookup(self, **criteria: Any) -> list[ExperimentResult]:
        """Results whose spec matches every ``axis=value`` criterion.

        Axes use scenario-file names: ``platform``, ``workload``,
        ``servers``, ``clients``, ``rate``, ``duration``, ``seed``,
        ``scenario``, ``label``.
        """
        matches = []
        for result in self.results:
            spec = result.spec
            for key, expected in criteria.items():
                attr = _LOOKUP_ALIASES.get(key, key)
                if not hasattr(spec, attr):
                    raise BenchmarkError(
                        f"unknown lookup axis {key!r}; expected one of "
                        f"{sorted([f.name for f in fields(ExperimentSpec)] + list(_LOOKUP_ALIASES))}"
                    )
                if getattr(spec, attr) != expected:
                    break
            else:
                matches.append(result)
        return matches

    def one(self, **criteria: Any) -> ExperimentResult:
        """The single result matching ``criteria`` (error otherwise)."""
        matches = self.lookup(**criteria)
        if len(matches) != 1:
            raise BenchmarkError(
                f"expected exactly one result for {criteria}; "
                f"found {len(matches)}"
            )
        return matches[0]

    def peak(
        self,
        key: Callable[[ExperimentResult], float] | None = None,
        **criteria: Any,
    ) -> ExperimentResult:
        """Best matching result (default: highest throughput)."""
        matches = self.lookup(**criteria)
        if not matches:
            raise BenchmarkError(f"no results match {criteria}")
        return max(matches, key=key or (lambda result: result.throughput))

    def to_rows(self) -> list[list[Any]]:
        """One grid row per run, aligned with :data:`GRID_HEADERS`."""
        rows = []
        for result in self.results:
            spec, summary = result.spec, result.summary
            rows.append(
                [
                    spec.scenario,
                    spec.label,
                    spec.platform,
                    spec.workload,
                    spec.n_servers,
                    spec.n_clients,
                    spec.request_rate_tx_s,
                    spec.seed,
                    f"{summary.throughput_tx_s:.1f}",
                    f"{summary.latency_avg_s:.3f}",
                    f"{summary.latency_p99_s:.3f}",
                    summary.confirmed,
                    summary.final_queue_length,
                    (
                        "ok"
                        if summary.safety_violations == 0
                        else f"{summary.safety_violations} VIOLATIONS"
                    ),
                    _recovery_cell(summary),
                ]
            )
        return rows

    def format(self) -> str:
        """Render the whole grid as one ASCII table."""
        return format_table(
            GRID_HEADERS,
            self.to_rows(),
            title=f"suite {self.name}: {len(self.results)} runs",
        )

    def to_json(self) -> dict[str, Any]:
        """Machine-readable merged summary (``blockbench suite --json``)."""
        runs = []
        for result in self.results:
            spec, summary = result.spec, result.summary
            runs.append(
                {
                    "scenario": spec.scenario,
                    "label": spec.label,
                    "platform": spec.platform,
                    "workload": spec.workload,
                    "servers": spec.n_servers,
                    "clients": spec.n_clients,
                    "rate_tx_s": spec.request_rate_tx_s,
                    "duration_s": spec.duration_s,
                    "seed": spec.seed,
                    "throughput_tx_s": summary.throughput_tx_s,
                    "latency_avg_s": summary.latency_avg_s,
                    "latency_p50_s": summary.latency_p50_s,
                    "latency_p99_s": summary.latency_p99_s,
                    "submitted": summary.submitted,
                    "confirmed": summary.confirmed,
                    "chain_height": result.chain_height,
                    "view_changes": result.view_changes,
                    "safety_violations": summary.safety_violations,
                }
            )
            breakdown = summary.stage_breakdown
            if breakdown is not None:
                runs[-1]["dominant_stage"] = breakdown.dominant_stage()
                runs[-1]["stage_breakdown"] = dataclasses.asdict(breakdown)
            if summary.recovery_time_s:
                runs[-1]["recovery_time_s"] = summary.recovery_time_s
                runs[-1]["sync_requests"] = summary.sync_requests
                runs[-1]["sync_blocks"] = summary.sync_blocks
                runs[-1]["sync_bytes"] = summary.sync_bytes
        return {"suite": self.name, "runs": len(runs), "results": runs}

    def export(self, directory: str | Path) -> list[Path]:
        """Write the merged grid + per-run summaries as plot-ready CSV."""
        out = Path(directory)
        return [
            write_csv(out / "grid.csv", GRID_HEADERS, self.to_rows()),
            export_summary(out / "summary.csv", self.summaries),
        ]


def _import_plugin_modules(module_names: tuple[str, ...]) -> None:
    """Pool-worker initializer: re-run plugin registration imports.

    Needed under spawn-based multiprocessing, where workers start from
    a fresh interpreter and only the built-in platforms/workloads are
    registered by the core imports.
    """
    import importlib

    for module_name in module_names:
        importlib.import_module(module_name)


@dataclass
class ScenarioSuite:
    """An ordered collection of scenarios run as one campaign."""

    scenarios: list[ScenarioSpec]
    name: str = "suite"

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSuite":
        """Accept ``{"scenarios": [...]}`` or a single scenario object."""
        if "scenarios" in data:
            extra = set(data) - {"name", "scenarios"}
            if extra:
                raise BenchmarkError(
                    f"unknown suite keys {sorted(extra)}; "
                    "expected 'name' and 'scenarios'"
                )
            scenarios = [ScenarioSpec.from_dict(s) for s in data["scenarios"]]
            if not scenarios:
                raise BenchmarkError("suite has no scenarios")
            return cls(scenarios=scenarios, name=data.get("name", "suite"))
        spec = ScenarioSpec.from_dict(data)
        return cls(scenarios=[spec], name=spec.name)

    @classmethod
    def from_file(cls, path: str | Path) -> "ScenarioSuite":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise BenchmarkError(f"scenario file not found: {path}") from None
        except json.JSONDecodeError as exc:
            raise BenchmarkError(f"invalid JSON in {path}: {exc}") from None
        if not isinstance(data, dict):
            raise BenchmarkError(
                f"{path}: expected a JSON object, got {type(data).__name__}"
            )
        suite = cls.from_dict(data)
        if "name" not in data:
            suite.name = path.stem
        return suite

    def expand(self) -> list[ExperimentSpec]:
        """Every run in the suite, in scenario order."""
        specs: list[ExperimentSpec] = []
        for scenario in self.scenarios:
            specs.extend(scenario.expand())
        return specs

    def run(
        self,
        processes: int = 1,
        progress: Callable[[int, int, ExperimentSpec], None] | None = None,
        plugin_modules: Sequence[str] = (),
        out_dir: str | Path | None = None,
        resume: bool = False,
    ) -> SuiteResult:
        """Execute the full grid and merge the results.

        ``processes > 1`` fans runs out across CPU cores with
        :mod:`multiprocessing` (each run is an independent simulation,
        so the grid is embarrassingly parallel); results come back in
        grid order either way. ``progress`` is invoked before each
        executed run in serial mode, with the run's *grid* index.

        ``out_dir`` persists every finished grid point to
        ``out_dir/runs/<spec-hash>.json`` as soon as it completes
        (atomically, even under ``processes > 1``), so a killed
        campaign leaves a valid partial result directory behind.
        ``resume=True`` loads the points whose files already exist and
        executes only the missing ones; because the simulator is
        deterministic per seed, the merged result is identical to an
        uninterrupted run. See :mod:`repro.core.suitestore`.

        Third-party platforms/workloads register at import time of
        their defining module, which spawn-based multiprocessing (the
        default on macOS/Windows) does *not* re-run in workers. Pass
        those module names via ``plugin_modules`` so each worker
        imports them before its first run; the built-ins are always
        available.
        """
        if resume and out_dir is None:
            raise BenchmarkError("resume=True requires out_dir")
        store = SuiteStore(out_dir) if out_dir is not None else None
        specs = self.expand()
        results: list[ExperimentResult | None] = [None] * len(specs)
        pending: list[tuple[int, ExperimentSpec]] = []
        resumed = 0
        for index, spec in enumerate(specs):
            cached = store.load(spec) if (store and resume) else None
            if cached is not None:
                results[index] = cached
                resumed += 1
            else:
                pending.append((index, spec))
        if processes > 1 and len(pending) > 1:
            import multiprocessing

            workers = min(processes, len(pending))
            with multiprocessing.get_context().Pool(
                workers,
                initializer=_import_plugin_modules,
                initargs=(tuple(plugin_modules),),
            ) as pool:
                # imap (not map) so each result is persisted as it
                # arrives — a crash mid-campaign keeps what finished.
                for (index, _), result in zip(
                    pending, pool.imap(run_experiment, [s for _, s in pending])
                ):
                    if store is not None:
                        store.save(result)
                    results[index] = result
        else:
            for index, spec in pending:
                if progress is not None:
                    progress(index, len(specs), spec)
                result = run_experiment(spec)
                if store is not None:
                    store.save(result)
                results[index] = result
        suite_result = SuiteResult(
            name=self.name, results=results, resumed=resumed
        )
        if store is not None:
            store.write_manifest(suite_result)
        return suite_result
