"""Workload connector interface (the paper's IWorkloadConnector).

"This interface essentially wraps the workload's operations into
transactions to be sent to the blockchain. Specifically, it has a
getNextTransaction method which returns a new blockchain transaction"
(Section 3.2). ``preload`` covers the store-population step the
benchmarks perform before measurement.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from ..chain import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from ..platforms.cluster import Cluster


class Workload(ABC):
    """Generates the transaction stream for one benchmark."""

    #: Registry/driver name, e.g. "ycsb".
    name: str = ""
    #: Contract(s) this workload requires deployed.
    required_contracts: tuple[str, ...] = ()

    def preload(self, cluster: "Cluster") -> None:
        """Populate state before measurement begins.

        Preloading writes directly into every node's state (bypassing
        consensus), mirroring how the paper populates stores before the
        measured window.
        """

    @abstractmethod
    def next_transaction(
        self, client_id: str, rng: random.Random, now: float
    ) -> Transaction:
        """The next transaction for ``client_id`` (getNextTransaction)."""


def preload_state(cluster: "Cluster", contract: str, items) -> int:
    """Helper: write (key, value) byte pairs into a contract's namespace
    on every node. Returns the number of records written per node."""
    count = 0
    prefix = contract.encode() + b"/"
    for key, value in items:
        for node in cluster.nodes:
            node.state.put(prefix + key, value)
        count += 1
    for node in cluster.nodes:
        node.state.commit_block(0)
    return count
