"""Workload connector interface (the paper's IWorkloadConnector).

"This interface essentially wraps the workload's operations into
transactions to be sent to the blockchain. Specifically, it has a
getNextTransaction method which returns a new blockchain transaction"
(Section 3.2). ``preload`` covers the store-population step the
benchmarks perform before measurement.

Also home to the **open-loop arrival machinery**: an
:class:`ArrivalSpec` describes an aggregate arrival process (Poisson or
uniform inter-arrival gaps, optionally Zipf-skewed over a population of
sender accounts) and :class:`ArrivalGenerator` turns it into a seeded,
deterministic stream of ``(gap_s, sender_id)`` pairs. Unlike the
closed-loop clients in ``core/driver.py`` — which wait for replies and
back off under pushback — an open-loop stream offers load at its
configured rate no matter how the system responds, which is the harness
shape BlockMeter-style "is the load generator the bottleneck?" studies
require.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from bisect import bisect_left
from dataclasses import dataclass
from itertools import accumulate
from typing import TYPE_CHECKING, Iterator

from ..chain import Transaction
from ..errors import BenchmarkError

if TYPE_CHECKING:  # pragma: no cover
    from ..platforms.cluster import Cluster

#: Supported inter-arrival processes.
ARRIVAL_PROCESSES = ("poisson", "uniform")


@dataclass
class ArrivalSpec:
    """Open-loop arrival process configuration.

    Scenario-JSON shape (the ``arrival`` axis)::

        {"process": "poisson", "rate": 5000, "accounts": 100000, "zipf_s": 1.1}

    ``rate`` is the *aggregate* offered load in tx/s across the whole
    population — there is no per-client rate because there are no
    per-client coroutines. ``zipf_s = 0`` picks senders uniformly;
    larger values skew traffic toward low-numbered accounts with
    Zipf exponent ``s`` (weight of account k is 1/(k+1)^s).
    """

    process: str = "poisson"
    rate_tx_s: float = 1000.0
    accounts: int = 1000
    zipf_s: float = 0.0

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise BenchmarkError(
                f"unknown arrival process {self.process!r}; "
                f"expected one of {ARRIVAL_PROCESSES}"
            )
        if self.rate_tx_s <= 0:
            raise BenchmarkError(
                f"arrival rate must be positive, got {self.rate_tx_s}"
            )
        if self.accounts < 1:
            raise BenchmarkError(
                f"arrival accounts must be >= 1, got {self.accounts}"
            )
        if self.zipf_s < 0:
            raise BenchmarkError(
                f"zipf_s must be >= 0, got {self.zipf_s}"
            )

    @classmethod
    def from_dict(cls, data: dict) -> "ArrivalSpec":
        if not isinstance(data, dict):
            raise BenchmarkError(
                f"arrival must be an object, got {type(data).__name__}"
            )
        known = {"process", "rate", "accounts", "zipf_s"}
        unknown = set(data) - known
        if unknown:
            raise BenchmarkError(
                f"unknown arrival key(s): {', '.join(sorted(unknown))}; "
                f"expected {', '.join(sorted(known))}"
            )
        return cls(
            process=data.get("process", "poisson"),
            rate_tx_s=float(data.get("rate", 1000.0)),
            accounts=int(data.get("accounts", 1000)),
            zipf_s=float(data.get("zipf_s", 0.0)),
        )

    def to_dict(self) -> dict:
        return {
            "process": self.process,
            "rate": self.rate_tx_s,
            "accounts": self.accounts,
            "zipf_s": self.zipf_s,
        }


class ArrivalGenerator:
    """Seeded, deterministic ``(gap_s, sender_id)`` stream.

    All randomness comes from the injected ``rng`` (a named stream off
    the cluster's RngRegistry), so the same seed replays the same
    arrival timeline across process restarts — pinned by
    ``tests/core/test_arrivals.py``. Zipf sender selection is an O(log
    accounts) bisect over precomputed cumulative weights; the weight
    table is built once per generator, not per draw.
    """

    def __init__(self, spec: ArrivalSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self._cumulative: list[float] | None = None
        if spec.zipf_s > 0:
            s = spec.zipf_s
            self._cumulative = list(
                accumulate(1.0 / (k + 1) ** s for k in range(spec.accounts))
            )

    def next_gap(self) -> float:
        """Simulated seconds until the next arrival."""
        if self.spec.process == "poisson":
            return self.rng.expovariate(self.spec.rate_tx_s)
        return 1.0 / self.spec.rate_tx_s

    def next_sender(self) -> int:
        """Account index of the next arrival's sender."""
        cumulative = self._cumulative
        if cumulative is None:
            return self.rng.randrange(self.spec.accounts)
        u = self.rng.random() * cumulative[-1]
        index = bisect_left(cumulative, u)
        return min(index, self.spec.accounts - 1)

    def __next__(self) -> tuple[float, int]:
        # Gap first, sender second: the draw order is part of the
        # pinned deterministic stream — do not reorder.
        return self.next_gap(), self.next_sender()

    def __iter__(self) -> Iterator[tuple[float, int]]:
        return self

    def take(self, n: int) -> list[tuple[float, int]]:
        """The next ``n`` arrivals as a list (bulk-scheduling helper)."""
        return [next(self) for _ in range(n)]


class Workload(ABC):
    """Generates the transaction stream for one benchmark."""

    #: Registry/driver name, e.g. "ycsb".
    name: str = ""
    #: Contract(s) this workload requires deployed.
    required_contracts: tuple[str, ...] = ()

    def preload(self, cluster: "Cluster") -> None:
        """Populate state before measurement begins.

        Preloading writes directly into every node's state (bypassing
        consensus), mirroring how the paper populates stores before the
        measured window.
        """

    @classmethod
    def read_ratio_params(cls, ratio: float) -> dict:
        """Config kwargs realizing a ``ratio`` fraction of reads.

        The ``read_ratio`` spec field / scenario axis calls this to
        translate one portable knob into the workload's native mix
        parameters. Workloads with a fixed operation mix (the Table 1
        contract drivers) don't override it and refuse the knob.
        """
        raise BenchmarkError(
            f"workload {cls.name!r} has a fixed operation mix and does "
            f"not support read_ratio"
        )

    @abstractmethod
    def next_transaction(
        self, client_id: str, rng: random.Random, now: float
    ) -> Transaction:
        """The next transaction for ``client_id`` (getNextTransaction)."""


def preload_state(cluster: "Cluster", contract: str, items) -> int:
    """Helper: write (key, value) byte pairs into a contract's namespace
    on every node. Returns the number of records written per node.

    Writes go through ``PlatformNode.bootstrap_put`` so each node
    remembers them: cold crash-recovery wipes the state store and must
    re-seed these consensus-bypassing records before chain replay.
    """
    count = 0
    prefix = contract.encode() + b"/"
    for key, value in items:
        for node in cluster.nodes:
            node.bootstrap_put(prefix + key, value)
        count += 1
    for node in cluster.nodes:
        node.bootstrap_commit()
    return count
