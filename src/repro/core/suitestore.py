"""Content-addressed, resumable storage for scenario-suite runs.

A measurement campaign over a big grid (the paper's Figures 5-19 are
platform x workload x cluster-size x rate sweeps) can take hours; a
killed process used to mean starting over. This module gives every
:class:`~repro.core.runner.ExperimentSpec` a *stable content hash* —
every axis value, the seed, the fault schedule, and any platform-config
overrides — and persists each finished run to
``<out_dir>/runs/<hash>.json``. Re-running the same suite with
``resume=True`` then loads the grid points whose files already exist
and executes only the missing ones, producing a
:class:`~repro.core.scenario.SuiteResult` identical to an uninterrupted
run (the simulator is deterministic per seed, and nothing wall-clock
dependent is persisted).

The same hash is the join key for ``blockbench suite --compare``
(:mod:`repro.core.compare`): two result directories align run-by-run
exactly when their specs are byte-equal, however the grids were
ordered or parallelized.

Layout of a result directory::

    out_dir/
      runs/<spec-hash>.json   one file per completed grid point
      suite.json              manifest: merged summary + run hashes

Run files are written atomically (temp file + rename), so a crash
mid-write never leaves a truncated file that a later ``--resume`` would
trust; an unreadable or mismatched file is treated as missing and the
point is simply re-run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, fields, is_dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..errors import BenchmarkError
from .runner import ExperimentResult, ExperimentSpec
from .stats import StatsCollector, StatsSummary
from .trace import StageBreakdown

if TYPE_CHECKING:  # pragma: no cover
    from .scenario import SuiteResult

__all__ = [
    "RUN_SCHEMA",
    "MANIFEST_SCHEMA",
    "SuiteStore",
    "spec_hash",
    "spec_to_dict",
    "result_to_dict",
    "result_from_dict",
]

#: Per-run result file schema identifier; bump on incompatible change.
RUN_SCHEMA = "blockbench-suite-run/1"
#: Suite manifest (``suite.json``) schema identifier.
MANIFEST_SCHEMA = "blockbench-suite/1"


# ---------------------------------------------------------------------------
# Canonical spec serialization and hashing
# ---------------------------------------------------------------------------
def _canonical_config(config: Any) -> Any:
    """JSON-stable form of a platform config for hashing/bookkeeping.

    Dataclass configs (the presets) serialize as their field tree plus
    a type tag, so two classes with coincidentally equal fields hash
    apart. Plain JSON values pass through. Anything else has no stable
    textual form (default ``repr`` embeds object identity), so it is
    rejected — resumable suites should express knobs as JSON
    ``overrides`` instead.
    """
    if config is None:
        return None
    if is_dataclass(config) and not isinstance(config, type):
        return {"__type__": type(config).__qualname__, **asdict(config)}
    if isinstance(config, (str, int, float, bool)):
        return config
    if isinstance(config, dict):
        return {str(k): _canonical_config(v) for k, v in config.items()}
    if isinstance(config, (list, tuple)):
        return [_canonical_config(v) for v in config]
    raise BenchmarkError(
        f"config of type {type(config).__name__!r} has no stable "
        "serialization; resumable suites need dataclass configs or "
        "JSON 'overrides'"
    )


def _canonical_faults(faults: Any) -> dict[str, Any] | None:
    """JSON-shaped fault schedule, minus runtime state."""
    if faults is None:
        return None
    data = asdict(faults)
    # Filled in while a schedule is armed against a cluster; two specs
    # with the same *planned* faults must hash identically.
    data.pop("crashed_node_ids", None)
    data.pop("byzantine_node_ids", None)
    # The byzantines list postdates the run-file schema: empty, it is
    # omitted so every fault-bearing spec hashed before it existed keeps
    # its hash (committed baselines, resumable result directories).
    if not data.get("byzantines"):
        data.pop("byzantines", None)
    # CrashFault's recovery fields postdate the schema too: stripped at
    # their defaults so a plain crash spec hashed before recover_at
    # existed keeps its hash. ``count`` went from required to optional
    # in the same change — it can only be None on a new-style entry.
    for crash in data.get("crashes", []):
        for name, default in (
            ("count", None),
            ("nodes", None),
            ("recover_at", None),
            ("recovery_mode", "warm"),
        ):
            if name in crash and crash[name] == default:
                del crash[name]
    return data


#: Spec fields added after the run-file schema shipped. At their
#: defaults they are *omitted* from the canonical dict, so every spec
#: hash computed before they existed stays valid (committed baselines,
#: resumable result directories); a non-default value enters the dict
#: and hashes the run apart, as any real axis must.
_OPTIONAL_SPEC_FIELDS: dict[str, Any] = {
    "arrival": None,
    "stats_reservoir": 0,
    "read_ratio": None,
    "trace_stages": True,
    "failover": False,
    "max_backoff_s": 2.0,
}


def spec_to_dict(spec: ExperimentSpec) -> dict[str, Any]:
    """Every field of ``spec`` as JSON-serializable values.

    The dict is the canonical form: :func:`spec_hash` hashes it, and
    run files embed it so a result directory is self-describing.
    """
    data: dict[str, Any] = {}
    for field_ in fields(ExperimentSpec):
        value = getattr(spec, field_.name)
        if field_.name == "faults":
            value = _canonical_faults(value)
        elif field_.name == "config":
            value = _canonical_config(value)
        if (
            field_.name in _OPTIONAL_SPEC_FIELDS
            and value == _OPTIONAL_SPEC_FIELDS[field_.name]
        ):
            continue
        data[field_.name] = value
    return data


def spec_hash(spec: ExperimentSpec) -> str:
    """Stable content address of one grid point.

    SHA-256 over the sorted-key JSON of :func:`spec_to_dict`, truncated
    to 16 hex chars. Identical across processes, interpreter restarts,
    and platforms: ``json.dumps`` of the same primitives is
    deterministic (``repr``-based float formatting is exact round-trip
    text since Python 3.1), and dataclass field order never enters —
    keys are sorted.
    """
    canon = json.dumps(
        spec_to_dict(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Result (de)serialization
# ---------------------------------------------------------------------------
def _summary_to_dict(summary: StatsSummary) -> dict[str, Any]:
    """``asdict`` with the stage breakdown omitted when tracing was
    off — run files then stay byte-identical to the pre-tracing
    schema. Recovery metrics are likewise omitted when nothing
    recovered during the run."""
    data = asdict(summary)
    if data.get("stage_breakdown") is None:
        data.pop("stage_breakdown", None)
    if not data.get("recovery_time_s"):
        data.pop("recovery_time_s", None)
        if not (
            data.get("sync_requests")
            or data.get("sync_blocks")
            or data.get("sync_bytes")
        ):
            data.pop("sync_requests", None)
            data.pop("sync_blocks", None)
            data.pop("sync_bytes", None)
    return data


def result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """The persistable view of one finished run.

    Everything ``SuiteResult`` consumes — the summary and the
    cluster-level measurements — plus the queue series. The raw
    :class:`StatsCollector` (per-transaction latencies) is *not*
    persisted: it is unbounded in the duration and nothing downstream
    of a merged suite reads it. No wall-clock fields exist anywhere in
    the payload, so a resumed suite is byte-identical to an
    uninterrupted one.
    """
    return {
        "schema": RUN_SCHEMA,
        "spec_hash": spec_hash(result.spec),
        "spec": spec_to_dict(result.spec),
        "summary": _summary_to_dict(result.summary),
        "queue_series": [list(sample) for sample in result.queue_series],
        "chain_height": result.chain_height,
        "total_blocks": result.total_blocks,
        "main_branch_blocks": result.main_branch_blocks,
        "mean_cpu_pct": result.mean_cpu_pct,
        "mean_net_mbps": result.mean_net_mbps,
        "view_changes": result.view_changes,
        "stale_executions": result.stale_executions,
        "safety_violations": result.safety_violations,
        "safety_report": result.safety_report,
    }


def result_from_dict(
    data: dict[str, Any], spec: ExperimentSpec
) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from a run file's payload.

    ``spec`` is the *live* spec the suite expanded (the file was found
    by its hash), so lookups over a resumed ``SuiteResult`` compare
    against real objects — including config instances and fault
    schedules the JSON form only approximates. The rebuilt stats
    collector carries the counters but not per-transaction latencies
    (see :func:`result_to_dict`).
    """
    summary_data = dict(data["summary"])
    breakdown = summary_data.get("stage_breakdown")
    if breakdown is not None:
        # Stored as the asdict tree; rebuild the dataclass so a resumed
        # suite serializes identically to a live one.
        summary_data["stage_breakdown"] = StageBreakdown.from_dict(breakdown)
    summary = StatsSummary(**summary_data)
    stats = StatsCollector(platform=summary.platform, workload=summary.workload)
    stats.submitted = summary.submitted
    stats.rejected = summary.rejected
    stats.finish(summary.duration_s)
    return ExperimentResult(
        spec=spec,
        summary=summary,
        stats=stats,
        queue_series=[tuple(sample) for sample in data["queue_series"]],
        chain_height=data["chain_height"],
        total_blocks=data["total_blocks"],
        main_branch_blocks=data["main_branch_blocks"],
        mean_cpu_pct=data["mean_cpu_pct"],
        mean_net_mbps=data["mean_net_mbps"],
        view_changes=data["view_changes"],
        stale_executions=data["stale_executions"],
        # .get: run files written before the safety auditor existed.
        safety_violations=data.get("safety_violations", 0),
        safety_report=data.get("safety_report"),
    )


# ---------------------------------------------------------------------------
# The on-disk store
# ---------------------------------------------------------------------------
class SuiteStore:
    """One result directory: ``runs/<hash>.json`` files + a manifest."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, spec: ExperimentSpec) -> Path:
        return self.runs_dir / f"{spec_hash(spec)}.json"

    def load(self, spec: ExperimentSpec) -> ExperimentResult | None:
        """The stored result for ``spec``, or None if absent/unusable.

        Unusable covers truncated JSON, a wrong schema, and a file
        whose embedded hash disagrees with its name — all treated as
        "not run yet" so ``--resume`` degrades to re-running the point
        rather than trusting a damaged file.
        """
        path = self.path_for(spec)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(data, dict)
            or data.get("schema") != RUN_SCHEMA
            or data.get("spec_hash") != path.stem
        ):
            return None
        try:
            return result_from_dict(data, spec)
        except (KeyError, TypeError):
            return None

    def save(self, result: ExperimentResult) -> Path:
        """Persist one finished run atomically; returns the file path."""
        path = self.path_for(result.spec)
        payload = json.dumps(result_to_dict(result), indent=2) + "\n"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(payload)
        os.replace(tmp, path)
        return path

    def write_manifest(self, suite_result: "SuiteResult") -> Path:
        """Write ``suite.json``: the merged summary plus run hashes."""
        payload = {
            "schema": MANIFEST_SCHEMA,
            "run_hashes": [spec_hash(r.spec) for r in suite_result.results],
            **suite_result.to_json(),
        }
        path = self.root / "suite.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, path)
        return path

    def gc(self, keep_hashes: set[str]) -> list[Path]:
        """Remove run files whose spec hash is not in ``keep_hashes``.

        The pruning half of the store lifecycle: when a scenario grid
        changes (an axis dropped, a rate retuned), the old grid
        points' run files linger and would silently inflate any
        directory-level comparison. Returns the paths removed, sorted.
        ``suite.json`` is left alone — the next ``run()`` against the
        store rewrites it from the live grid.

        Anything in ``runs/`` that is not a well-formed run file
        (``*.json.tmp`` droppings, foreign files) is untouched: gc
        only ever deletes what the store itself wrote.
        """
        removed: list[Path] = []
        for path in sorted(self.runs_dir.glob("*.json")):
            if path.stem in keep_hashes:
                continue
            try:
                data = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if (
                isinstance(data, dict)
                and data.get("schema") == RUN_SCHEMA
                and data.get("spec_hash") == path.stem
            ):
                path.unlink()
                removed.append(path)
        return removed

    @staticmethod
    def load_runs(root: str | Path) -> dict[str, dict[str, Any]]:
        """All valid run payloads in a result directory, keyed by hash.

        The entry point for ``--compare``: it needs the raw dicts (two
        directories may come from different code revisions, so the live
        ``ExperimentSpec`` class is not the common language — the JSON
        is). Raises when the directory has no runs at all; silently
        skips individual files that fail validation the same way
        :meth:`load` would.
        """
        runs_dir = Path(root) / "runs"
        if not runs_dir.is_dir():
            raise BenchmarkError(
                f"{root} is not a suite result directory (no runs/ inside); "
                "expected the --out-dir of a previous 'blockbench suite' run"
            )
        runs: dict[str, dict[str, Any]] = {}
        for path in sorted(runs_dir.glob("*.json")):
            try:
                data = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if (
                isinstance(data, dict)
                and data.get("schema") == RUN_SCHEMA
                and data.get("spec_hash") == path.stem
            ):
                runs[path.stem] = data
        if not runs:
            raise BenchmarkError(f"no valid run files under {runs_dir}")
        return runs
