"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at the boundary. Subsystems define narrower
classes here rather than ad-hoc ``ValueError`` instances so that failure
modes are part of the public API.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly."""


class NetworkError(SimulationError):
    """A message could not be routed (unknown node, invalid link)."""


class StorageError(ReproError):
    """Base class for storage-engine failures."""


class KeyNotFound(StorageError, KeyError):
    """Lookup for a missing key where absence is an error."""


class CorruptionError(StorageError):
    """An on-disk structure failed its checksum or framing check."""


class ChainError(ReproError):
    """Invalid block, transaction, or chain operation."""


class InvalidBlock(ChainError):
    """A block failed validation (bad parent, bad roots, bad signature)."""


class InvalidTransaction(ChainError):
    """A transaction failed validation (bad nonce, bad signature, funds)."""


class ConsensusError(ReproError):
    """A consensus protocol reached an illegal state."""


class ExecutionError(ReproError):
    """Base class for smart-contract execution failures."""


class OutOfGas(ExecutionError):
    """Execution exceeded its gas allowance; state changes are reverted."""


class OutOfMemory(ExecutionError):
    """Modeled memory use exceeded the node's memory cap (paper's 'X')."""


class ContractRevert(ExecutionError):
    """The contract aborted explicitly; state changes are reverted."""


class VMError(ExecutionError):
    """Bytecode-level fault: stack underflow, bad jump, bad opcode."""


class AssemblerError(ExecutionError):
    """The EVM assembler rejected a source program."""


class BenchmarkError(ReproError):
    """A benchmark harness was misconfigured."""


class ConnectorError(ReproError):
    """A blockchain connector operation failed."""
