"""YCSB key-value store contract (Table 1: "Key-value store").

The macro-benchmark workhorse: read/write/delete/scan on opaque keys,
matching the YCSB driver's operation mix.
"""

from __future__ import annotations


from ..errors import ContractRevert
from .base import Contract, GasMeter, MeteredState, TxContext


class KVStoreContract(Contract):
    name = "kvstore"

    def op_write(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        key: str, value: str,
    ) -> bool:
        state.put_state(key.encode(), value.encode())
        return True

    def op_read(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter, key: str
    ) -> str | None:
        blob = state.get_state(key.encode())
        return blob.decode() if blob is not None else None

    def op_delete(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter, key: str
    ) -> bool:
        state.delete_state(key.encode())
        return True

    def op_read_modify_write(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        key: str, value: str,
    ) -> bool:
        """YCSB workload F: read a record then update it."""
        existing = state.get_state(key.encode())
        if existing is None:
            raise ContractRevert(f"kvstore: read-modify-write on missing key {key!r}")
        meter.charge_compute(len(existing) // 32 + 1)
        state.put_state(key.encode(), value.encode())
        return True
