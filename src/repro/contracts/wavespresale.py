"""WavesPresale token-sale contract (Table 1: "Crowd sale").

Maintains the total number of tokens sold and a list of sale records
supporting creation, ownership transfer, and point queries — the
composite-structure workload that is trivial in Solidity but requires
separate key-value namespaces on Hyperledger (Section 3.4.1).
"""

from __future__ import annotations

import json

from ..errors import ContractRevert
from .base import Contract, GasMeter, MeteredState, TxContext, decode_int, encode_int

_TOTAL_TOKENS = b"total_tokens"
_SALE_COUNT = b"sale_count"


def _sale_key(sale_id: int) -> bytes:
    return b"sale:" + str(sale_id).encode()


class WavesPresaleContract(Contract):
    name = "wavespresale"

    def op_new_sale(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter, tokens: int
    ) -> int:
        """Record a token purchase; returns the new sale's id."""
        if tokens <= 0:
            raise ContractRevert("wavespresale: token amount must be positive")
        sale_id = decode_int(state.get_state(_SALE_COUNT))
        record = {
            "buyer": ctx.sender,
            "tokens": tokens,
            "timestamp": ctx.timestamp,
        }
        state.put_state(_sale_key(sale_id), json.dumps(record).encode())
        state.put_state(_SALE_COUNT, encode_int(sale_id + 1))
        total = decode_int(state.get_state(_TOTAL_TOKENS)) + tokens
        state.put_state(_TOTAL_TOKENS, encode_int(total))
        return sale_id

    def op_transfer_sale(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        sale_id: int, new_owner: str,
    ) -> bool:
        """Transfer ownership of a previous sale."""
        blob = state.get_state(_sale_key(sale_id))
        if blob is None:
            raise ContractRevert(f"wavespresale: unknown sale {sale_id}")
        record = json.loads(blob)
        if record["buyer"] != ctx.sender:
            raise ContractRevert("wavespresale: only the owner can transfer")
        record["buyer"] = new_owner
        state.put_state(_sale_key(sale_id), json.dumps(record).encode())
        return True

    def op_get_sale(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter, sale_id: int
    ) -> dict | None:
        """Query a specific sale record."""
        blob = state.get_state(_sale_key(sale_id))
        return json.loads(blob) if blob is not None else None

    def op_total_tokens(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter
    ) -> int:
        return decode_int(state.get_state(_TOTAL_TOKENS))

    def op_sale_count(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter
    ) -> int:
        return decode_int(state.get_state(_SALE_COUNT))
