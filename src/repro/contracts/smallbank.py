"""Smallbank OLTP contract (Table 1: "OLTP workload").

The standard Smallbank schema: per-customer savings and checking
balances, with the six classic procedures. Each procedure touches
two to four state slots, which is what makes Smallbank measurably more
expensive than YCSB on every platform (the ~10% throughput drop and
~20% latency rise the paper reports in Section 4.1.1).

All balances are integer cents; overdrafts revert, as in the original
benchmark's constraint checks.
"""

from __future__ import annotations

from ..errors import ContractRevert
from .base import Contract, GasMeter, MeteredState, TxContext, decode_int, encode_int


def _savings_key(customer: str) -> bytes:
    return b"sav:" + customer.encode()


def _checking_key(customer: str) -> bytes:
    return b"chk:" + customer.encode()


class SmallbankContract(Contract):
    name = "smallbank"

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _read(self, state: MeteredState, key: bytes) -> int:
        return decode_int(state.get_state(key))

    def _write(self, state: MeteredState, key: bytes, value: int) -> None:
        state.put_state(key, encode_int(value))

    # ------------------------------------------------------------------
    # Procedures
    # ------------------------------------------------------------------
    def op_create_account(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        customer: str, savings: int = 0, checking: int = 0,
    ) -> bool:
        self._write(state, _savings_key(customer), savings)
        self._write(state, _checking_key(customer), checking)
        return True

    def op_balance(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter, customer: str
    ) -> int:
        """Total balance across both accounts."""
        meter.charge_compute(1)
        return self._read(state, _savings_key(customer)) + self._read(
            state, _checking_key(customer)
        )

    def op_deposit_checking(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        customer: str, amount: int,
    ) -> int:
        if amount < 0:
            raise ContractRevert("smallbank: negative deposit")
        balance = self._read(state, _checking_key(customer)) + amount
        self._write(state, _checking_key(customer), balance)
        return balance

    def op_transact_savings(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        customer: str, amount: int,
    ) -> int:
        balance = self._read(state, _savings_key(customer)) + amount
        if balance < 0:
            raise ContractRevert("smallbank: savings overdraft")
        self._write(state, _savings_key(customer), balance)
        return balance

    def op_write_check(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        customer: str, amount: int,
    ) -> int:
        """Cash a check against checking, allowing a penalty overdraft."""
        savings = self._read(state, _savings_key(customer))
        checking = self._read(state, _checking_key(customer))
        meter.charge_compute(2)
        if amount > savings + checking:
            checking -= amount + 1  # overdraft penalty, per the benchmark
        else:
            checking -= amount
        self._write(state, _checking_key(customer), checking)
        return checking

    def op_send_payment(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        sender: str, recipient: str, amount: int,
    ) -> bool:
        """Move money between two checking accounts (the paper's
        'simply transfers money from one account to another')."""
        if amount < 0:
            raise ContractRevert("smallbank: negative payment")
        source = self._read(state, _checking_key(sender))
        if source < amount:
            raise ContractRevert("smallbank: insufficient funds")
        destination = self._read(state, _checking_key(recipient))
        meter.charge_compute(2)
        self._write(state, _checking_key(sender), source - amount)
        self._write(state, _checking_key(recipient), destination + amount)
        return True

    def op_amalgamate(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        source: str, destination: str,
    ) -> int:
        """Fold one customer's entire balance into another's checking."""
        savings = self._read(state, _savings_key(source))
        checking = self._read(state, _checking_key(source))
        target = self._read(state, _checking_key(destination))
        meter.charge_compute(2)
        self._write(state, _savings_key(source), 0)
        self._write(state, _checking_key(source), 0)
        self._write(state, _checking_key(destination), target + savings + checking)
        return target + savings + checking
