"""Registry of deployable contracts (the paper's Table 1)."""

from __future__ import annotations

from ..errors import ContractRevert
from .base import Contract
from .doubler import DoublerContract
from .etherid import EtherIdContract
from .kvstore import KVStoreContract
from .micro import CPUHeavyContract, DoNothingContract, IOHeavyContract
from .smallbank import SmallbankContract
from .versionkv import VersionKVStoreContract
from .wavespresale import WavesPresaleContract

_CONTRACT_TYPES: dict[str, type[Contract]] = {
    cls.name: cls
    for cls in (
        KVStoreContract,
        SmallbankContract,
        EtherIdContract,
        DoublerContract,
        WavesPresaleContract,
        VersionKVStoreContract,
        IOHeavyContract,
        CPUHeavyContract,
        DoNothingContract,
    )
}


def available_contracts() -> list[str]:
    """Names of every deployable contract."""
    return sorted(_CONTRACT_TYPES)


def create_contract(name: str) -> Contract:
    """Instantiate a contract by registry name."""
    contract_type = _CONTRACT_TYPES.get(name)
    if contract_type is None:
        raise ContractRevert(
            f"unknown contract {name!r}; available: {available_contracts()}"
        )
    return contract_type()
