"""Doubler pyramid-scheme contract (Table 1: "Ponzi scheme", Figure 2).

Participants send money in; early participants are paid 2x their
contribution out of later deposits. The participant list is stored as
indexed key-value entries — exactly the translation the paper describes
for the Hyperledger port ("we need to translate the list operations
into key-value semantics, making the chaincode more bulky").
"""

from __future__ import annotations

import json

from ..errors import ContractRevert
from .base import Contract, GasMeter, MeteredState, TxContext, decode_int, encode_int

_COUNT = b"participant_count"
_BALANCE = b"balance"
_PAYOUT_IDX = b"payout_idx"


def _participant_key(index: int) -> bytes:
    return b"participant:" + str(index).encode()


def _payout_key(user: str) -> bytes:
    return b"paid:" + user.encode()


class DoublerContract(Contract):
    name = "doubler"

    def op_enter(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter
    ) -> list[str]:
        """Join the scheme with ``ctx.value``; pays out early entrants.

        Returns the list of participants paid out by this entry.
        """
        if ctx.value <= 0:
            raise ContractRevert("doubler: must send a positive amount")
        count = decode_int(state.get_state(_COUNT))
        state.put_state(
            _participant_key(count),
            json.dumps({"address": ctx.sender, "amount": ctx.value}).encode(),
        )
        state.put_state(_COUNT, encode_int(count + 1))
        balance = decode_int(state.get_state(_BALANCE)) + ctx.value
        payout_idx = decode_int(state.get_state(_PAYOUT_IDX))
        paid: list[str] = []
        # Pay entrants as long as the pot covers 2x their contribution.
        while payout_idx < count + 1:
            blob = state.get_state(_participant_key(payout_idx))
            entrant = json.loads(blob)
            owed = 2 * entrant["amount"]
            meter.charge_compute(2)
            if balance < owed:
                break
            balance -= owed
            credit = decode_int(state.get_state(_payout_key(entrant["address"])))
            state.put_state(
                _payout_key(entrant["address"]), encode_int(credit + owed)
            )
            paid.append(entrant["address"])
            payout_idx += 1
        state.put_state(_BALANCE, encode_int(balance))
        state.put_state(_PAYOUT_IDX, encode_int(payout_idx))
        return paid

    def op_participant_count(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter
    ) -> int:
        return decode_int(state.get_state(_COUNT))

    def op_pot_balance(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter
    ) -> int:
        return decode_int(state.get_state(_BALANCE))

    def op_payout_of(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter, user: str
    ) -> int:
        """Total amount ever paid out to ``user``."""
        return decode_int(state.get_state(_payout_key(user)))
