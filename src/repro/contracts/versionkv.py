"""VersionKVStore contract (Table 1: "Keep state's versions").

The paper's Hyperledger-only chaincode for the analytics workload
(Appendix C, Figure 20): account balances are stored as explicit
versions keyed ``account:version`` with ``account:latest`` pointing at
the newest, and each version records the block in which it committed.
That lets Q2-style historical range queries run inside one chaincode
invocation instead of one RPC per block — the 10x Q2 win of
Figure 13b.
"""

from __future__ import annotations

import json

from ..errors import ContractRevert
from .base import Contract, GasMeter, MeteredState, TxContext, decode_int, encode_int


def _version_key(account: str, version: int) -> bytes:
    return f"{account}:{version}".encode()


def _latest_key(account: str) -> bytes:
    return f"{account}:latest".encode()


def _block_txn_key(block_number: int) -> bytes:
    return f"block:{block_number}".encode()


class VersionKVStoreContract(Contract):
    name = "versionkv"

    # ------------------------------------------------------------------
    # Figure 20: Invoke_SendValue
    # ------------------------------------------------------------------
    def op_send_value(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        from_account: str, to_account: str, value: int,
    ) -> bool:
        """Transfer ``value``, materializing new balance versions."""
        if value < 0:
            raise ContractRevert("versionkv: negative transfer")
        self._bump(state, meter, from_account, -value, ctx.block_height)
        self._bump(state, meter, to_account, value, ctx.block_height)
        # Append to the block's transaction list (Query_BlockTransactionList).
        block_key = _block_txn_key(ctx.block_height)
        blob = state.get_state(block_key)
        txn_list = json.loads(blob) if blob is not None else []
        txn_list.append({"from": from_account, "to": to_account, "val": value})
        state.put_state(block_key, json.dumps(txn_list).encode())
        return True

    def _bump(
        self, state: MeteredState, meter: GasMeter,
        account: str, delta: int, block_height: int,
    ) -> None:
        version = decode_int(state.get_state(_latest_key(account)), default=-1)
        if version >= 0:
            blob = state.get_state(_version_key(account, version))
            balance = json.loads(blob)["balance"]
        else:
            balance = 0
        record = {"balance": balance + delta, "commit_block": block_height}
        state.put_state(
            _version_key(account, version + 1), json.dumps(record).encode()
        )
        state.put_state(_latest_key(account), encode_int(version + 1))

    # ------------------------------------------------------------------
    # Figure 20: Query_BlockTransactionList
    # ------------------------------------------------------------------
    def op_block_txn_list(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        block_number: int,
    ) -> list[dict]:
        blob = state.get_state(_block_txn_key(block_number))
        return json.loads(blob) if blob is not None else []

    # ------------------------------------------------------------------
    # Figure 20: Query_AccountBlockRange
    # ------------------------------------------------------------------
    def op_account_block_range(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        account: str, start_block: int, end_block: int,
    ) -> list[dict]:
        """Balance versions committed in [start_block, end_block).

        Walks versions newest-to-oldest, stopping once versions predate
        the range — the single-invocation scan that replaces one RPC
        per block (Appendix C).
        """
        version = decode_int(state.get_state(_latest_key(account)), default=-1)
        results: list[dict] = []
        while version >= 0:
            blob = state.get_state(_version_key(account, version))
            record = json.loads(blob)
            meter.charge_compute(1)
            commit_block = record["commit_block"]
            if start_block <= commit_block < end_block:
                results.append(record)
            elif commit_block < start_block:
                break
            version -= 1
        return results

    def op_balance_of(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter, account: str
    ) -> int:
        version = decode_int(state.get_state(_latest_key(account)), default=-1)
        if version < 0:
            return 0
        blob = state.get_state(_version_key(account, version))
        return json.loads(blob)["balance"]
