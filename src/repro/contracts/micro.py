"""Micro-benchmark contracts: IOHeavy, CPUHeavy, DoNothing (Table 1).

* **IOHeavy** performs bulk random reads/writes of 20-byte keys and
  100-byte values, stressing the data-model layer (Figure 12).
* **CPUHeavy** initializes a descending integer array and quicksorts
  it, stressing the execution layer (Figure 11). This native version is
  what Hyperledger runs ("compiled and runs directly on the native
  machine within Docker") — the sort itself executes at interpreter-
  native speed, standing in for compiled Go. The EVM version lives in
  ``repro.evm.programs``.
* **DoNothing** accepts a transaction and returns, isolating consensus
  cost (Figure 13c).
"""

from __future__ import annotations

import hashlib

from ..errors import ContractRevert
from .base import Contract, GasMeter, MeteredState, TxContext

VALUE_SIZE = 100  # bytes, per Section 4.2.2
KEY_PREFIX = b"io:"


def _io_key(index: int) -> bytes:
    # 20-byte keys, as in the paper's IOHeavy setup; zero-padded on the
    # left so indices can never collide (io:5 vs io:50).
    return KEY_PREFIX + f"{index:017d}".encode()


def _io_value(index: int) -> bytes:
    seed = hashlib.sha256(str(index).encode()).digest()
    return (seed * ((VALUE_SIZE // len(seed)) + 1))[:VALUE_SIZE]


class IOHeavyContract(Contract):
    name = "ioheavy"

    def op_write_batch(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        start: int, count: int,
    ) -> int:
        """Write ``count`` synthetic tuples starting at index ``start``."""
        for index in range(start, start + count):
            state.put_state(_io_key(index), _io_value(index))
        return count

    def op_read_batch(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        start: int, count: int,
    ) -> int:
        """Read ``count`` tuples; returns how many were present."""
        found = 0
        for index in range(start, start + count):
            if state.get_state(_io_key(index)) is not None:
                found += 1
        return found

    def op_scan_verify(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        start: int, count: int,
    ) -> bool:
        """Read a range and verify contents (failure-injection tests)."""
        for index in range(start, start + count):
            blob = state.get_state(_io_key(index))
            if blob is not None and blob != _io_value(index):
                raise ContractRevert(f"ioheavy: corrupted tuple {index}")
        return True


class CPUHeavyContract(Contract):
    name = "cpuheavy"

    #: Gas per comparison, matching the EVM program's measured ~30
    #: steps x ~4 gas per element-comparison loop iteration.
    GAS_PER_COMPARISON = 120

    def op_sort(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter, n: int
    ) -> int:
        """Sort a descending n-array; returns the smallest element."""
        if n < 1:
            raise ContractRevert("cpuheavy: n must be >= 1")
        array = list(range(n, 0, -1))
        # The sort runs at native speed (CPython's C sort standing in
        # for compiled Go chaincode); gas still reflects the work.
        array.sort()
        comparisons = max(1, int(n * max(1, n.bit_length())))
        meter.charge(self.GAS_PER_COMPARISON * comparisons)
        if array[0] != 1 or array[-1] != n:
            raise ContractRevert("cpuheavy: sort postcondition failed")
        return array[0]


class DoNothingContract(Contract):
    name = "donothing"

    def op_nop(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter
    ) -> bool:
        """Accept the transaction and return immediately."""
        return True
