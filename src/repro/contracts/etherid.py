"""EtherId domain-name registrar contract (Table 1: "Name registrar").

Mirrors the real EtherId contract the paper ports: domain creation,
value modification, and paid ownership transfer. As in the paper's
Hyperledger port, two key-value namespaces coexist — one for domain
records, one for user balances — and transfers check the requester's
funds before updating ownership (Section 3.4.1).
"""

from __future__ import annotations

import json

from ..errors import ContractRevert
from .base import Contract, GasMeter, MeteredState, TxContext, decode_int, encode_int


def _domain_key(domain: str) -> bytes:
    return b"domain:" + domain.encode()


def _balance_key(user: str) -> bytes:
    return b"balance:" + user.encode()


class EtherIdContract(Contract):
    name = "etherid"

    # ------------------------------------------------------------------
    def _get_domain(self, state: MeteredState, domain: str) -> dict | None:
        blob = state.get_state(_domain_key(domain))
        return json.loads(blob) if blob is not None else None

    def _put_domain(self, state: MeteredState, domain: str, record: dict) -> None:
        state.put_state(_domain_key(domain), json.dumps(record).encode())

    # ------------------------------------------------------------------
    def op_fund(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        user: str, amount: int,
    ) -> int:
        """Pre-allocate a user balance ('to simulate real workloads')."""
        balance = decode_int(state.get_state(_balance_key(user))) + amount
        state.put_state(_balance_key(user), encode_int(balance))
        return balance

    def op_balance_of(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter, user: str
    ) -> int:
        return decode_int(state.get_state(_balance_key(user)))

    def op_register(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        domain: str, value: str = "", price: int = 0,
    ) -> bool:
        """Create a domain owned by the sender; fails if taken."""
        if self._get_domain(state, domain) is not None:
            raise ContractRevert(f"etherid: domain {domain!r} already registered")
        self._put_domain(
            state,
            domain,
            {"owner": ctx.sender, "value": value, "price": price},
        )
        return True

    def op_set_value(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        domain: str, value: str,
    ) -> bool:
        record = self._get_domain(state, domain)
        if record is None:
            raise ContractRevert(f"etherid: unknown domain {domain!r}")
        if record["owner"] != ctx.sender:
            raise ContractRevert("etherid: only the owner can modify a domain")
        record["value"] = value
        self._put_domain(state, domain, record)
        return True

    def op_set_price(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter,
        domain: str, price: int,
    ) -> bool:
        record = self._get_domain(state, domain)
        if record is None:
            raise ContractRevert(f"etherid: unknown domain {domain!r}")
        if record["owner"] != ctx.sender:
            raise ContractRevert("etherid: only the owner can set a price")
        record["price"] = price
        self._put_domain(state, domain, record)
        return True

    def op_buy(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter, domain: str
    ) -> bool:
        """Transfer ownership by paying the current owner's price."""
        record = self._get_domain(state, domain)
        if record is None:
            raise ContractRevert(f"etherid: unknown domain {domain!r}")
        price = record["price"]
        if price <= 0:
            raise ContractRevert(f"etherid: domain {domain!r} is not for sale")
        buyer_balance = decode_int(state.get_state(_balance_key(ctx.sender)))
        if buyer_balance < price:
            raise ContractRevert("etherid: insufficient funds")
        seller = record["owner"]
        seller_balance = decode_int(state.get_state(_balance_key(seller)))
        meter.charge_compute(2)
        state.put_state(_balance_key(ctx.sender), encode_int(buyer_balance - price))
        state.put_state(_balance_key(seller), encode_int(seller_balance + price))
        record["owner"] = ctx.sender
        record["price"] = 0
        self._put_domain(state, domain, record)
        return True

    def op_lookup(
        self, state: MeteredState, ctx: TxContext, meter: GasMeter, domain: str
    ) -> dict | None:
        return self._get_domain(state, domain)
