"""Smart-contract runtime interface (the paper's execution layer).

Contracts here are the *native* implementations — the semantics shared
by the Solidity versions (Ethereum/Parity) and the Go chaincode
versions (Hyperledger) in Table 1. They program against the
``putState``/``getState`` key-value interface Hyperledger exposes
(Section 3.1.3), which is also sufficient to express the Ethereum data
model in this codebase.

Gas is metered against the Ethereum schedule regardless of platform;
platforms translate gas to CPU time with their own engine factor, which
is how one contract implementation yields the paper's EVM-vs-native
execution gap.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass
from typing import Any, Protocol

from ..errors import ContractRevert
from ..evm.gas import INTRINSIC_TX_GAS, SLOAD_COST, sstore_cost


class StateAccess(Protocol):
    """Persistent contract state, namespaced per contract by platforms."""

    def get_state(self, key: bytes) -> bytes | None:
        """Read this contract's value for ``key`` (None if absent)."""
        ...

    def put_state(self, key: bytes, value: bytes) -> None:
        """Write this contract's value for ``key``."""
        ...

    def delete_state(self, key: bytes) -> None:
        """Remove ``key`` from this contract's storage."""
        ...


class DictState:
    """In-memory StateAccess for tests and standalone execution."""

    def __init__(self) -> None:
        self.data: dict[bytes, bytes] = {}

    def get_state(self, key: bytes) -> bytes | None:
        """Dict-backed read."""
        return self.data.get(key)

    def put_state(self, key: bytes, value: bytes) -> None:
        """Dict-backed write."""
        self.data[key] = value

    def delete_state(self, key: bytes) -> None:
        """Dict-backed delete."""
        self.data.pop(key, None)


@dataclass
class TxContext:
    """Transaction environment visible to a contract invocation."""

    sender: str = "anonymous"
    value: int = 0
    block_height: int = 0
    timestamp: float = 0.0


@dataclass
class InvocationResult:
    """Outcome of one contract call."""

    output: Any
    gas_used: int
    reads: int = 0
    writes: int = 0


class GasMeter:
    """Accumulates gas for a native invocation using the EVM schedule."""

    # One meter is allocated per executed transaction; __slots__ keeps
    # the per-tx cost to three ints with no instance dict.
    __slots__ = ("gas", "reads", "writes")

    def __init__(self) -> None:
        self.gas = INTRINSIC_TX_GAS
        self.reads = 0
        self.writes = 0

    def charge(self, amount: int) -> None:
        """Add a flat gas amount."""
        self.gas += amount

    def charge_compute(self, units: int) -> None:
        """Arithmetic/logic work: ~3 gas per elementary operation."""
        self.gas += 3 * units

    def charge_read(self) -> None:
        """Charge one storage read (SLOAD)."""
        self.reads += 1
        self.gas += SLOAD_COST

    def charge_write(self, was_present: bool, is_delete: bool = False) -> None:
        """Charge one storage write with EVM SSTORE set/reset/clear
        pricing."""
        self.writes += 1
        old = 1 if was_present else 0
        new = 0 if is_delete else 1
        self.gas += sstore_cost(old, new)


class MeteredState:
    """StateAccess wrapper that charges a GasMeter for every touch.

    With a journaled platform state underneath, the presence probes in
    ``put_state``/``delete_state`` are overlay-dict lookups within a
    block — the SSTORE set/reset pricing no longer costs a full trie
    descent per write.
    """

    __slots__ = ("_state", "_meter")

    def __init__(self, state: StateAccess, meter: GasMeter) -> None:
        self._state = state
        self._meter = meter

    def get_state(self, key: bytes) -> bytes | None:
        """Metered read."""
        self._meter.charge_read()
        return self._state.get_state(key)

    def put_state(self, key: bytes, value: bytes) -> None:
        """Metered write (plus byte-proportional surcharge)."""
        was_present = self._state.get_state(key) is not None
        self._meter.charge_write(was_present)
        # Byte-proportional surcharge, mirroring calldata/storage costs.
        self._meter.charge(8 * (len(value) // 32))
        self._state.put_state(key, value)

    def delete_state(self, key: bytes) -> None:
        """Metered delete (refund-eligible SSTORE clear)."""
        was_present = self._state.get_state(key) is not None
        self._meter.charge_write(was_present, is_delete=True)
        self._state.delete_state(key)


class Contract(ABC):
    """Base class: dispatches function calls to ``op_<name>`` methods."""

    #: Registry name, e.g. "kvstore"; set by subclasses.
    name: str = ""

    def invoke(
        self,
        state: StateAccess,
        function: str,
        args: tuple[Any, ...],
        ctx: TxContext | None = None,
    ) -> InvocationResult:
        """Run ``function(*args)`` against ``state`` with gas metering."""
        ctx = ctx or TxContext()
        handler = getattr(self, f"op_{function}", None)
        if handler is None:
            raise ContractRevert(f"{self.name}: unknown function {function!r}")
        meter = GasMeter()
        metered = MeteredState(state, meter)
        output = handler(metered, ctx, meter, *args)
        return InvocationResult(
            output=output,
            gas_used=meter.gas,
            reads=meter.reads,
            writes=meter.writes,
        )

    def functions(self) -> list[str]:
        """Names of all invocable functions."""
        return sorted(
            name[3:] for name in dir(self) if name.startswith("op_")
        )


# ---------------------------------------------------------------------------
# Integer codec shared by contracts (big-endian, fixed width like EVM words)
# ---------------------------------------------------------------------------
def encode_int(value: int) -> bytes:
    """Encode an int as a 32-byte big-endian EVM-style word."""
    return value.to_bytes(32, "big", signed=True)


def decode_int(blob: bytes | None, default: int = 0) -> int:
    """Decode a 32-byte word; ``default`` for absent state."""
    if blob is None:
        return default
    return int.from_bytes(blob, "big", signed=True)
