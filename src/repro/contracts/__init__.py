"""Smart contracts: every workload of the paper's Table 1."""

from .base import (
    Contract,
    DictState,
    GasMeter,
    InvocationResult,
    MeteredState,
    StateAccess,
    TxContext,
    decode_int,
    encode_int,
)
from .doubler import DoublerContract
from .etherid import EtherIdContract
from .kvstore import KVStoreContract
from .micro import (
    VALUE_SIZE,
    CPUHeavyContract,
    DoNothingContract,
    IOHeavyContract,
)
from .registry import available_contracts, create_contract
from .smallbank import SmallbankContract
from .versionkv import VersionKVStoreContract
from .wavespresale import WavesPresaleContract

__all__ = [
    "Contract",
    "DictState",
    "GasMeter",
    "InvocationResult",
    "MeteredState",
    "StateAccess",
    "TxContext",
    "decode_int",
    "encode_int",
    "DoublerContract",
    "EtherIdContract",
    "KVStoreContract",
    "VALUE_SIZE",
    "CPUHeavyContract",
    "DoNothingContract",
    "IOHeavyContract",
    "available_contracts",
    "create_contract",
    "SmallbankContract",
    "VersionKVStoreContract",
    "WavesPresaleContract",
]
