#!/usr/bin/env python3
"""Block-size sweep: the Appendix B experiment (paper Figure 15).

Doubling the block size roughly halves the block generation rate, so
overall throughput does not improve — the paper's argument that block
size is not the lever that fixes blockchain throughput. Each platform
exposes the knob differently, exactly as the paper describes:
Hyperledger's ``batchSize``, Ethereum's ``gasLimit`` and Parity's
``stepDuration``.

Per-run config overrides ride the ScenarioSpec ``configs`` axis:
(label, platform config) pairs that the scenario engine expands into
the grid, carrying the label into the merged result.

Run:  python examples/blocksize_sweep.py
"""

from dataclasses import replace

from repro.config import ethereum_config, hyperledger_config, parity_config
from repro.core import ScenarioSpec, ScenarioSuite, format_table

DURATION = 30.0


def knob_scenario(platform, configs):
    """One platform's block-size sweep as a config-axis scenario."""
    return ScenarioSpec(
        name=platform,
        platforms=platform,
        workloads="ycsb",
        servers=4,
        clients=4,
        rates=256,
        durations=DURATION,
        seeds=15,
        configs=configs,
    )


def main() -> None:
    hlf = hyperledger_config()
    par = parity_config()
    suite = ScenarioSuite(
        name="blocksize-sweep",
        scenarios=[
            knob_scenario(
                "hyperledger",
                [
                    (f"batchSize={batch}",
                     replace(hlf, pbft=replace(hlf.pbft, batch_size=batch)))
                    for batch in (250, 500, 1000)
                ],
            ),
            knob_scenario(
                "ethereum",
                [
                    (f"gasLimit={factor:.1f}x",
                     ethereum_config(block_gas_limit=int(20_000_000 * factor)))
                    for factor in (0.5, 1.0, 2.0)
                ],
            ),
            knob_scenario(
                "parity",
                [
                    (f"stepDuration={step}s",
                     replace(par, poa=replace(par.poa, step_duration=step)))
                    for step in (0.5, 1.0, 2.0)
                ],
            ),
        ],
    )
    result = suite.run()
    rows = [
        [
            run.spec.platform,
            run.spec.label,
            f"{run.chain_height / DURATION:.2f}",
            f"{run.throughput:.0f}",
        ]
        for run in result.results
    ]
    print(
        format_table(
            ["platform", "block-size knob", "blocks/s", "tx/s"],
            rows,
            title="Block size vs generation rate (Figure 15 in miniature)",
        )
    )


if __name__ == "__main__":
    main()
