#!/usr/bin/env python3
"""Block-size sweep: the Appendix B experiment (paper Figure 15).

Doubling the block size roughly halves the block generation rate, so
overall throughput does not improve — the paper's argument that block
size is not the lever that fixes blockchain throughput. Each platform
exposes the knob differently, exactly as the paper describes:
Hyperledger's ``batchSize``, Ethereum's ``gasLimit`` and Parity's
``stepDuration``; this example shows how to override a platform config
per run.

Run:  python examples/blocksize_sweep.py
"""

from dataclasses import replace

from repro.config import ethereum_config, hyperledger_config, parity_config
from repro.core import ExperimentSpec, format_table, run_experiment

DURATION = 30.0


def run_one(platform, config):
    result = run_experiment(
        ExperimentSpec(
            platform=platform,
            workload="ycsb",
            n_servers=4,
            n_clients=4,
            request_rate_tx_s=256,
            duration_s=DURATION,
            seed=15,
            config=config,
        )
    )
    return result.chain_height / DURATION, result.throughput


def main() -> None:
    rows = []
    # Hyperledger: batchSize (the paper's direct knob).
    for batch in (250, 500, 1000):
        config = hyperledger_config()
        config = replace(config, pbft=replace(config.pbft, batch_size=batch))
        block_rate, tps = run_one("hyperledger", config)
        rows.append(["hyperledger", f"batchSize={batch}", f"{block_rate:.2f}",
                     f"{tps:.0f}"])
    # Ethereum: gasLimit bounds how many transactions fit a block.
    for factor in (0.5, 1.0, 2.0):
        config = ethereum_config(block_gas_limit=int(20_000_000 * factor))
        block_rate, tps = run_one("ethereum", config)
        rows.append(["ethereum", f"gasLimit={factor:.1f}x", f"{block_rate:.2f}",
                     f"{tps:.0f}"])
    # Parity: stepDuration stretches the authority's sealing slot.
    for step in (0.5, 1.0, 2.0):
        config = parity_config()
        config = replace(config, poa=replace(config.poa, step_duration=step))
        block_rate, tps = run_one("parity", config)
        rows.append(["parity", f"stepDuration={step}s", f"{block_rate:.2f}",
                     f"{tps:.0f}"])
    print(
        format_table(
            ["platform", "block-size knob", "blocks/s", "tx/s"],
            rows,
            title="Block size vs generation rate (Figure 15 in miniature)",
        )
    )


if __name__ == "__main__":
    main()
