#!/usr/bin/env python3
"""Analytics: historical queries over chain data (Figures 13a, 13b).

Q1 (total transferred value in a block range) costs one RPC per block
on every platform. Q2 (largest transfer involving one account) costs
one RPC per block on Ethereum/Parity but a *single* chaincode query on
Hyperledger thanks to the VersionKVStore contract (paper Figure 20) —
the network round trips are the whole difference.

The query clients are generator-coroutines over the awaitable
connector API; ``window`` controls how many RPCs the client keeps in
flight. ``window=1`` (the default) is the paper's sequential client;
the wider window overlaps round trips without changing the answer or
the RPC count — the last column shows the pipelining win.

Run:  python examples/analytics_queries.py
"""

from repro.core import format_table
from repro.platforms import build_cluster
from repro.workloads import preload_history, run_q1, run_q2

N_BLOCKS = 400
SCAN = 100  # blocks scanned by each query
WINDOW = 8  # in-flight RPCs for the pipelined Q2 run


def main() -> None:
    rows = []
    for platform in ("ethereum", "parity", "hyperledger"):
        cluster = build_cluster(platform, 2, seed=11)
        preload = preload_history(
            cluster, n_blocks=N_BLOCKS, txs_per_block=3, n_accounts=120
        )
        account = preload.account_names[0]
        q1 = run_q1(cluster, N_BLOCKS - SCAN, N_BLOCKS)
        q2 = run_q2(cluster, account, N_BLOCKS - SCAN, N_BLOCKS)
        q2_pipelined = run_q2(
            cluster, account, N_BLOCKS - SCAN, N_BLOCKS,
            tag="-pipelined", window=WINDOW,
        )
        assert q2_pipelined.answer == q2.answer
        rows.append(
            [
                platform,
                f"{q1.latency_s * 1000:.1f}",
                q1.rpc_count,
                f"{q2.latency_s * 1000:.1f}",
                q2.rpc_count,
                f"{q2_pipelined.latency_s * 1000:.1f}",
            ]
        )
        cluster.close()
    print(
        format_table(
            ["platform", "Q1 ms", "Q1 RPCs", "Q2 ms", "Q2 RPCs",
             f"Q2 ms (window={WINDOW})"],
            rows,
            title=f"Analytics over {SCAN} blocks (paper Fig. 13a/13b)",
        )
    )
    print("\nHyperledger's Q2 runs as one chaincode query (Figure 20);"
          "\nEthereum/Parity must fetch one balance per block — unless the"
          "\nclient pipelines, which shrinks latency but not RPC count.")


if __name__ == "__main__":
    main()
