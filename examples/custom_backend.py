#!/usr/bin/env python3
"""Integrating a new blockchain backend (the paper's Figure 4 story).

"Any private blockchain can be integrated to Blockbench via simple
APIs": implement IBlockchainConnector and the driver works unchanged.
This example wires up *InstantChain*, a toy centralized ledger that
commits every transaction immediately — useful as an idealized no-
consensus upper bound.

Under the v2 API every connector method returns a SimFuture, and
client code is a straight-line generator-coroutine: ``reply = yield
connector.send_transaction(tx)``. InstantChain resolves its futures
immediately (there is no network), which the coroutine trampoline
handles without growing the stack.

Run:  python examples/custom_backend.py
"""

import random

from repro.chain import Transaction
from repro.contracts import DictState, create_contract
from repro.core import IBlockchainConnector, format_table
from repro.sim import SimFuture, spawn
from repro.workloads import YCSBConfig, YCSBWorkload


def _resolved(payload: dict) -> SimFuture:
    """An already-answered RPC (InstantChain has no round trips)."""
    future = SimFuture()
    future.set_result(payload)
    return future


class InstantChain(IBlockchainConnector):
    """A no-consensus, single-node 'blockchain': the idealized bound."""

    def __init__(self) -> None:
        self.state = DictState()
        self.contracts = {}
        self.blocks: list[list[str]] = []  # one block per commit batch
        self._pending: list[str] = []

    def deploy_application(self, contract_name: str) -> None:
        self.contracts[contract_name] = create_contract(contract_name)

    def send_transaction(self, tx: Transaction, on_reply=None) -> SimFuture:
        contract = self.contracts[tx.contract]
        contract.invoke(self.state, tx.function, tx.args)
        self._pending.append(tx.tx_id)
        if len(self._pending) >= 100:
            self.blocks.append(self._pending)
            self._pending = []
        future = _resolved({"accepted": True, "tx_id": tx.tx_id})
        if on_reply is not None:  # legacy callback compat
            on_reply(future.result())
        return future

    def get_latest_block(self, from_height: int, on_reply=None) -> SimFuture:
        summaries = [
            {"height": h + 1, "tx_ids": txs}
            for h, txs in enumerate(self.blocks)
            if h + 1 > from_height
        ]
        future = _resolved({"blocks": summaries, "tip": len(self.blocks)})
        if on_reply is not None:
            on_reply(future.result())
        return future

    def query(self, contract: str, function: str, args: tuple,
              on_reply=None) -> SimFuture:
        result = self.contracts[contract].invoke(self.state, function, args)
        future = _resolved({"output": result.output})
        if on_reply is not None:
            on_reply(future.result())
        return future


def main() -> None:
    chain = InstantChain()
    chain.deploy_application("kvstore")
    workload = YCSBWorkload(YCSBConfig(record_count=100))
    rng = random.Random(3)

    def bench_client():
        """A complete measurement client in eight straight lines."""
        executed = 0
        for _ in range(1000):
            tx = workload.next_transaction("client-0", rng, 0.0)
            reply = yield chain.send_transaction(tx)
            executed += reply["accepted"]
        update = yield chain.get_latest_block(0)
        sample = yield chain.query("kvstore", "read", ("user1",))
        return executed, update["blocks"], sample["output"]

    executed, confirmed, sample_read = spawn(bench_client()).result()
    print(
        format_table(
            ["backend", "txs executed", "blocks", "sample read"],
            [["InstantChain", executed, len(confirmed), repr(sample_read)[:24]]],
            title="Custom backend through IBlockchainConnector v2",
        )
    )
    print("\nThe same Driver/Workload stack runs against any backend that"
          "\nimplements deploy/send/get_latest_block/query (paper Fig. 4);"
          "\nclients await each call instead of nesting on_reply closures.")


if __name__ == "__main__":
    main()
