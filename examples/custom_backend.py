#!/usr/bin/env python3
"""Integrating a new blockchain backend (the paper's Figure 4 story).

"Any private blockchain can be integrated to Blockbench via simple
APIs": implement IBlockchainConnector and the driver works unchanged.
This example wires up *InstantChain*, a toy centralized ledger that
commits every transaction immediately — useful as an idealized no-
consensus upper bound.

Run:  python examples/custom_backend.py
"""

import random

from repro.chain import Transaction
from repro.contracts import DictState, create_contract
from repro.core import IBlockchainConnector, format_table
from repro.workloads import YCSBConfig, YCSBWorkload


class InstantChain(IBlockchainConnector):
    """A no-consensus, single-node 'blockchain': the idealized bound."""

    def __init__(self) -> None:
        self.state = DictState()
        self.contracts = {}
        self.blocks: list[list[str]] = []  # one block per commit batch
        self._pending: list[str] = []

    def deploy_application(self, contract_name: str) -> None:
        self.contracts[contract_name] = create_contract(contract_name)

    def send_transaction(self, tx: Transaction, on_reply) -> None:
        contract = self.contracts[tx.contract]
        contract.invoke(self.state, tx.function, tx.args)
        self._pending.append(tx.tx_id)
        if len(self._pending) >= 100:
            self.blocks.append(self._pending)
            self._pending = []
        on_reply({"accepted": True, "tx_id": tx.tx_id})

    def get_latest_block(self, from_height: int, on_reply) -> None:
        summaries = [
            {"height": h + 1, "tx_ids": txs}
            for h, txs in enumerate(self.blocks)
            if h + 1 > from_height
        ]
        on_reply({"blocks": summaries, "tip": len(self.blocks)})

    def query(self, contract: str, function: str, args: tuple, on_reply) -> None:
        result = self.contracts[contract].invoke(self.state, function, args)
        on_reply({"output": result.output})


def main() -> None:
    chain = InstantChain()
    chain.deploy_application("kvstore")
    workload = YCSBWorkload(YCSBConfig(record_count=100))
    rng = random.Random(3)

    confirmed = []
    for _ in range(1000):
        tx = workload.next_transaction("client-0", rng, 0.0)
        chain.send_transaction(tx, lambda reply: None)
    chain.get_latest_block(0, lambda reply: confirmed.extend(reply["blocks"]))

    replies = []
    chain.query("kvstore", "read", ("user1",), replies.append)
    print(
        format_table(
            ["backend", "txs executed", "blocks", "sample read"],
            [["InstantChain", 1000, len(confirmed), repr(replies[0]["output"])[:24]]],
            title="Custom backend through IBlockchainConnector",
        )
    )
    print("\nThe same Driver/Workload stack runs against any backend that"
          "\nimplements deploy/send/get_latest_block/query (paper Fig. 4).")


if __name__ == "__main__":
    main()
