#!/usr/bin/env python3
"""Security: partition the network and count forked blocks (Figure 10).

The attack splits an 8-node network in half for 75 simulated seconds
(half the paper's window, to keep the example quick; the Figure 10
benchmark runs the full 150 s schedule).
PoW (Ethereum) and PoA (Parity) keep extending both halves — every
block on the losing branch is a double-spending window. PBFT
(Hyperledger) cannot fork: the partition simply halts it until heal.

Run:  python examples/partition_attack.py
"""

from repro.core import Driver, DriverConfig, format_table, run_partition_attack
from repro.platforms import build_cluster
from repro.workloads import DoNothingWorkload


def attack(platform: str) -> list:
    cluster = build_cluster(platform, 8, seed=31)
    driver = Driver(
        cluster,
        DoNothingWorkload(),
        DriverConfig(n_clients=8, request_rate_tx_s=20, duration_s=200),
    )
    driver.prepare()
    for client in driver.clients:
        client.start(200.0)
    report = run_partition_attack(
        cluster,
        attack_start=50.0,
        attack_duration=75.0,
        total_duration=200.0,
        sample_interval=10.0,
    )
    cluster.close()
    return [
        platform,
        report.samples[-1].total_blocks,
        report.samples[-1].main_branch_blocks,
        report.final_fork_blocks(),
        f"{report.fork_ratio():.3f}",
    ]


def main() -> None:
    rows = [attack(p) for p in ("ethereum", "parity", "hyperledger")]
    print(
        format_table(
            ["platform", "total blocks", "main branch", "forked", "ratio"],
            rows,
            title="Partition attack, 50s..125s of a 200s run (paper Fig. 10)",
        )
    )
    print("\nratio = main/total; 1.0 means no double-spending window.")


if __name__ == "__main__":
    main()
