#!/usr/bin/env python3
"""Fault tolerance: crash 4 of 12 servers mid-run (paper Figure 9).

PBFT with 12 replicas tolerates f = 3 faults and needs a quorum of
N - f = 9; after 4 crashes only 8 replicas remain, so Hyperledger stops
committing entirely. Ethereum keeps mining with the surviving nodes.

Run:  python examples/fault_tolerance.py
"""

from repro.core import (
    CrashFault,
    Driver,
    DriverConfig,
    FaultSchedule,
    format_table,
)
from repro.platforms import build_cluster
from repro.workloads import YCSBConfig, YCSBWorkload

DURATION = 120.0
CRASH_AT = 60.0


def run(platform: str) -> list:
    cluster = build_cluster(platform, 12, seed=9)
    driver = Driver(
        cluster,
        YCSBWorkload(YCSBConfig(record_count=200)),
        DriverConfig(n_clients=4, request_rate_tx_s=40, duration_s=DURATION),
    )
    driver.prepare()
    # Crash from the tail of the node list: the four clients poll
    # servers 0-3, so the clients' own servers stay up and any halt we
    # observe is the *consensus layer's*, not a dead RPC endpoint.
    # PBFT's quorum argument is indifferent to which replicas die.
    FaultSchedule(
        crashes=[CrashFault(at_time=CRASH_AT, count=4, include_leader=False)]
    ).arm(cluster)
    stats = driver.run()
    before = sum(1 for t in stats.confirm_times if t <= CRASH_AT)
    after = sum(1 for t in stats.confirm_times if t > CRASH_AT + 5)
    cluster.close()
    return [platform, before, after, "HALTED" if after == 0 else "survived"]


def main() -> None:
    rows = [run(p) for p in ("hyperledger", "ethereum")]
    print(
        format_table(
            ["platform", "commits before crash", "commits after", "verdict"],
            rows,
            title=f"12 servers, 4 crashed at t={CRASH_AT:.0f}s (paper Fig. 9)",
        )
    )


if __name__ == "__main__":
    main()
