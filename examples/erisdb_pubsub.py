#!/usr/bin/env python3
"""ErisDB: Tendermint consensus and the publish/subscribe block feed.

The paper lists ErisDB as a backend "under development" (Section 3.2)
and notes that its publish/subscribe interface "could simplify the
implementation" of the driver's getLatestBlock polling loop. This
example runs the completed integration both ways:

1. a live block subscription consumed by a watcher *coroutine*
   (``block = yield subscription.next_block()``), which unsubscribes
   partway through — tearing the subscription down on the server too,
   so the node stops publishing to it; and
2. the same YCSB run in polling and subscribe mode, showing the push
   path confirms transactions without the polling-interval delay.

Run:  python examples/erisdb_pubsub.py
"""

from repro.core import Driver, DriverConfig, format_table
from repro.core.connector import RPCClient, SimChainConnector
from repro.platforms import build_cluster
from repro.workloads import YCSBConfig, YCSBWorkload

WATCH_UNTIL_HEIGHT = 20  # the watcher cancels after this many blocks


def run_once(subscribe: bool, seed: int = 11):
    cluster = build_cluster("erisdb", n_nodes=4, seed=seed)
    workload = YCSBWorkload(YCSBConfig(record_count=500))

    # An out-of-band watcher with its own subscription, to show the feed
    # is a first-class interface, not a driver internal.
    watcher = RPCClient("watcher", cluster.scheduler, cluster.network)
    connector = SimChainConnector(cluster, watcher, cluster.node_ids()[0])
    events: list[dict] = []
    if subscribe:
        subscription = connector.subscribe_new_blocks(0)

        def watch():
            """Consume the stream, then hang up mid-run."""
            while True:
                block = yield subscription.next_block()
                events.append(block)
                if block["height"] >= WATCH_UNTIL_HEIGHT:
                    subscription.cancel()  # server stops publishing to us
                    return

        cluster.scheduler.spawn(watch())

    driver = Driver(
        cluster,
        workload,
        DriverConfig(
            n_clients=4,
            request_rate_tx_s=64,
            duration_s=45,
            subscribe=subscribe,
        ),
    )
    stats = driver.run()
    messages = cluster.network.stats.messages_sent
    cluster.close()
    return stats, events, messages


def main() -> None:
    polled, _, polled_msgs = run_once(subscribe=False)
    pushed, events, pushed_msgs = run_once(subscribe=True)

    rows = [
        ["polling", f"{polled.throughput():.0f}", f"{polled.latency_avg():.2f}",
         polled_msgs],
        ["subscribe", f"{pushed.throughput():.0f}", f"{pushed.latency_avg():.2f}",
         pushed_msgs],
    ]
    print(format_table(
        ["confirmation mode", "tx/s", "latency (s)", "network messages"],
        rows,
        title="ErisDB (Tendermint + EVM): polling vs publish/subscribe",
    ))

    print(f"\nwatcher consumed {len(events)} block events before "
          f"unsubscribing at height {WATCH_UNTIL_HEIGHT}; first five:")
    for event in events[:5]:
        print(
            f"  height {event['height']:>3}  "
            f"t={event['timestamp']:.2f}s  {len(event['tx_ids'])} txs"
        )


if __name__ == "__main__":
    main()
