#!/usr/bin/env python3
"""Compare Ethereum, Parity, and Hyperledger on the same workload.

Reproduces the qualitative story of the paper's Figure 5 at a small
scale: Hyperledger leads on throughput, Parity is capped at a constant
rate by server-side signing (watch the rejected count), and Ethereum
sits in between with the highest latency.

The comparison is one declarative ScenarioSpec — the platform axis is
the only thing that varies — executed by the scenario engine. The same
grid expressed as JSON runs via ``blockbench suite`` (see
examples/scenarios/peak_sweep.json).

Run:  python examples/compare_platforms.py
"""

from repro.core import ScenarioSpec, ScenarioSuite
from repro.core.report import format_table


def main() -> None:
    suite = ScenarioSuite(
        name="compare-platforms",
        scenarios=[
            ScenarioSpec(
                name="ycsb",
                platforms=("ethereum", "parity", "hyperledger"),
                workloads="ycsb",
                servers=4,
                clients=4,
                rates=100,
                durations=60,
                seeds=7,
            )
        ],
    )
    result = suite.run()
    rows = []
    for platform in ("ethereum", "parity", "hyperledger"):
        run = result.one(platform=platform)
        summary = run.summary
        rows.append(
            [
                platform,
                f"{summary.throughput_tx_s:.0f}",
                f"{summary.latency_avg_s:.2f}",
                summary.rejected,
                run.chain_height,
                summary.final_queue_length,
            ]
        )
    print(
        format_table(
            ["platform", "tx/s", "latency (s)", "rejected", "blocks", "queue"],
            rows,
            title="YCSB, 4 servers x 4 clients x 100 tx/s (simulated 60 s)",
        )
    )
    print("\nExpected shape (paper Fig. 5): hyperledger >> ethereum > parity"
          " on throughput; parity lowest latency; ethereum highest.")


if __name__ == "__main__":
    main()
