#!/usr/bin/env python3
"""Compare Ethereum, Parity, and Hyperledger on the same workload.

Reproduces the qualitative story of the paper's Figure 5 at a small
scale: Hyperledger leads on throughput, Parity is capped at a constant
rate by server-side signing (watch the rejected count), and Ethereum
sits in between with the highest latency.

Run:  python examples/compare_platforms.py
"""

from repro.core import ExperimentSpec, run_experiment
from repro.core.report import format_table


def main() -> None:
    rows = []
    for platform in ("ethereum", "parity", "hyperledger"):
        result = run_experiment(
            ExperimentSpec(
                platform=platform,
                workload="ycsb",
                n_servers=4,
                n_clients=4,
                request_rate_tx_s=100,
                duration_s=60,
                seed=7,
            )
        )
        summary = result.summary
        rows.append(
            [
                platform,
                f"{summary.throughput_tx_s:.0f}",
                f"{summary.latency_avg_s:.2f}",
                summary.rejected,
                result.chain_height,
                summary.final_queue_length,
            ]
        )
    print(
        format_table(
            ["platform", "tx/s", "latency (s)", "rejected", "blocks", "queue"],
            rows,
            title="YCSB, 4 servers x 4 clients x 100 tx/s (simulated 60 s)",
        )
    )
    print("\nExpected shape (paper Fig. 5): hyperledger >> ethereum > parity"
          " on throughput; parity lowest latency; ethereum highest.")


if __name__ == "__main__":
    main()
