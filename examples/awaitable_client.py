#!/usr/bin/env python3
"""A scenario-diverse custom client on the awaitable connector API.

The driver's built-in clients are open-loop (fixed offered rate). Many
interesting scenarios aren't: a closed-loop client that interleaves
writes with reads-of-its-own-writes, backs off when rejected, and
measures the read-your-write staleness window. Under the callback API
this is a pyramid of nested ``on_reply`` closures; as a coroutine it
is a ``for`` loop.

The client below, per iteration:

1. submits a Smallbank payment and awaits acceptance,
2. polls getLatestBlock until the payment is confirmed,
3. immediately queries the destination balance,

and records how long confirmation took. Everything runs on the
deterministic simulated network — same seed, same numbers.

Run:  python examples/awaitable_client.py
"""

from repro.chain import Transaction
from repro.contracts.base import encode_int
from repro.core import format_table
from repro.core.connector import RPCClient, SimChainConnector
from repro.core.workload import preload_state
from repro.platforms import build_cluster

N_PAYMENTS = 12
ACCOUNTS = ("alice", "bob")


def closed_loop_client(cluster, connector, results):
    """Write -> await confirmation -> read back, N_PAYMENTS times."""
    scheduler = cluster.scheduler
    confirmed_height = 0
    for i in range(N_PAYMENTS):
        tx = Transaction.create(
            "probe", "smallbank", "send_payment",
            ("alice", "bob", 100 + i), value=100 + i, nonce=i,
        )
        submitted_at = scheduler.now
        reply = yield connector.send_transaction(tx)
        while not reply.get("accepted"):
            yield scheduler.sleep(0.25)  # backoff, like a 429
            reply = yield connector.send_transaction(tx)
        # Closed loop: poll until *this* transaction is in a block.
        while True:
            update = yield connector.get_latest_block(confirmed_height)
            found = False
            for block in update.get("blocks", []):
                confirmed_height = max(confirmed_height, block["height"])
                found = found or tx.tx_id in block["tx_ids"]
            if found:
                break
            yield scheduler.sleep(0.2)
        read = yield connector.query("smallbank", "balance", ("bob",))
        results.append((i, scheduler.now - submitted_at, read.get("output")))


def main() -> None:
    cluster = build_cluster("hyperledger", 4, seed=21)
    for node in cluster.nodes:
        node.deploy("smallbank")
    preload_state(
        cluster, "smallbank",
        [(b"chk:" + name.encode(), encode_int(10_000)) for name in ACCOUNTS]
        + [(b"sav:" + name.encode(), encode_int(0)) for name in ACCOUNTS],
    )
    rpc = RPCClient("probe", cluster.scheduler, cluster.network)
    connector = SimChainConnector(cluster, rpc, cluster.node_ids()[0])

    results: list[tuple[int, float, int]] = []
    future = cluster.scheduler.spawn(
        closed_loop_client(cluster, connector, results)
    )
    cluster.run_until(120.0)
    assert future.done, "client did not finish inside the window"

    rows = [
        [i, f"{latency:.2f}", balance] for i, latency, balance in results[-6:]
    ]
    print(
        format_table(
            ["payment #", "confirm latency (s)", "bob's balance after"],
            rows,
            title="Closed-loop read-your-writes client (last 6 payments)",
        )
    )
    print("\nOne coroutine, three awaited RPC kinds, zero nested callbacks.")


if __name__ == "__main__":
    main()
