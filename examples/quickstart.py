#!/usr/bin/env python3
"""Quickstart: benchmark a 4-node Hyperledger network with YCSB.

This is the smallest complete BLOCKBENCH loop: build a simulated
private testnet, attach workload clients, run for a simulated minute,
and print the Section-3.3 metrics (throughput, latency, queue).

Run:  python examples/quickstart.py
"""

from repro.core import Driver, DriverConfig, SUMMARY_HEADERS, format_table, summary_row
from repro.platforms import build_cluster
from repro.workloads import YCSBConfig, YCSBWorkload


def main() -> None:
    # 1. A private testnet: 4 validating peers running PBFT.
    cluster = build_cluster("hyperledger", n_nodes=4, seed=42)

    # 2. A YCSB workload preloaded with 1,000 records (workload A mix).
    workload = YCSBWorkload(YCSBConfig(record_count=1000))

    # 3. Four clients, each offering 100 tx/s for 60 simulated seconds.
    driver = Driver(
        cluster,
        workload,
        DriverConfig(n_clients=4, request_rate_tx_s=100, duration_s=60),
    )
    stats = driver.run()

    # 4. Results.
    print(format_table(SUMMARY_HEADERS, [summary_row(stats.summary())],
                       title="BLOCKBENCH quickstart (simulated 60 s)"))
    print(f"\nchain height: {cluster.chain_height()} blocks")
    print(f"latency p50/p95: {stats.latency_percentile(50):.2f}s / "
          f"{stats.latency_percentile(95):.2f}s")
    cluster.close()


if __name__ == "__main__":
    main()
