"""Tests for the integration layer."""
