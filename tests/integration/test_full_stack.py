"""Cross-module integration tests: the full Figure-4 pipeline.

These run the real stack end to end — driver, connectors, platform
nodes, consensus, contracts, state trees — and assert invariants that
only hold when every layer cooperates: replicated state machines agree
byte-for-byte, money is conserved through Smallbank, faults injected at
the network layer surface as the right application-level behaviour.
"""

import pytest

from repro.core import Driver, DriverConfig, ExperimentSpec, run_experiment
from repro.core.faults import (
    CorruptionFault,
    CrashFault,
    DelayFault,
    FaultSchedule,
)
from repro.platforms import build_cluster
from repro.workloads import SmallbankConfig, SmallbankWorkload, make_workload

ALL_PLATFORMS = ("ethereum", "parity", "hyperledger", "erisdb")
BFT_PLATFORMS = ("hyperledger", "erisdb")


def run_driver(cluster, workload_name="ycsb", rate=40, duration=20, clients=2):
    workload = make_workload(workload_name)
    driver = Driver(
        cluster,
        workload,
        DriverConfig(
            n_clients=clients, request_rate_tx_s=rate, duration_s=duration
        ),
    )
    return driver.run()


# ---------------------------------------------------------------------------
# Replicated state machine: every layer must agree
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("platform", ALL_PLATFORMS)
def test_state_roots_identical_across_replicas(platform):
    """After a run, executed state commits to the same root everywhere."""
    cluster = build_cluster(platform, 4, seed=17)
    run_driver(cluster)
    floor = min(node.executed_height for node in cluster.nodes)
    assert floor > 0
    roots = {
        node._height_roots[floor]  # noqa: SLF001 - integration probe
        for node in cluster.nodes
    }
    assert len(roots) == 1
    cluster.close()


@pytest.mark.parametrize("platform", ALL_PLATFORMS)
def test_receipts_agree_across_replicas(platform):
    cluster = build_cluster(platform, 4, seed=17)
    run_driver(cluster)
    floor = min(node.executed_height for node in cluster.nodes)
    reference = cluster.nodes[0]
    ref_ids = {
        tx.tx_id
        for h in range(1, floor + 1)
        for tx in reference.chain().block_by_height(h).transactions
    }
    for node in cluster.nodes[1:]:
        ids = {
            tx.tx_id
            for h in range(1, floor + 1)
            for tx in node.chain().block_by_height(h).transactions
        }
        assert ids == ref_ids
        for tx_id in ids:
            assert node.receipts[tx_id].success == reference.receipts[tx_id].success
    cluster.close()


class _PaymentsOnly(SmallbankWorkload):
    """Smallbank restricted to send_payment: an exactly zero-sum mix."""

    def next_transaction(self, client_id, rng, now):
        sender = self._account(rng)
        recipient = self._account(rng)
        while recipient == sender:
            recipient = self._account(rng)
        amount = rng.randrange(1, 100)
        from repro.chain import Transaction

        return Transaction.create(
            client_id,
            "smallbank",
            "send_payment",
            (sender, recipient, amount),
            value=amount,
        )


def _ledger_total(node, n_accounts: int) -> int:
    from repro.contracts.base import decode_int
    from repro.platforms.base import _NamespacedState

    facade = _NamespacedState(node.state, "smallbank")
    total = 0
    for i in range(n_accounts):
        for prefix in (b"chk:", b"sav:"):
            raw = facade.get_state(prefix + f"acct{i}".encode())
            if raw is not None:
                total += decode_int(raw)
    return total


@pytest.mark.parametrize("platform", BFT_PLATFORMS)
def test_smallbank_conserves_money(platform):
    """send_payment moves money, never mints it: through the driver,
    the consensus protocol, execution, and the state tree, the ledger
    total is exactly the preload total — on every replica."""
    config = SmallbankConfig(n_accounts=50)
    cluster = build_cluster(platform, 4, seed=23)
    driver = Driver(
        cluster,
        _PaymentsOnly(config),
        DriverConfig(n_clients=2, request_rate_tx_s=40, duration_s=20),
    )
    stats = driver.run()
    assert stats.confirmed > 0
    expected = config.n_accounts * (
        config.initial_savings + config.initial_checking
    )
    for node in cluster.nodes:
        assert node.executed_height > 0
        assert _ledger_total(node, config.n_accounts) == expected
    cluster.close()


# ---------------------------------------------------------------------------
# Fault schedules through the full stack (Section 3.3's three modes)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("platform", ("hyperledger", "erisdb", "parity"))
def test_delay_fault_slows_but_does_not_fork(platform):
    faults = FaultSchedule(
        delays=[DelayFault(at_time=5.0, until_time=15.0, extra_s=0.05)]
    )
    result = run_experiment(
        ExperimentSpec(
            platform=platform,
            workload="ycsb",
            n_servers=4,
            n_clients=2,
            request_rate_tx_s=30,
            duration_s=25.0,
            faults=faults,
            seed=29,
        )
    )
    assert result.summary.confirmed > 0
    if platform in BFT_PLATFORMS:
        assert result.total_blocks == result.main_branch_blocks


@pytest.mark.parametrize("platform", ("hyperledger", "erisdb"))
def test_corruption_fault_is_survived(platform):
    """Random-response faults: corrupted messages drop at verification."""
    faults = FaultSchedule(
        corruptions=[CorruptionFault(at_time=5.0, until_time=12.0, rate=0.2)]
    )
    result = run_experiment(
        ExperimentSpec(
            platform=platform,
            workload="ycsb",
            n_servers=4,
            n_clients=2,
            request_rate_tx_s=30,
            duration_s=25.0,
            faults=faults,
            seed=31,
        )
    )
    assert result.summary.confirmed > 0
    assert result.total_blocks == result.main_branch_blocks


def test_crash_fault_splits_bft_platforms_by_quorum():
    """The Figure 9 dichotomy holds for both BFT backends at N=12."""
    outcomes = {}
    for platform in BFT_PLATFORMS:
        faults = FaultSchedule(crashes=[CrashFault(at_time=12.0, count=4)])
        result = run_experiment(
            ExperimentSpec(
                platform=platform,
                workload="ycsb",
                n_servers=12,
                n_clients=4,
                request_rate_tx_s=25,
                duration_s=35.0,
                faults=faults,
                seed=37,
            )
        )
        outcomes[platform] = result
    # 4 of 12 crashed: quorum needs 9 (PBFT) / 9 (Tendermint) of 8 alive
    # -> both halt after the crash; everything confirmed predates it.
    for platform, result in outcomes.items():
        assert result.summary.confirmed > 0, platform
        assert result.stats.confirm_times, platform
        assert max(result.stats.confirm_times) < 12.0 + 8.0, platform


# ---------------------------------------------------------------------------
# Runner and workload registry integration
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("workload", ("ycsb", "smallbank", "donothing"))
def test_runner_covers_macro_workloads(workload):
    result = run_experiment(
        ExperimentSpec(
            platform="erisdb",
            workload=workload,
            n_servers=4,
            n_clients=2,
            request_rate_tx_s=30,
            duration_s=15.0,
            seed=41,
        )
    )
    assert result.summary.confirmed > 0
    assert result.throughput > 0
    assert result.chain_height > 0


def test_monitor_integration_reports_utilization():
    result = run_experiment(
        ExperimentSpec(
            platform="hyperledger",
            workload="ycsb",
            n_servers=4,
            n_clients=2,
            request_rate_tx_s=50,
            duration_s=15.0,
            with_monitor=True,
            seed=43,
        )
    )
    assert result.mean_cpu_pct > 0
    assert result.mean_net_mbps > 0
