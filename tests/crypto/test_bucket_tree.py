"""Unit and property tests for the Bucket-Merkle tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import BucketTree
from repro.errors import StorageError


def test_empty_roots_equal():
    assert BucketTree(16).root_hash() == BucketTree(16).root_hash()


def test_put_changes_root():
    tree = BucketTree(16)
    r0 = tree.root_hash()
    tree.put(b"k", b"v")
    assert tree.root_hash() != r0


def test_get_put_delete():
    tree = BucketTree(16)
    tree.put(b"k", b"v")
    assert tree.get(b"k") == b"v"
    tree.delete(b"k")
    assert tree.get(b"k") is None


def test_delete_restores_empty_root():
    tree = BucketTree(16)
    r0 = tree.root_hash()
    tree.put(b"k", b"v")
    tree.delete(b"k")
    assert tree.root_hash() == r0


def test_delete_missing_is_noop():
    tree = BucketTree(16)
    tree.put(b"a", b"1")
    r = tree.root_hash()
    tree.delete(b"missing")
    assert tree.root_hash() == r
    assert tree.key_count == 1


def test_key_count_tracks_distinct_keys():
    tree = BucketTree(16)
    tree.put(b"a", b"1")
    tree.put(b"a", b"2")  # overwrite, not a new key
    tree.put(b"b", b"1")
    assert tree.key_count == 2


def test_items_sorted_within_buckets():
    tree = BucketTree(4)
    for i in range(20):
        tree.put(f"k{i}".encode(), b"v")
    items = tree.items()
    assert len(items) == 20


def test_non_power_of_two_bucket_count():
    tree = BucketTree(10)
    for i in range(40):
        tree.put(f"k{i}".encode(), str(i).encode())
    for i in range(40):
        assert tree.get(f"k{i}".encode()) == str(i).encode()
    assert isinstance(tree.root_hash(), bytes)


def test_invalid_bucket_count():
    with pytest.raises(StorageError):
        BucketTree(0)


def test_single_bucket_tree():
    tree = BucketTree(1)
    tree.put(b"a", b"1")
    tree.put(b"b", b"2")
    assert tree.get(b"a") == b"1"
    r = tree.root_hash()
    tree.put(b"c", b"3")
    assert tree.root_hash() != r


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(st.binary(min_size=1, max_size=8), st.binary(max_size=8), max_size=30))
def test_property_root_content_deterministic(mapping):
    t1 = BucketTree(8)
    t2 = BucketTree(8)
    for key, value in mapping.items():
        t1.put(key, value)
    for key in reversed(list(mapping)):
        t2.put(key, mapping[key])
    assert t1.root_hash() == t2.root_hash()


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.binary(min_size=1, max_size=6),
            st.binary(max_size=6),
        ),
        max_size=50,
    )
)
def test_property_matches_dict_model(ops):
    tree = BucketTree(8)
    model = {}
    for op, key, value in ops:
        if op == "put":
            tree.put(key, value)
            model[key] = value
        else:
            tree.delete(key)
            model.pop(key, None)
    for key, value in model.items():
        assert tree.get(key) == value
    assert tree.key_count == len(model)


# ---------------------------------------------------------------------------
# Batched update (PR 5): one level-wise Merkle flush per write-set
# ---------------------------------------------------------------------------
def test_update_matches_per_key_operations():
    batched, direct = BucketTree(16), BucketTree(16)
    writes = [(b"k%03d" % i, b"v%03d" % i) for i in range(64)]
    batched.update(writes)
    for key, value in writes:
        direct.put(key, value)
    assert batched.root_hash() == direct.root_hash()


def test_update_handles_deletes_and_overwrites():
    batched, direct = BucketTree(16), BucketTree(16)
    for tree in (batched, direct):
        tree.put(b"stays", b"1")
        tree.put(b"goes", b"2")
        tree.root_hash()
    batched.update([(b"goes", None), (b"stays", b"updated"), (b"new", b"3")])
    direct.delete(b"goes")
    direct.put(b"stays", b"updated")
    direct.put(b"new", b"3")
    assert batched.root_hash() == direct.root_hash()
    assert batched.get(b"goes") is None
    assert batched.key_count == direct.key_count == 2


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.binary(min_size=1, max_size=5),
            st.one_of(st.none(), st.binary(max_size=5)),
        ),
        max_size=60,
    )
)
def test_property_update_root_matches_sequential(batch):
    batched, direct = BucketTree(8), BucketTree(8)
    batched.update(batch)
    for key, value in batch:
        if value is None:
            direct.delete(key)
        else:
            direct.put(key, value)
    assert batched.root_hash() == direct.root_hash()
    assert batched.key_count == direct.key_count
