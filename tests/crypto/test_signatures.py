"""Unit tests for the simulated signature scheme."""

import pytest

from repro.crypto import KeyPair, KeyRegistry, transaction_digest
from repro.errors import ChainError


@pytest.fixture(autouse=True)
def clean_registry():
    KeyRegistry.clear()
    yield
    KeyRegistry.clear()


def test_sign_verify_roundtrip():
    alice = KeyRegistry.create("alice")
    sig = alice.sign(b"message")
    assert alice.public.verify(b"message", sig)


def test_tampered_message_fails():
    alice = KeyRegistry.create("alice")
    sig = alice.sign(b"message")
    assert not alice.public.verify(b"other", sig)


def test_wrong_signer_fails():
    alice = KeyRegistry.create("alice")
    bob = KeyRegistry.create("bob")
    sig = alice.sign(b"message")
    assert not bob.public.verify(b"message", sig)


def test_deterministic_addresses():
    assert KeyPair.from_seed("alice").address == KeyPair.from_seed("alice").address
    assert KeyPair.from_seed("alice").address != KeyPair.from_seed("bob").address


def test_unregistered_key_fails_verification():
    orphan = KeyPair.from_seed("orphan")  # not in the registry
    sig = orphan.sign(b"m")
    assert not orphan.public.verify(b"m", sig)


def test_bad_private_key_length():
    with pytest.raises(ChainError):
        KeyPair(b"short")


def test_signature_size_matches_secp256k1():
    alice = KeyRegistry.create("alice")
    assert alice.sign(b"m").size_bytes() == 65


def test_transaction_digest_binds_all_fields():
    base = transaction_digest("a", b"p", 1)
    assert base != transaction_digest("b", b"p", 1)
    assert base != transaction_digest("a", b"q", 1)
    assert base != transaction_digest("a", b"p", 2)
