"""Unit tests for hashing helpers."""

from repro.crypto import EMPTY_HASH, hash_items, hash_text, hex_digest, sha256, short_hex


def test_sha256_known_vector():
    assert (
        sha256(b"abc").hex()
        == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    )


def test_hash_items_injective_on_boundaries():
    assert hash_items(b"ab", b"c") != hash_items(b"a", b"bc")


def test_hash_items_empty_parts_distinct():
    assert hash_items() != hash_items(b"")
    assert hash_items(b"") != hash_items(b"", b"")


def test_hash_text_matches_utf8():
    assert hash_text("abc") == sha256(b"abc")


def test_hex_roundtrip_and_short():
    digest = sha256(b"x")
    assert hex_digest(digest) == digest.hex()
    assert short_hex(digest, 6) == digest.hex()[:6]
    assert len(short_hex(digest)) == 8


def test_empty_hash_constant():
    assert EMPTY_HASH == sha256(b"")
