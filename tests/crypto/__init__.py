"""Tests for the crypto layer."""
