"""Unit and property tests for the Patricia-Merkle trie."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import DictNodeStore, PatriciaTrie, StateTrie, from_nibbles, to_nibbles
from repro.errors import CorruptionError


@pytest.fixture
def trie():
    return PatriciaTrie(DictNodeStore())


def test_nibble_roundtrip():
    key = bytes(range(256))
    assert from_nibbles(to_nibbles(key)) == key


def test_odd_nibbles_rejected():
    with pytest.raises(CorruptionError):
        from_nibbles((1, 2, 3))


def test_get_missing_from_empty(trie):
    assert trie.get(None, b"missing") is None


def test_put_get_single(trie):
    root = trie.put(None, b"key", b"value")
    assert trie.get(root, b"key") == b"value"


def test_overwrite_value(trie):
    root = trie.put(None, b"key", b"v1")
    root = trie.put(root, b"key", b"v2")
    assert trie.get(root, b"key") == b"v2"


def test_prefix_keys_do_not_collide(trie):
    root = trie.put(None, b"dog", b"1")
    root = trie.put(root, b"doge", b"2")
    root = trie.put(root, b"do", b"3")
    assert trie.get(root, b"dog") == b"1"
    assert trie.get(root, b"doge") == b"2"
    assert trie.get(root, b"do") == b"3"
    assert trie.get(root, b"d") is None


def test_copy_on_write_preserves_old_roots(trie):
    root1 = trie.put(None, b"a", b"1")
    root2 = trie.put(root1, b"b", b"2")
    assert trie.get(root1, b"b") is None
    assert trie.get(root2, b"a") == b"1"


def test_same_content_same_root(trie):
    r1 = trie.put(None, b"x", b"1")
    r1 = trie.put(r1, b"y", b"2")
    r2 = trie.put(None, b"y", b"2")
    r2 = trie.put(r2, b"x", b"1")
    assert r1 == r2  # root is order-independent for the same final map


def test_delete_only_key_empties_trie(trie):
    root = trie.put(None, b"k", b"v")
    assert trie.delete(root, b"k") is None


def test_delete_missing_key_keeps_root(trie):
    root = trie.put(None, b"k", b"v")
    assert trie.delete(root, b"nope") == root


def test_delete_restores_prior_root(trie):
    root1 = trie.put(None, b"a", b"1")
    root2 = trie.put(root1, b"b", b"2")
    root3 = trie.delete(root2, b"b")
    assert root3 == root1


def test_node_writes_accumulate(trie):
    before = trie.node_writes
    root = trie.put(None, b"abcdefgh", b"v")
    trie.put(root, b"abcdefgi", b"w")
    # Second insert shares a long prefix: several path nodes rewritten.
    assert trie.node_writes - before >= 4


def test_items_iterates_all(trie):
    root = None
    expected = {}
    for i in range(50):
        key = f"key-{i:03d}".encode()
        root = trie.put(root, key, str(i).encode())
        expected[key] = str(i).encode()
    assert dict(trie.items(root)) == expected


def test_state_trie_snapshots():
    state = StateTrie()
    state.put(b"acct", b"100")
    idx0 = state.snapshot()
    state.put(b"acct", b"50")
    idx1 = state.snapshot()
    assert state.get_at(idx0, b"acct") == b"100"
    assert state.get_at(idx1, b"acct") == b"50"
    assert state.get(b"acct") == b"50"


def test_state_trie_delete():
    state = StateTrie()
    state.put(b"a", b"1")
    state.delete(b"a")
    assert state.get(b"a") is None


def test_state_trie_root_hash_changes():
    state = StateTrie()
    r0 = state.root_hash()
    state.put(b"a", b"1")
    assert state.root_hash() != r0


# ---------------------------------------------------------------------------
# Batched update (PR 5): one pass per block-commit write-set
# ---------------------------------------------------------------------------
def _sequential(ops):
    """Reference: the same ops applied one put/delete at a time."""
    trie = PatriciaTrie(DictNodeStore())
    root = None
    for key, value in ops:
        if value is None:
            root = trie.delete(root, key)
        else:
            root = trie.put(root, key, value)
    return trie, root


def test_update_empty_batch_keeps_root(trie):
    root = trie.put(None, b"k", b"v")
    assert trie.update(root, []) == root
    assert trie.update(None, []) is None


def test_update_batch_matches_sequential_puts(trie):
    batch = [(b"acct:%04d" % i, b"%08d" % i) for i in range(200)]
    _, expected = _sequential(batch)
    assert trie.update(None, batch) == expected


def test_update_is_last_write_wins(trie):
    root = trie.update(None, [(b"k", b"v1"), (b"k", b"v2"), (b"k", b"v3")])
    assert trie.get(root, b"k") == b"v3"
    assert root == trie.put(None, b"k", b"v3")


def test_update_shares_path_segments(trie):
    """K writes under a common prefix: far fewer node writes than K
    full leaf-to-root path rewrites."""
    batch = [(b"acct:%016d" % i, b"x") for i in range(500)]
    sequential_trie, expected = _sequential(batch)
    root = trie.update(None, batch)
    assert root == expected
    assert trie.node_writes < sequential_trie.node_writes / 3


def test_update_mixed_puts_and_deletes(trie):
    root = trie.update(None, [(b"a", b"1"), (b"ab", b"2"), (b"abc", b"3")])
    root = trie.update(root, [(b"ab", None), (b"abcd", b"4"), (b"a", b"9")])
    assert dict(trie.items(root)) == {b"a": b"9", b"abc": b"3", b"abcd": b"4"}
    _, expected = _sequential(
        [(b"a", b"1"), (b"ab", b"2"), (b"abc", b"3"),
         (b"ab", None), (b"abcd", b"4"), (b"a", b"9")]
    )
    assert root == expected


def test_update_delete_then_put_same_key_in_one_batch(trie):
    """Within one batch the net write wins: delete-then-put is a put."""
    root = trie.put(None, b"k", b"old")
    root = trie.update(root, [(b"k", None), (b"k", b"new")])
    assert trie.get(root, b"k") == b"new"
    assert root == trie.put(None, b"k", b"new")


def test_update_put_then_delete_same_key_in_one_batch(trie):
    root = trie.put(None, b"keep", b"1")
    root = trie.update(root, [(b"k", b"v"), (b"k", None)])
    assert root == trie.put(None, b"keep", b"1")


def test_update_delete_of_missing_key_is_noop(trie):
    root = trie.put(None, b"k", b"v")
    assert trie.update(root, [(b"nope", None)]) == root
    assert trie.update(None, [(b"nope", None)]) is None


def test_update_same_value_overwrites_keep_root(trie):
    root = trie.update(None, [(b"a", b"1"), (b"b", b"2")])
    assert trie.update(root, [(b"a", b"1"), (b"b", b"2")]) == root


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(st.binary(min_size=1, max_size=6),
                  st.one_of(st.none(), st.binary(max_size=8))),
        max_size=40,
    ),
    st.lists(
        st.tuples(st.binary(min_size=1, max_size=6),
                  st.one_of(st.none(), st.binary(max_size=8))),
        max_size=40,
    ),
)
def test_property_update_matches_sequential(pre_ops, batch):
    """Differential oracle: batched update == puts/deletes one at a
    time, for any pre-state and any batch (including in-batch
    overwrites, deletes of missing keys, and delete/put interleave)."""
    _, expected_pre = _sequential(pre_ops)
    seq_trie, expected = _sequential(pre_ops + batch)
    batched = PatriciaTrie(DictNodeStore())
    root = None
    for key, value in pre_ops:
        root = (
            batched.delete(root, key)
            if value is None
            else batched.put(root, key, value)
        )
    assert root == expected_pre
    assert batched.update(root, batch) == expected


_keys = st.binary(min_size=1, max_size=8)
_values = st.binary(min_size=1, max_size=16)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["put", "delete"]), _keys, _values),
        max_size=60,
    )
)
def test_property_trie_matches_dict_model(ops):
    trie = PatriciaTrie(DictNodeStore())
    root = None
    model = {}
    for op, key, value in ops:
        if op == "put":
            root = trie.put(root, key, value)
            model[key] = value
        else:
            root = trie.delete(root, key)
            model.pop(key, None)
    for key, value in model.items():
        assert trie.get(root, key) == value
    if root is None:
        assert model == {}
    else:
        assert dict(trie.items(root)) == model


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(_keys, _values, min_size=1, max_size=30))
def test_property_root_is_content_deterministic(mapping):
    def build(order):
        trie = PatriciaTrie(DictNodeStore())
        root = None
        for key in order:
            root = trie.put(root, key, mapping[key])
        return root

    keys = list(mapping)
    assert build(keys) == build(list(reversed(keys)))
