"""Unit and property tests for the classic Merkle tree."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import EMPTY_HASH, MerkleTree, merkle_root
from repro.errors import ChainError


def test_empty_tree_root():
    assert MerkleTree([]).root == EMPTY_HASH


def test_single_leaf_root_depends_on_leaf():
    assert MerkleTree([b"a"]).root != MerkleTree([b"b"]).root


def test_root_sensitive_to_order():
    assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root


def test_odd_leaf_count_supported():
    tree = MerkleTree([b"a", b"b", b"c"])
    assert tree.root != MerkleTree([b"a", b"b"]).root


def test_duplicate_last_leaf_differs_from_padding():
    # [a, b, c] pads c; tree over [a, b, c, c] must produce the same root
    # because padding duplicates the last node (Bitcoin-style).
    assert MerkleTree([b"a", b"b", b"c"]).root == MerkleTree([b"a", b"b", b"c", b"c"]).root


def test_proof_verifies_for_all_leaves():
    leaves = [bytes([i]) * 4 for i in range(7)]
    tree = MerkleTree(leaves)
    for index, leaf in enumerate(leaves):
        proof = tree.prove(index)
        assert MerkleTree.verify_proof(leaf, proof, tree.root)


def test_proof_fails_for_wrong_leaf():
    leaves = [b"a", b"b", b"c", b"d"]
    tree = MerkleTree(leaves)
    proof = tree.prove(0)
    assert not MerkleTree.verify_proof(b"z", proof, tree.root)


def test_proof_fails_against_wrong_root():
    tree = MerkleTree([b"a", b"b"])
    other = MerkleTree([b"a", b"c"])
    proof = tree.prove(0)
    assert not MerkleTree.verify_proof(b"a", proof, other.root)


def test_proof_index_out_of_range():
    tree = MerkleTree([b"a"])
    with pytest.raises(ChainError):
        tree.prove(1)


def test_merkle_root_helper_matches_tree():
    leaves = [b"x", b"y", b"z"]
    assert merkle_root(leaves) == MerkleTree(leaves).root


@given(st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=40))
def test_property_all_proofs_verify(leaves):
    tree = MerkleTree(leaves)
    for index, leaf in enumerate(leaves):
        assert MerkleTree.verify_proof(leaf, tree.prove(index), tree.root)


@given(
    st.lists(st.binary(min_size=1, max_size=16), min_size=2, max_size=20),
    st.integers(min_value=0),
)
def test_property_root_changes_when_leaf_changes(leaves, position):
    position %= len(leaves)
    mutated = list(leaves)
    mutated[position] = mutated[position] + b"\x01"
    assert MerkleTree(leaves).root != MerkleTree(mutated).root
