"""Plugin-registry tests: registration, lookup, and failure modes."""

import pytest

from repro.errors import BenchmarkError
from repro.registry import (
    CONSENSUS,
    PLATFORMS,
    WORKLOADS,
    Registry,
    WorkloadSpec,
    register_platform,
    register_workload,
)

# Importing these populates the registries with the built-ins.
import repro.consensus  # noqa: F401
import repro.platforms  # noqa: F401
import repro.workloads  # noqa: F401


def test_builtin_platforms_registered():
    from repro.platforms import available_platforms

    assert PLATFORMS.names() == ["erisdb", "ethereum", "hyperledger", "parity"]
    assert available_platforms() == PLATFORMS.names()


def test_builtin_workloads_registered():
    from repro.workloads import available_workloads

    assert WORKLOADS.names() == [
        "donothing", "doubler", "etherid", "smallbank", "wavespresale", "ycsb",
    ]
    assert available_workloads() == WORKLOADS.names()


def test_builtin_consensus_registered():
    assert CONSENSUS.names() == ["pbft", "poa", "pow", "tendermint"]


def test_unknown_name_error_lists_available():
    registry = Registry("gizmo")
    registry.register("alpha", object())
    with pytest.raises(BenchmarkError, match=r"unknown gizmo 'beta'.*alpha"):
        registry.get("beta")


def test_duplicate_registration_rejected_without_replace():
    registry = Registry("gizmo")
    registry.register("alpha", 1)
    with pytest.raises(BenchmarkError, match="already registered"):
        registry.register("alpha", 2)
    registry.register("alpha", 2, replace=True)
    assert registry.get("alpha") == 2


def test_registry_container_protocol():
    registry = Registry("gizmo")
    registry.register("b", 2)
    registry.register("a", 1)
    assert "a" in registry and "missing" not in registry
    assert list(registry) == ["a", "b"]
    assert len(registry) == 2
    assert registry.items() == [("a", 1), ("b", 2)]


def test_register_platform_decorator_roundtrip():
    @register_platform("testchain", default_config=lambda: "conf")
    def build_node(node_id, scheduler, network, rng, config, all_ids, storage_dir):
        return (node_id, config)

    try:
        spec = PLATFORMS.get("testchain")
        assert spec.factory is build_node
        assert spec.default_config() == "conf"
    finally:
        PLATFORMS.unregister("testchain")
    assert "testchain" not in PLATFORMS


def test_registered_platform_reaches_build_cluster_error_path():
    """build_cluster resolves names through the registry, so its error
    for unknown platforms comes from the registry too."""
    from repro.platforms import build_cluster

    with pytest.raises(BenchmarkError, match="unknown platform 'nosuchchain'"):
        build_cluster("nosuchchain", 4)


def test_register_workload_reaches_make_workload():
    from repro.workloads import make_workload

    class EchoWorkload:
        pass

    register_workload("echo")(EchoWorkload)
    try:
        assert isinstance(make_workload("echo"), EchoWorkload)
    finally:
        WORKLOADS.unregister("echo")
    with pytest.raises(BenchmarkError, match="unknown workload 'echo'"):
        make_workload("echo")


def test_workload_kwargs_route_through_config_type():
    from repro.workloads import YCSBConfig, YCSBWorkload, make_workload

    workload = make_workload("ycsb", record_count=123)
    assert isinstance(workload, YCSBWorkload)
    assert workload.config.record_count == 123
    assert isinstance(YCSBConfig(record_count=123), type(workload.config))


def test_workload_without_config_rejects_kwargs():
    spec = WorkloadSpec(name="plain", workload_type=object)
    with pytest.raises(BenchmarkError, match="takes no parameters"):
        spec.create(bogus=1)


def test_workload_config_typo_raises_benchmark_error():
    """A typo'd workload param surfaces as a clean BenchmarkError, not
    a TypeError escaping to the CLI as a traceback."""
    from repro.workloads import make_workload

    with pytest.raises(BenchmarkError, match="bad parameters for workload 'ycsb'"):
        make_workload("ycsb", record_cout=1000)


def test_invalid_registration_name_rejected():
    registry = Registry("gizmo")
    with pytest.raises(BenchmarkError, match="non-empty string"):
        registry.register("", 1)


def test_platform_spec_make_config_applies_overrides():
    from repro.config import hyperledger_config
    from repro.registry import PLATFORMS

    spec = PLATFORMS.get("hyperledger")
    assert spec.make_config().pbft.batch_size == 500
    tuned = spec.make_config(overrides={"pbft": {"batch_size": 123}})
    assert tuned.pbft.batch_size == 123
    # An explicit config is the override base, not the preset.
    explicit = spec.make_config(
        hyperledger_config(inbox_capacity=99), {"pbft": {"batch_size": 7}}
    )
    assert explicit.inbox_capacity == 99 and explicit.pbft.batch_size == 7


def test_platform_spec_make_config_without_default_rejects_overrides():
    from repro.registry import PlatformSpec

    spec = PlatformSpec(name="bare", factory=object)
    assert spec.make_config() is None
    with pytest.raises(BenchmarkError, match="no config to override"):
        spec.make_config(overrides={"x": 1})


def test_build_cluster_applies_config_overrides():
    from repro.platforms import build_cluster

    cluster = build_cluster(
        "hyperledger", 2, config_overrides={"pbft": {"batch_size": 123}}
    )
    try:
        assert cluster.nodes[0].hlf_config.pbft.batch_size == 123
    finally:
        cluster.close()
