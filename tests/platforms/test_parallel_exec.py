"""Serial-vs-parallel execution differentials (PR 9).

The parallel execution path (``exec_workers > 1``) promises exactly
one thing changes relative to serial execution: the *charged simulated
execution time* (the dependency-schedule makespan instead of the
serial sum). Everything observable about state must be byte-identical
— roots, receipts, write-sets — on every platform, for any worker
count, for any interleaving of conflicting and independent
transactions. A hypothesis differential pins that across random
transaction programs in the style of ``test_state_overlay.py``; the
adversarial fully-conflicting workload must degrade to the serial
chain (same roots *and* the same charged CPU, since every level holds
one transaction); and the PR 8 stage breakdown must show the
``execution`` interval shrinking on a contention-light macro run.
"""

from dataclasses import asdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import Block
from repro.chain.transaction import Transaction
from repro.core.runner import ExperimentSpec, run_experiment
from repro.platforms import build_cluster

PLATFORMS = ["hyperledger", "ethereum", "parity", "erisdb"]

#: One kvstore invocation: (op, key index, payload). Small key space so
#: hypothesis finds RAW/WAW/WAR collisions; read_modify_write on a
#: missing key exercises the revert path (partial writes + failure
#: receipts must match serial too).
OPS = st.lists(
    st.tuples(
        st.sampled_from(["write", "read", "delete", "read_modify_write"]),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=99),
    ),
    min_size=1,
    max_size=40,
)


def _make_txs(ops):
    txs = []
    for i, (op, key_idx, payload) in enumerate(ops):
        if op in ("write", "read_modify_write"):
            args = (f"k{key_idx}", f"v{payload}")
        else:
            args = (f"k{key_idx}",)
        txs.append(
            Transaction.create(
                sender=f"acct{i % 5}",
                contract="kvstore",
                function=op,
                args=args,
                nonce=i,  # pinned: tx_ids must match across runs
            )
        )
    return tuple(txs)


def _execute_direct(platform, workers, txs, seed=7):
    """Execute one constructed block on a single node, off-scheduler."""
    cluster = build_cluster(
        platform, 1, seed=seed,
        config_overrides={"exec_workers": workers, "execution_cache": False},
    )
    node = cluster.nodes[0]
    genesis = node.chain().block_by_height(0)
    block = Block.build(
        height=1,
        parent_hash=genesis.hash,
        transactions=txs,
        state_root=b"",
        proposer=node.node_id,
        timestamp=1.0,
    )
    node._execute_block(block)
    root = node._height_roots[1]
    receipts = tuple(
        (r.tx_id, r.success, r.gas_used, r.output, r.error)
        for r in (node.receipts[tx.tx_id] for tx in txs)
    )
    cpu = node.cpu_time
    cluster.close()
    return root, receipts, cpu


# ---------------------------------------------------------------------------
# Hypothesis differential: byte-equal roots and receipts, any program
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("platform", PLATFORMS)
@settings(max_examples=10, deadline=None)
@given(ops=OPS, workers=st.sampled_from([2, 3, 4, 8]))
def test_parallel_matches_serial_byte_for_byte(platform, ops, workers):
    txs = _make_txs(ops)
    serial_root, serial_receipts, serial_cpu = _execute_direct(
        platform, 1, txs
    )
    par_root, par_receipts, par_cpu = _execute_direct(platform, workers, txs)
    assert par_root == serial_root
    assert par_receipts == serial_receipts
    # Parallelism can only help (or break even, under total conflict).
    assert par_cpu <= serial_cpu + 1e-12


# ---------------------------------------------------------------------------
# Conflict path: total contention degrades to the serial chain
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("platform", PLATFORMS)
def test_single_hot_key_degrades_to_serial(platform):
    """Every transaction read-modify-writes one key: the dependency
    chain forces one transaction per level, so the parallel path must
    reproduce the serial roots, receipts, AND charged CPU exactly —
    the makespan telescopes to the serial sum in the same float
    addition order."""
    txs = tuple(
        Transaction.create(
            sender="acct0",
            contract="kvstore",
            function="write" if i == 0 else "read_modify_write",
            args=("hot", f"v{i}"),
            nonce=i,
        )
        for i in range(20)
    )
    serial_root, serial_receipts, serial_cpu = _execute_direct(
        platform, 1, txs
    )
    par_root, par_receipts, par_cpu = _execute_direct(platform, 8, txs)
    assert par_root == serial_root
    assert par_receipts == serial_receipts
    assert par_cpu == serial_cpu  # exact: no overlap is possible


def test_single_hot_key_schedule_is_the_serial_chain():
    cluster = build_cluster(
        "hyperledger", 1, seed=7,
        config_overrides={"exec_workers": 4, "execution_cache": False},
    )
    node = cluster.nodes[0]
    txs = tuple(
        Transaction.create(
            sender="acct0", contract="kvstore", function="write",
            args=("hot", f"v{i}"), nonce=i,
        )
        for i in range(10)
    )
    genesis = node.chain().block_by_height(0)
    block = Block.build(
        height=1, parent_hash=genesis.hash, transactions=txs,
        state_root=b"", proposer=node.node_id, timestamp=1.0,
    )
    _receipts, levels = node._execute_block_parallel(block)
    assert levels == tuple(range(1, 11))
    cluster.close()


def test_disjoint_keys_schedule_flat():
    cluster = build_cluster(
        "hyperledger", 1, seed=7,
        config_overrides={"exec_workers": 4, "execution_cache": False},
    )
    node = cluster.nodes[0]
    txs = tuple(
        Transaction.create(
            sender="acct0", contract="kvstore", function="write",
            args=(f"k{i}", "v"), nonce=i,
        )
        for i in range(10)
    )
    genesis = node.chain().block_by_height(0)
    block = Block.build(
        height=1, parent_hash=genesis.hash, transactions=txs,
        state_root=b"", proposer=node.node_id, timestamp=1.0,
    )
    _receipts, levels = node._execute_block_parallel(block)
    assert levels == (1,) * 10
    cluster.close()


# ---------------------------------------------------------------------------
# Macro determinism and the stage-breakdown win
# ---------------------------------------------------------------------------
def _macro(platform, workers, duration, seed=5):
    return run_experiment(
        ExperimentSpec(
            platform=platform,
            workload="ycsb",
            n_servers=4,
            n_clients=2,
            request_rate_tx_s=40.0,
            duration_s=duration,
            seed=seed,
            config_overrides={"exec_workers": workers},
        )
    )


@pytest.mark.parametrize("platform", PLATFORMS)
def test_repeated_parallel_runs_are_byte_identical(platform):
    """The determinism gate in miniature: two independent runs at
    exec_workers=4 must agree on every field of the StatsSummary —
    the scheduler introduces no run-to-run nondeterminism."""
    # Ethereum's first transaction-bearing blocks confirm between 25s
    # and 30s at 4 servers; shorter windows measure an empty run.
    duration = 30.0 if platform == "ethereum" else 12.0
    first = _macro(platform, 4, duration)
    second = _macro(platform, 4, duration)
    assert asdict(first.summary) == asdict(second.summary)
    assert first.chain_height == second.chain_height
    assert first.total_blocks == second.total_blocks
    assert first.summary.confirmed > 0  # the run did real work


def test_execution_stage_shrinks_with_workers():
    """Ethereum YCSB is contention-light (wide key space) and has the
    fattest per-gas cost, so the PR 8 ``execution`` interval must
    visibly shrink when 4 modeled workers overlap independent
    transactions."""

    def execution_avg(result):
        breakdown = result.summary.stage_breakdown
        assert breakdown is not None and breakdown.traced > 0
        return next(
            s.avg_s for s in breakdown.stages if s.stage == "execution"
        )

    serial = _macro("ethereum", 1, 30.0)
    parallel = _macro("ethereum", 4, 30.0)
    serial_exec = execution_avg(serial)
    parallel_exec = execution_avg(parallel)
    assert serial.summary.confirmed > 0
    assert parallel.summary.confirmed > 0
    # Visibly shrink: at least 30% off the serial execution interval.
    assert parallel_exec < 0.7 * serial_exec
