"""Integration tests for the ErisDB platform and its pub/sub feed."""

import pytest

from repro.config import erisdb_config
from repro.core import Driver, DriverConfig
from repro.core.connector import RPCClient, SimChainConnector
from repro.errors import ConnectorError
from repro.platforms import build_cluster
from repro.platforms.erisdb import ErisDBState
from repro.workloads import YCSBConfig, YCSBWorkload


def small_driver(cluster, rate=40, duration=20, clients=2, **kwargs):
    workload = YCSBWorkload(YCSBConfig(record_count=100))
    return Driver(
        cluster,
        workload,
        DriverConfig(
            n_clients=clients,
            request_rate_tx_s=rate,
            duration_s=duration,
            **kwargs,
        ),
    )


# ---------------------------------------------------------------------------
# Cluster construction and end-to-end commits
# ---------------------------------------------------------------------------
def test_cluster_builds_with_tendermint():
    cluster = build_cluster("erisdb", 4, seed=3)
    assert len(cluster.nodes) == 4
    for node in cluster.nodes:
        assert node.protocol.describe() == "Tendermint"
        assert node.supports_subscription
    cluster.close()


def test_transactions_commit_end_to_end():
    cluster = build_cluster("erisdb", 4, seed=5)
    stats = small_driver(cluster).run()
    assert stats.confirmed > 50
    assert stats.latency_avg() > 0
    cluster.close()


def test_all_nodes_agree_no_forks():
    cluster = build_cluster("erisdb", 4, seed=5)
    small_driver(cluster).run()
    tips = {node.chain().tip.hash for node in cluster.nodes}
    assert len(tips) == 1
    assert all(node.chain().fork_blocks == 0 for node in cluster.nodes)
    cluster.close()


def test_historical_state_queries_work():
    """ErisDB's trie snapshots support get_at, like Ethereum's."""
    state = ErisDBState()
    state.put(b"k", b"v1")
    state.commit_block(1)
    state.put(b"k", b"v2")
    state.commit_block(2)
    assert state.get_at(1, b"k") == b"v1"
    assert state.get_at(2, b"k") == b"v2"
    state.close()


def test_config_preset_is_registered():
    config = erisdb_config()
    assert config.name == "erisdb"
    assert config.tendermint.max_txs_per_block == 500


# ---------------------------------------------------------------------------
# Publish/subscribe (Section 3.2's ErisDB interface)
# ---------------------------------------------------------------------------
def test_subscription_pushes_block_events():
    cluster = build_cluster("erisdb", 4, seed=5)
    client = RPCClient("watcher", cluster.scheduler, cluster.network)
    connector = SimChainConnector(cluster, client, cluster.node_ids()[0])
    events: list[dict] = []
    connector.subscribe_new_blocks(0, events.append)
    driver = small_driver(cluster, duration=15)
    stats = driver.run()
    assert events, "no block events pushed"
    heights = [event["height"] for event in events]
    assert heights == sorted(heights)
    confirmed_ids = {tx for event in events for tx in event["tx_ids"]}
    assert len(confirmed_ids) >= stats.confirmed
    cluster.close()


def test_subscription_replays_missed_blocks():
    """Subscribing after commits replays history from from_height."""
    cluster = build_cluster("erisdb", 4, seed=5)
    small_driver(cluster, duration=10).run()
    height_before = cluster.chain_height()
    assert height_before > 0
    client = RPCClient("late-watcher", cluster.scheduler, cluster.network)
    connector = SimChainConnector(cluster, client, cluster.node_ids()[0])
    events: list[dict] = []
    connector.subscribe_new_blocks(0, events.append)
    cluster.run_until(cluster.scheduler.now + 2.0)
    assert [e["height"] for e in events[:height_before]] == list(
        range(1, height_before + 1)
    )
    cluster.close()


def test_subscription_refused_on_polling_platforms():
    cluster = build_cluster("hyperledger", 4, seed=5)
    client = RPCClient("watcher", cluster.scheduler, cluster.network)
    connector = SimChainConnector(cluster, client, cluster.node_ids()[0])
    with pytest.raises(ConnectorError):
        connector.subscribe_new_blocks(0, lambda b: None)
    cluster.close()


def test_driver_subscribe_mode_confirms_without_polling():
    cluster = build_cluster("erisdb", 4, seed=5)
    stats = small_driver(cluster, subscribe=True).run()
    assert stats.confirmed > 50
    cluster.close()


def test_subscribe_and_poll_agree_on_throughput():
    """Push and poll modes must measure the same chain."""
    polled = small_driver(build_cluster("erisdb", 4, seed=9)).run()
    pushed = small_driver(
        build_cluster("erisdb", 4, seed=9), subscribe=True
    ).run()
    assert pushed.confirmed == pytest.approx(polled.confirmed, rel=0.1)
    # Push-based confirmation can only be faster than periodic polling.
    assert pushed.latency_avg() <= polled.latency_avg() + 0.1


def test_unsubscribe_tears_down_server_side_subscription():
    """unsubscribe() must stop the server publishing, not just drop the
    local callback — otherwise rpc/event traffic flows forever."""
    cluster = build_cluster("erisdb", 4, seed=5)
    client = RPCClient("watcher", cluster.scheduler, cluster.network)
    connector = SimChainConnector(cluster, client, cluster.node_ids()[0])
    server = cluster.nodes[0]
    events: list[dict] = []
    subscription = connector.subscribe_new_blocks(0, events.append)
    driver = small_driver(cluster, duration=10)
    driver.prepare()
    for bench_client in driver.clients:
        bench_client.start(10)
    cluster.run_until(8.0)
    assert events, "subscription never delivered"
    assert "watcher" in server._subscribers
    subscription.cancel()
    cluster.run_until(9.0)  # let the unsubscribe message arrive
    assert "watcher" not in server._subscribers
    published_at_cancel = server.events_published
    seen_at_cancel = len(events)
    cluster.run_until(cluster.scheduler.now + 12.0)
    # The chain kept growing, but nothing more was pushed to us.
    assert cluster.chain_height() > 0
    assert len(events) == seen_at_cancel
    # Other subscribers (none here) aside, the server stopped publishing.
    assert server.events_published == published_at_cancel
    cluster.close()


def test_subscription_cancel_is_idempotent():
    cluster = build_cluster("erisdb", 2, seed=5)
    client = RPCClient("watcher", cluster.scheduler, cluster.network)
    connector = SimChainConnector(cluster, client, cluster.node_ids()[0])
    subscription = connector.subscribe_new_blocks(0, lambda b: None)
    subscription.cancel()
    subscription.cancel()
    assert not subscription.active
    cluster.close()


def test_cancel_wakes_pending_waiter_and_blocks_new_ones():
    """cancel() must not strand a coroutine awaiting next_block()."""
    cluster = build_cluster("erisdb", 2, seed=5)
    client = RPCClient("watcher", cluster.scheduler, cluster.network)
    connector = SimChainConnector(cluster, client, cluster.node_ids()[0])
    subscription = connector.subscribe_new_blocks(0)
    outcome: list[str] = []

    def consume():
        try:
            yield subscription.next_block()
            outcome.append("got a block")  # pragma: no cover
        except ConnectorError:
            outcome.append("woken by cancel")

    cluster.scheduler.spawn(consume())
    subscription.cancel()
    assert outcome == ["woken by cancel"]
    with pytest.raises(ConnectorError, match="cancelled"):
        subscription.next_block()
    cluster.close()


def test_awaitable_subscription_stream_buffers_in_order():
    """next_block() futures deliver every event exactly once, in order."""
    cluster = build_cluster("erisdb", 4, seed=5)
    client = RPCClient("watcher", cluster.scheduler, cluster.network)
    connector = SimChainConnector(cluster, client, cluster.node_ids()[0])
    subscription = connector.subscribe_new_blocks(0)
    heights: list[int] = []

    def consume():
        while True:
            block = yield subscription.next_block()
            heights.append(block["height"])

    cluster.scheduler.spawn(consume())
    small_driver(cluster, duration=15).run()
    assert heights == sorted(heights)
    assert len(heights) == len(set(heights))
    assert heights, "stream delivered nothing"
    assert subscription.pending_blocks() == 0  # consumer kept up
    cluster.close()


def test_crash_below_threshold_keeps_committing():
    cluster = build_cluster("erisdb", 7, seed=5)  # f = 2
    driver = small_driver(cluster, duration=30)
    driver.prepare()
    cluster.scheduler.schedule(10.0, lambda: cluster.crash_nodes(2))
    stats = driver.run()
    assert stats.confirmed > 50
    alive = cluster.alive_nodes()
    assert len({n.chain().tip.hash for n in alive}) == 1
    cluster.close()
