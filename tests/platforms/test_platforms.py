"""Integration tests for the three platform implementations."""

import pytest

from repro.core import Driver, DriverConfig
from repro.errors import BenchmarkError, ConnectorError
from repro.platforms import build_cluster
from repro.platforms.ethereum import EthereumState
from repro.platforms.hyperledger import HyperledgerState
from repro.platforms.parity import ParityState
from repro.workloads import YCSBConfig, YCSBWorkload


def small_driver(cluster, rate=40, duration=20, clients=2):
    workload = YCSBWorkload(YCSBConfig(record_count=100))
    return Driver(
        cluster,
        workload,
        DriverConfig(
            n_clients=clients, request_rate_tx_s=rate, duration_s=duration
        ),
    )


# ---------------------------------------------------------------------------
# Cluster construction
# ---------------------------------------------------------------------------
def test_unknown_platform_rejected():
    with pytest.raises(BenchmarkError):
        build_cluster("bitcoin", 4)


def test_zero_nodes_rejected():
    with pytest.raises(BenchmarkError):
        build_cluster("ethereum", 0)


@pytest.mark.parametrize("platform", ["ethereum", "parity", "hyperledger"])
def test_cluster_builds_and_deploys(platform):
    cluster = build_cluster(platform, 4, seed=3)
    assert len(cluster.nodes) == 4
    for node in cluster.nodes:
        assert "kvstore" in node.contracts
        assert len(node.peers) == 3
    cluster.close()


# ---------------------------------------------------------------------------
# End-to-end commits on each platform
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("platform", ["ethereum", "parity", "hyperledger"])
def test_transactions_commit_end_to_end(platform):
    cluster = build_cluster(platform, 4, seed=5)
    stats = small_driver(cluster).run()
    assert stats.confirmed > 50
    assert stats.latency_avg() > 0
    cluster.close()


def test_hyperledger_all_nodes_agree():
    cluster = build_cluster("hyperledger", 4, seed=5)
    small_driver(cluster).run()
    tips = {node.chain().tip.hash for node in cluster.nodes}
    assert len(tips) == 1
    assert all(node.chain().fork_blocks == 0 for node in cluster.nodes)
    cluster.close()


def test_ethereum_converges_to_one_chain():
    cluster = build_cluster("ethereum", 4, seed=5)
    small_driver(cluster).run()
    heights = [node.chain().height for node in cluster.nodes]
    assert max(heights) - min(heights) <= 1  # propagation lag only
    cluster.close()


def test_parity_throughput_capped_by_signing():
    """The paper's Parity finding: constant ~45 tx/s regardless of load."""
    cluster = build_cluster("parity", 4, seed=5)
    driver = small_driver(cluster, rate=100, duration=30, clients=4)
    stats = driver.run()
    assert 25 <= stats.throughput() <= 70
    # Offered 400 tx/s >> ~45 signed: the client queues grow (Figure 6).
    assert sum(len(c.backlog) for c in driver.clients) > 1000
    # Every confirmed tx went through the signer; the remainder is bounded
    # by the in-flight window (txs signed but still inside the 5 s
    # confirmation lag when the run stops).
    in_flight_cap = len(driver.clients) * driver.config.threads_per_client
    gap = cluster.nodes[0].signed_count - stats.confirmed
    assert 0 <= gap <= in_flight_cap
    cluster.close()


def test_parity_latency_flat_under_overload():
    cluster = build_cluster("parity", 4, seed=5)
    stats = small_driver(cluster, rate=200, duration=30, clients=4).run()
    # Latency bounded by signing queue + confirmation, not by offered load.
    assert stats.latency_avg() < 12.0
    cluster.close()


def test_execution_receipts_recorded():
    cluster = build_cluster("hyperledger", 4, seed=5)
    small_driver(cluster).run()
    node = cluster.nodes[0]
    assert node.committed_tx_count > 0
    assert len(node.receipts) >= node.committed_tx_count
    sample = next(iter(node.receipts.values()))
    assert sample.gas_used > 0
    cluster.close()


def test_contract_state_consistent_across_replicas():
    cluster = build_cluster("hyperledger", 4, seed=5)
    small_driver(cluster).run()
    key = b"kvstore/user1"
    values = {node.state.get(key) for node in cluster.nodes}
    assert len(values) == 1  # replicated state machine
    cluster.close()


# ---------------------------------------------------------------------------
# State layers
# ---------------------------------------------------------------------------
def test_ethereum_state_historical_reads():
    state = EthereumState()
    state.put(b"k", b"v1")
    state.commit_block(1)
    state.put(b"k", b"v2")
    state.commit_block(2)
    assert state.get_at(1, b"k") == b"v1"
    assert state.get_at(2, b"k") == b"v2"
    assert state.get(b"k") == b"v2"


def test_ethereum_state_lsm_backend(tmp_path):
    state = EthereumState(tmp_path)
    for i in range(200):
        state.put(f"key{i}".encode(), b"value")
    state.commit_block(1)
    assert state.get(b"key100") == b"value"
    assert state.disk_usage_bytes() > 0
    state.close()


def test_parity_state_memory_cap():
    from repro.errors import StorageError

    state = ParityState(memory_cap_bytes=20_000)
    with pytest.raises(StorageError, match="out of memory"):
        for i in range(2000):
            state.put(f"key{i}".encode(), b"x" * 50)


def test_hyperledger_state_rejects_historical():
    state = HyperledgerState()
    state.put(b"k", b"v")
    state.commit_block(1)
    with pytest.raises(ConnectorError):
        state.get_at(1, b"k")


def test_hyperledger_state_lsm_roundtrip(tmp_path):
    state = HyperledgerState(tmp_path)
    state.put(b"k", b"v")
    assert state.get(b"k") == b"v"
    state.delete(b"k")
    assert state.get(b"k") is None
    state.close()


# ---------------------------------------------------------------------------
# Fault behaviour (platform level)
# ---------------------------------------------------------------------------
def test_cluster_crash_nodes():
    cluster = build_cluster("hyperledger", 4, seed=5)
    crashed = cluster.crash_nodes(1)
    assert len(crashed) == 1
    assert len(cluster.alive_nodes()) == 3
    cluster.close()


def test_cluster_partition_and_heal():
    cluster = build_cluster("ethereum", 4, seed=5)
    first, second = cluster.partition_halves()
    assert len(first) == 2 and len(second) == 2
    assert cluster.network.partitioned(first[0], second[0])
    cluster.heal()
    assert not cluster.network.partitioned(first[0], second[0])
    cluster.close()


def test_global_block_stats():
    cluster = build_cluster("hyperledger", 4, seed=5)
    small_driver(cluster, duration=10).run()
    total, main = cluster.global_block_stats()
    assert total == main  # PBFT never forks
    assert total > 0
    cluster.close()
