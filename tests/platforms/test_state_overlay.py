"""Differential tests for the journaled state overlay (PR 5).

The block-commit fast path buffers intra-block writes in an overlay
and flushes the net write-set through one batched tree update at
``commit_block``. Only the per-block root is observable, so every
platform state must produce roots **byte-identical** to applying the
same writes unbuffered against the underlying tree — including delete
interleavings (delete-then-put, put-then-delete, delete of a missing
key) and hot-key overwrite collapse.
"""

import pytest

from repro.crypto.bucket_tree import BucketTree
from repro.crypto.trie import StateTrie
from repro.errors import StorageError
from repro.platforms.erisdb import ErisDBState
from repro.platforms.ethereum import EthereumState
from repro.platforms.hyperledger import N_BUCKETS, HyperledgerState
from repro.platforms.parity import ParityState

#: Write scripts, one list per block: (key, value) puts, value=None
#: deletes. Exercises hot-key overwrite collapse, delete-then-put,
#: put-then-delete, and deletes of missing keys across block borders.
BLOCKS = [
    [
        (b"kvstore/a", b"1"),
        (b"kvstore/b", b"2"),
        (b"kvstore/a", b"1b"),  # overwrite within the block
        (b"smallbank/acct:1", b"100"),
        (b"kvstore/missing", None),  # delete of a never-written key
    ],
    [
        (b"kvstore/b", None),  # delete a committed key
        (b"kvstore/b", b"2b"),  # ... then re-put it (delete-then-put)
        (b"kvstore/c", b"3"),
        (b"kvstore/c", None),  # put-then-delete nets to nothing
        (b"smallbank/acct:1", b"90"),
    ],
    [
        (b"kvstore/a", None),
        (b"kvstore/d", b"4"),
    ],
]


def _apply_through_overlay(state):
    """Run the scripted blocks through the journaled platform state."""
    roots = []
    for height, block in enumerate(BLOCKS, start=1):
        for key, value in block:
            if value is None:
                state.delete(key)
            else:
                state.put(key, value)
        roots.append(state.commit_block(height))
    return roots


def _trie_reference():
    """Unbuffered oracle: every write straight into a StateTrie."""
    trie = StateTrie()
    roots = []
    for block in BLOCKS:
        for key, value in block:
            if value is None:
                trie.delete(key)
            else:
                trie.put(key, value)
        trie.snapshot()
        roots.append(trie.root_hash())
    return roots


def _bucket_reference():
    """Unbuffered oracle: every write straight into a BucketTree."""
    tree = BucketTree(n_buckets=N_BUCKETS)
    roots = []
    for block in BLOCKS:
        for key, value in block:
            if value is None:
                tree.delete(key)
            else:
                tree.put(key, value)
        roots.append(tree.root_hash())
    return roots


@pytest.mark.parametrize(
    "state_factory",
    [EthereumState, ParityState, ErisDBState],
    ids=["ethereum", "parity", "erisdb"],
)
def test_trie_states_match_unbuffered_roots(state_factory):
    assert _apply_through_overlay(state_factory()) == _trie_reference()


def test_hyperledger_state_matches_unbuffered_roots():
    assert _apply_through_overlay(HyperledgerState()) == _bucket_reference()


def test_hyperledger_lsm_backed_matches_unbuffered_roots(tmp_path):
    state = HyperledgerState(tmp_path)
    assert _apply_through_overlay(state) == _bucket_reference()
    # And the LSM mirror holds exactly the live keys.
    assert state.get(b"kvstore/b") == b"2b"
    assert state.get(b"kvstore/a") is None
    state.close()


def test_ethereum_lsm_backed_matches_unbuffered_roots(tmp_path):
    state = EthereumState(tmp_path)
    assert _apply_through_overlay(state) == _trie_reference()
    state.close()


# ---------------------------------------------------------------------------
# Overlay semantics
# ---------------------------------------------------------------------------
def test_overlay_reads_are_read_your_writes():
    state = EthereumState()
    state.put(b"k", b"v1")
    assert state.get(b"k") == b"v1"  # uncommitted write is visible
    state.put(b"k", b"v2")
    assert state.get(b"k") == b"v2"  # last write wins
    state.delete(b"k")
    assert state.get(b"k") is None  # uncommitted delete masks backing
    state.commit_block(1)
    assert state.get(b"k") is None


def test_overlay_delete_masks_committed_value():
    state = EthereumState()
    state.put(b"k", b"committed")
    state.commit_block(1)
    state.delete(b"k")
    assert state.get(b"k") is None  # before the delete commits
    state.commit_block(2)
    assert state.get(b"k") is None
    assert state.get_at(1, b"k") == b"committed"  # history intact


def test_pending_writes_are_net_and_sorted():
    state = EthereumState()
    state.put(b"zz", b"1")
    state.put(b"aa", b"2")
    state.put(b"zz", b"3")  # overwrite nets to one entry
    state.delete(b"mm")
    assert state.pending_writes() == (
        (b"aa", b"2"),
        (b"mm", None),
        (b"zz", b"3"),
    )
    state.commit_block(1)
    assert state.pending_writes() == ()


def test_apply_write_set_replays_to_identical_root():
    primary, replica = EthereumState(), EthereumState()
    for state in (primary, replica):
        state.put(b"base", b"0")
        state.commit_block(1)
    primary.put(b"a", b"1")
    primary.delete(b"base")
    write_set = primary.pending_writes()
    root = primary.commit_block(2)
    replica.apply_write_set(write_set)
    assert replica.commit_block(2) == root


def test_empty_block_commits_preserve_root():
    state = EthereumState()
    state.put(b"k", b"v")
    first = state.commit_block(1)
    assert state.commit_block(2) == first  # no writes: same root


def test_parity_cap_counts_journaled_writes_at_put_time():
    state = ParityState(memory_cap_bytes=2_000)
    with pytest.raises(StorageError, match="out of memory"):
        for i in range(200):
            state.put(f"key{i}".encode(), b"x" * 50)


def test_parity_cap_accounting_is_net_not_gross():
    """K rewrites of one hot key occupy one overlay entry; the cap
    accounting must not treat them as K entries (a SmallBank hot
    account would otherwise OOM Parity almost immediately)."""
    state = ParityState(memory_cap_bytes=10_000)
    for i in range(2_000):
        state.put(b"hot-account", b"%030d" % i)
    assert state.memory_bytes() < 100  # one ~41-byte net entry
    state.commit_block(1)


def test_parity_delete_releases_overlay_bytes():
    state = ParityState()
    state.put(b"k", b"v" * 100)
    before = state.memory_bytes()
    state.delete(b"k")
    assert state.memory_bytes() < before


def test_parity_memory_bytes_includes_overlay():
    state = ParityState()
    state.put(b"k", b"v" * 100)
    assert state.memory_bytes() >= 101
    state.commit_block(1)
    assert state.memory_bytes() > 0  # now held as trie nodes
