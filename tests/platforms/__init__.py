"""Tests for the platforms layer."""
