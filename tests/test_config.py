"""Unit tests for platform configuration presets."""

import pytest

from repro.config import (
    PLATFORM_PRESETS,
    erisdb_config,
    ethereum_config,
    hyperledger_config,
    parity_config,
)


def test_presets_registry():
    assert set(PLATFORM_PRESETS) == {
        "ethereum",
        "parity",
        "hyperledger",
        "erisdb",
    }
    for name, factory in PLATFORM_PRESETS.items():
        assert factory().name == name


def test_ethereum_defaults_match_paper_setup():
    config = ethereum_config()
    assert config.pow.base_block_interval == 2.5  # ~2.5 s/block at 8 nodes
    assert config.pow.confirmation_depth == 5  # confirmationLength
    assert config.block_gas_limit is not None


def test_parity_defaults_match_paper_setup():
    config = parity_config()
    assert config.poa.step_duration == 1.0  # stepDuration = 1
    assert config.signing_cost_s > 0.01  # the signing bottleneck
    assert config.intake_rate_tx_s == 80.0  # "around 80 tx/s"
    assert config.block_gas_limit is None  # "not applicable to local txs"


def test_hyperledger_defaults_match_paper_setup():
    config = hyperledger_config()
    assert config.pbft.batch_size == 500  # "default batch size is 500"
    assert config.inbox_capacity is not None  # the bounded channel
    assert config.pbft.request_timeout > 0


def test_erisdb_defaults_compose_measured_platforms():
    """ErisDB = BFT-class consensus costs + EVM-class execution costs."""
    config = erisdb_config()
    eth = ethereum_config()
    assert config.execution.seconds_per_gas == eth.execution.seconds_per_gas
    assert config.tendermint.max_txs_per_block == 500
    assert config.block_gas_limit is None


def test_overrides_apply():
    config = ethereum_config(block_gas_limit=123)
    assert config.block_gas_limit == 123


def test_execution_cost_ordering():
    """Native chaincode < optimized EVM < geth EVM per unit of gas."""
    eth = ethereum_config().execution.seconds_per_gas
    par = parity_config().execution.seconds_per_gas
    hlf = hyperledger_config().execution.seconds_per_gas
    assert hlf <= par < eth


def test_configs_frozen():
    config = ethereum_config()
    with pytest.raises(Exception):
        config.name = "other"


def test_apply_overrides_nested_knobs():
    from repro.config import apply_overrides

    base = hyperledger_config()
    tuned = apply_overrides(
        base, {"pbft": {"batch_size": 250}, "inbox_capacity": 1300}
    )
    assert tuned.pbft.batch_size == 250
    assert tuned.inbox_capacity == 1300
    # Untouched knobs carry over; the base config is never mutated.
    assert tuned.pbft.batch_interval == base.pbft.batch_interval
    assert base.pbft.batch_size == 500


def test_apply_overrides_empty_is_identity():
    from repro.config import apply_overrides

    base = ethereum_config()
    assert apply_overrides(base, {}) is base


def test_apply_overrides_unknown_field_errors():
    from repro.config import apply_overrides
    from repro.errors import BenchmarkError

    with pytest.raises(BenchmarkError, match="unknown config field 'batchsize'"):
        apply_overrides(hyperledger_config(), {"batchsize": 250})
    with pytest.raises(BenchmarkError, match="unknown config field 'batchsize'"):
        apply_overrides(hyperledger_config(), {"pbft": {"batchsize": 250}})


def test_apply_overrides_requires_dataclass():
    from repro.config import apply_overrides
    from repro.errors import BenchmarkError

    with pytest.raises(BenchmarkError, match="must be a dataclass"):
        apply_overrides({"not": "a dataclass"}, {"x": 1})
