"""CLI tests: drive ``blockbench`` in-process through ``main``."""

import json

import pytest

from repro.cli import PLATFORM_NAMES, WORKLOAD_NAMES, main


def test_list_names_every_platform_and_workload(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in PLATFORM_NAMES + WORKLOAD_NAMES:
        assert name in out


def test_list_output_is_registry_driven(capsys):
    """A platform registered at runtime shows up in ``list``."""
    from repro.registry import PLATFORMS, register_platform

    @register_platform("listedchain")
    def build_listed(node_id, scheduler, network, rng, config, ids, storage):
        raise NotImplementedError

    try:
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "listedchain" in out
        assert "consensus protocols:" in out
        assert "pbft" in out
    finally:
        PLATFORMS.unregister("listedchain")


def test_run_prints_summary_table(capsys):
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "ycsb",
            "--servers", "4",
            "--clients", "2",
            "--rate", "40",
            "--duration", "5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "hyperledger / ycsb" in out
    assert "throughput (tx/s)" in out
    assert "confirmed" in out


def test_run_json_output_is_parseable(capsys):
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "donothing",
            "--servers", "4",
            "--clients", "2",
            "--rate", "40",
            "--duration", "5",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["platform"] == "hyperledger"
    assert payload["confirmed"] > 0
    assert payload["throughput_tx_s"] > 0
    assert payload["main_branch_blocks"] <= payload["total_blocks"]


def test_run_crash_flag_kills_quorum(capsys):
    """Crashing 2 of 4 PBFT nodes mid-run halts commits (quorum 3)."""
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "ycsb",
            "--servers", "4",
            "--clients", "2",
            "--rate", "40",
            "--duration", "10",
            "--crash", "2",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    # The run still reports, and well under the full offered load landed.
    assert payload["confirmed"] < 10 * 2 * 40


def test_run_subscribe_on_polling_platform_fails_cleanly(capsys):
    code = main(
        [
            "run",
            "--platform", "ethereum",
            "--workload", "ycsb",
            "--servers", "4",
            "--clients", "2",
            "--rate", "10",
            "--duration", "3",
            "--subscribe",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "publish/subscribe" in err


def test_run_export_dir_writes_csv_series(tmp_path, capsys):
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "ycsb",
            "--servers", "4",
            "--clients", "2",
            "--rate", "40",
            "--duration", "5",
            "--export-dir", str(tmp_path / "out"),
            "--json",
        ]
    )
    assert code == 0
    names = {p.name for p in (tmp_path / "out").iterdir()}
    assert names == {
        "summary.csv", "queue.csv", "latency_cdf.csv", "commits.csv", "run.csv",
    }
    summary = (tmp_path / "out" / "summary.csv").read_text().splitlines()
    assert summary[0].startswith("platform,")
    assert len(summary) == 2


def test_attack_json_reports_fork_metrics(capsys):
    code = main(
        [
            "attack",
            "--platform", "ethereum",
            "--servers", "4",
            "--clients", "2",
            "--rate", "10",
            "--start", "10",
            "--length", "15",
            "--total", "40",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total_blocks"] >= payload["main_branch_blocks"]
    assert 0.0 < payload["fork_ratio"] <= 1.0


def _write_suite_file(path, rates=(20, 40)):
    path.write_text(
        json.dumps(
            {
                "name": "cli-suite",
                "scenarios": [
                    {
                        "name": "sweep",
                        "platforms": ["hyperledger", "erisdb"],
                        "workloads": "ycsb",
                        "servers": 4,
                        "clients": 2,
                        "rates": list(rates),
                        "durations": 5,
                        "seeds": 1,
                    }
                ],
            }
        )
    )


def test_suite_runs_scenario_file_and_prints_grid(tmp_path, capsys):
    scenario = tmp_path / "sweep.json"
    _write_suite_file(scenario)
    assert main(["suite", str(scenario)]) == 0
    captured = capsys.readouterr()
    assert "suite cli-suite: 4 runs" in captured.out
    assert "hyperledger" in captured.out and "erisdb" in captured.out
    # Serial mode narrates progress on stderr.
    assert "[1/4]" in captured.err and "[4/4]" in captured.err


def test_suite_json_output_merges_all_runs(tmp_path, capsys):
    scenario = tmp_path / "sweep.json"
    _write_suite_file(scenario)
    assert main(["suite", str(scenario), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["suite"] == "cli-suite"
    assert payload["runs"] == 4
    platforms = {run["platform"] for run in payload["results"]}
    assert platforms == {"hyperledger", "erisdb"}
    assert all(run["confirmed"] > 0 for run in payload["results"])


def test_suite_export_dir_writes_merged_csv(tmp_path, capsys):
    scenario = tmp_path / "sweep.json"
    _write_suite_file(scenario, rates=(20,))
    out_dir = tmp_path / "out"
    assert main(["suite", str(scenario), "--export-dir", str(out_dir)]) == 0
    names = {p.name for p in out_dir.iterdir()}
    assert names == {"grid.csv", "summary.csv"}


def test_suite_missing_file_fails_cleanly(tmp_path, capsys):
    assert main(["suite", str(tmp_path / "nope.json")]) == 2
    assert "scenario file not found" in capsys.readouterr().err


def test_run_accepts_driver_knobs_and_client_mode(capsys):
    code = main(
        [
            "run",
            "--platform", "hyperledger",
            "--workload", "donothing",
            "--servers", "2",
            "--clients", "1",
            "--rate", "20",
            "--duration", "5",
            "--poll-interval", "0.25",
            "--threads", "8",
            "--retry-interval", "0.1",
            "--client-mode", "callback",
            "--json",
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["confirmed"] > 0


def _fake_baseline(tmp_path, ops_per_s):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "schema": "blockbench-perf/1",
                "git_rev": "test",
                "results": [
                    {
                        "name": "scheduler_events",
                        "ops": 1,
                        "unit": "events",
                        "wall_time_s": 1.0,
                        "ops_per_s": ops_per_s,
                    }
                ],
            }
        )
    )
    return str(path)


def test_perf_gate_fails_on_regression(tmp_path, capsys):
    baseline = _fake_baseline(tmp_path, ops_per_s=1e15)  # unbeatable
    code = main(
        [
            "perf", "--quick", "--repeats", "1", "--no-write",
            "--only", "scheduler_events",
            "--baseline", baseline,
            "--fail-below", "scheduler_events=0.9",
        ]
    )
    assert code == 1
    assert "perf gate FAILED" in capsys.readouterr().err


def test_perf_gate_passes_against_modest_baseline(tmp_path, capsys):
    baseline = _fake_baseline(tmp_path, ops_per_s=1.0)  # trivially beaten
    code = main(
        [
            "perf", "--quick", "--repeats", "1", "--no-write",
            "--only", "scheduler_events",
            "--baseline", baseline,
            "--fail-below", "scheduler_events=0.9",
        ]
    )
    assert code == 0
    assert "speedup" in capsys.readouterr().out


def test_perf_gate_requires_baseline(capsys):
    code = main(
        ["perf", "--quick", "--no-write", "--fail-below", "driver_tx=0.5"]
    )
    assert code == 2
    assert "--fail-below requires --baseline" in capsys.readouterr().err


def test_perf_gate_rejects_malformed_spec(capsys):
    code = main(
        ["perf", "--quick", "--no-write", "--fail-below", "nonsense"]
    )
    assert code == 2
    assert "expected NAME=RATIO" in capsys.readouterr().err


def test_rejects_unknown_platform():
    with pytest.raises(SystemExit):
        main(["run", "--platform", "nosuchchain"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
